#!/usr/bin/env python3
"""Virtualized CAN controller demo (Section III, Fig. 2).

Sets up a hypervisor with several guest VMs sharing one virtualized CAN
controller through per-VM virtual functions, measures the round-trip latency
against a stand-alone (native) controller and prints the FPGA resource
break-even analysis.

Run with::

    python examples/can_virtualization.py
"""

from repro.can import (
    AcceptanceFilter,
    CanBus,
    CanController,
    CanFrame,
    FpgaResourceModel,
    VirtualizedCanController,
    break_even_vms,
)
from repro.platform import Platform, ProcessingResource
from repro.sim import Simulator
from repro.virtualization import Hypervisor, VirtualMachine


def measure_round_trip(num_vms: int, payload: bytes = b"\x11" * 8) -> tuple:
    """Round-trip latency: VM -> remote ECU -> VM, virtualized vs native."""
    # Virtualized setup: num_vms VMs share one controller.
    sim = Simulator()
    bus = CanBus(sim, bitrate_bps=500_000.0)
    remote = CanController(sim, "remote_ecu")
    virtualized = VirtualizedCanController(sim, "virt_can", privileged_owner="hypervisor")
    bus.attach(remote)
    bus.attach(virtualized)

    platform = Platform()
    platform.add_processor(ProcessingResource("cpu0", capacity=1.0, memory_kib=1 << 20))
    hypervisor = Hypervisor(platform, name="hypervisor")
    hypervisor.register_controller(virtualized)
    for index in range(num_vms):
        vm = hypervisor.define_vm(VirtualMachine(f"vm{index}", cpu_share=1.0 / num_vms,
                                                 memory_kib=4096))
        hypervisor.assign_can_vf(vm.name, "virt_can",
                                 filters=[AcceptanceFilter.exact(0x200 + index)])
    vf0 = virtualized.vf("virt_can.vf.vm0")
    remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=payload))
    virtualized.send_from_vf("virt_can.vf.vm0", CanFrame(can_id=0x100, payload=payload))
    sim.run(until=0.01)
    virtualized_rtt = vf0.received[0].delivery_time

    # Native baseline: a stand-alone controller performs the same exchange.
    sim = Simulator()
    bus = CanBus(sim, bitrate_bps=500_000.0)
    remote = CanController(sim, "remote_ecu")
    native = CanController(sim, "native_can")
    bus.attach(remote)
    bus.attach(native)
    remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=payload))
    native.send(CanFrame(can_id=0x100, payload=payload))
    sim.run(until=0.01)
    native_rtt = native.received[0].delivery_time

    return native_rtt, virtualized_rtt


def main() -> None:
    print("== round-trip latency: native vs virtualized CAN controller ==")
    print(f"{'VMs':>4s} {'native (us)':>12s} {'virtualized (us)':>17s} {'added (us)':>11s}")
    for num_vms in (1, 2, 4, 8):
        native, virtualized = measure_round_trip(num_vms)
        print(f"{num_vms:4d} {native * 1e6:12.2f} {virtualized * 1e6:17.2f} "
              f"{(virtualized - native) * 1e6:11.2f}")
    print("(paper: near-native performance, ~7-11 us added round-trip latency)")

    print("\n== FPGA resource break-even (virtualized vs N stand-alone controllers) ==")
    model = FpgaResourceModel()
    print(f"{'VMs':>4s} {'virtualized':>12s} {'standalone':>11s} {'ratio':>7s}")
    for row in model.sweep(8):
        print(f"{row['vms']:4.0f} {row['virtualized_total']:12.0f} "
              f"{row['standalone_total']:11.0f} {row['ratio']:7.2f}")
    print(f"break-even at {break_even_vms(model)} VMs "
          "(paper: breaks even at a small number of VMs)")


if __name__ == "__main__":
    main()
