"""Contract model: explicit requirements and provisions per component.

The paper's contracting language collects, for each component, the
requirements of every viewpoint (safety level, real-time constraints,
security level, resource budgets) together with the services the component
requires from and provides to others.  The MCC consumes these contracts
during the integration process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class AsilLevel(enum.IntEnum):
    """Automotive Safety Integrity Levels (ISO 26262), ordered QM < A < ... < D."""

    QM = 0
    A = 1
    B = 2
    C = 3
    D = 4

    @classmethod
    def parse(cls, value: "AsilLevel | str | int") -> "AsilLevel":
        if isinstance(value, AsilLevel):
            return value
        if isinstance(value, int):
            return cls(value)
        name = value.strip().upper().replace("ASIL-", "").replace("ASIL_", "").replace("ASIL", "").strip()
        if not name:
            raise ValueError(f"invalid ASIL level: {value!r}")
        try:
            return cls[name]
        except KeyError as exc:
            raise ValueError(f"invalid ASIL level: {value!r}") from exc


class SecurityLevel(enum.IntEnum):
    """Coarse security requirement levels used by the threat-model viewpoint."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3

    @classmethod
    def parse(cls, value: "SecurityLevel | str | int") -> "SecurityLevel":
        if isinstance(value, SecurityLevel):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[value.strip().upper()]
        except KeyError as exc:
            raise ValueError(f"invalid security level: {value!r}") from exc


class ContractViolation(ValueError):
    """Raised when a contract is internally inconsistent or violated."""


@dataclass
class Requirement:
    """Base class for viewpoint-specific requirements."""

    viewpoint: str = field(init=False, default="generic")

    def to_dict(self) -> Dict[str, Any]:
        return {"viewpoint": self.viewpoint}


@dataclass
class RealTimeRequirement(Requirement):
    """Timing requirement of a component's task.

    Attributes
    ----------
    period:
        Activation period in seconds (sporadic minimum inter-arrival time).
    wcet:
        Worst-case execution time in seconds on the reference resource.
    deadline:
        Relative deadline; defaults to the period (implicit deadline).
    jitter:
        Maximum release jitter contributed by the component's inputs.
    """

    period: float = 0.0
    wcet: float = 0.0
    deadline: Optional[float] = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        self.viewpoint = "timing"
        if self.period <= 0:
            raise ContractViolation(f"period must be positive, got {self.period}")
        if self.wcet <= 0:
            raise ContractViolation(f"wcet must be positive, got {self.wcet}")
        if self.deadline is None:
            self.deadline = self.period
        if self.deadline <= 0:
            raise ContractViolation(f"deadline must be positive, got {self.deadline}")
        if self.wcet > self.deadline:
            raise ContractViolation(
                f"wcet {self.wcet} exceeds deadline {self.deadline}: unschedulable by construction")
        if self.jitter < 0:
            raise ContractViolation("jitter must be non-negative")

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    def to_dict(self) -> Dict[str, Any]:
        return {
            "viewpoint": self.viewpoint,
            "period": self.period,
            "wcet": self.wcet,
            "deadline": self.deadline,
            "jitter": self.jitter,
        }


@dataclass
class SafetyRequirement(Requirement):
    """Safety requirement: required ASIL and redundancy expectations."""

    asil: AsilLevel = AsilLevel.QM
    fail_operational: bool = False
    redundancy_group: Optional[str] = None

    def __post_init__(self) -> None:
        self.viewpoint = "safety"
        self.asil = AsilLevel.parse(self.asil)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "viewpoint": self.viewpoint,
            "asil": self.asil.name,
            "fail_operational": self.fail_operational,
            "redundancy_group": self.redundancy_group,
        }


@dataclass
class SecurityRequirement(Requirement):
    """Security requirement: minimum protection level and allowed peers."""

    level: SecurityLevel = SecurityLevel.NONE
    allowed_peers: List[str] = field(default_factory=list)
    external_interface: bool = False

    def __post_init__(self) -> None:
        self.viewpoint = "security"
        self.level = SecurityLevel.parse(self.level)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "viewpoint": self.viewpoint,
            "level": self.level.name,
            "allowed_peers": list(self.allowed_peers),
            "external_interface": self.external_interface,
        }


@dataclass
class ResourceRequirement(Requirement):
    """Resource budgets (memory, CAN bandwidth share) requested by a component."""

    memory_kib: float = 0.0
    can_bandwidth_bps: float = 0.0
    requires_vm_isolation: bool = False

    def __post_init__(self) -> None:
        self.viewpoint = "resources"
        if self.memory_kib < 0 or self.can_bandwidth_bps < 0:
            raise ContractViolation("resource budgets must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "viewpoint": self.viewpoint,
            "memory_kib": self.memory_kib,
            "can_bandwidth_bps": self.can_bandwidth_bps,
            "requires_vm_isolation": self.requires_vm_isolation,
        }


@dataclass
class ServiceRequirement:
    """A service this component requires from some provider (micro-server)."""

    service: str
    max_latency: Optional[float] = None
    optional: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"service": self.service, "max_latency": self.max_latency,
                "optional": self.optional}


@dataclass
class ServiceProvision:
    """A service this component provides to others."""

    service: str
    max_clients: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"service": self.service, "max_clients": self.max_clients}


@dataclass
class Contract:
    """The full contract of one component.

    A contract bundles the component's identity, its viewpoint requirements
    and its service interface.  ``metadata`` carries free-form annotations
    (e.g. the functional skill the component implements).
    """

    component: str
    requirements: List[Requirement] = field(default_factory=list)
    requires: List[ServiceRequirement] = field(default_factory=list)
    provides: List[ServiceProvision] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.component:
            raise ContractViolation("contract needs a component name")

    # -- accessors --------------------------------------------------------

    def requirement(self, viewpoint: str) -> Optional[Requirement]:
        """Return the first requirement of the given viewpoint, if any."""
        for req in self.requirements:
            if req.viewpoint == viewpoint:
                return req
        return None

    def requirements_for(self, viewpoint: str) -> List[Requirement]:
        return [req for req in self.requirements if req.viewpoint == viewpoint]

    @property
    def timing(self) -> Optional[RealTimeRequirement]:
        req = self.requirement("timing")
        return req if isinstance(req, RealTimeRequirement) else None

    @property
    def safety(self) -> Optional[SafetyRequirement]:
        req = self.requirement("safety")
        return req if isinstance(req, SafetyRequirement) else None

    @property
    def security(self) -> Optional[SecurityRequirement]:
        req = self.requirement("security")
        return req if isinstance(req, SecurityRequirement) else None

    @property
    def resources(self) -> Optional[ResourceRequirement]:
        req = self.requirement("resources")
        return req if isinstance(req, ResourceRequirement) else None

    @property
    def asil(self) -> AsilLevel:
        safety = self.safety
        return safety.asil if safety else AsilLevel.QM

    def provided_services(self) -> List[str]:
        return [p.service for p in self.provides]

    def required_services(self) -> List[str]:
        return [r.service for r in self.requires]

    # -- mutation ---------------------------------------------------------

    def add_requirement(self, requirement: Requirement) -> "Contract":
        self.requirements.append(requirement)
        return self

    def add_required_service(self, service: str, max_latency: Optional[float] = None,
                             optional: bool = False) -> "Contract":
        self.requires.append(ServiceRequirement(service, max_latency, optional))
        return self

    def add_provided_service(self, service: str, max_clients: Optional[int] = None) -> "Contract":
        self.provides.append(ServiceProvision(service, max_clients))
        return self

    # -- validation / serialization ---------------------------------------

    def validate(self) -> List[str]:
        """Return a list of internal consistency problems (empty if sound)."""
        problems: List[str] = []
        provided = set(self.provided_services())
        required = set(self.required_services())
        overlap = provided & required
        if overlap:
            problems.append(
                f"component {self.component} both provides and requires {sorted(overlap)}")
        if len(provided) != len(self.provides):
            problems.append(f"component {self.component} provides a service twice")
        seen_viewpoints = [r.viewpoint for r in self.requirements]
        for vp in set(seen_viewpoints):
            if seen_viewpoints.count(vp) > 1 and vp in {"timing", "safety", "security", "resources"}:
                problems.append(
                    f"component {self.component} has multiple {vp} requirements")
        return problems

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "requirements": [r.to_dict() for r in self.requirements],
            "requires": [r.to_dict() for r in self.requires],
            "provides": [p.to_dict() for p in self.provides],
            "metadata": dict(self.metadata),
        }
