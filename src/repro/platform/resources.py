"""Platform resources: processing elements, networks and memory pools.

The CCC target platform "typically consists of multiple processing resources
and networks" shared by functions of different criticality (Section II.A).
``Platform`` bundles the resources of one vehicle ECU network and is the
object the MCC maps technical architectures onto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.platform.tasks import Task, TaskSet


class ResourceError(ValueError):
    """Raised for invalid resource configuration or over-allocation."""


@dataclass
class OperatingCondition:
    """Current physical operating condition of a processing resource.

    ``speed_factor`` scales execution times (1.0 = nominal, 0.5 = half speed
    after down-clocking), ``temperature_c`` is the junction temperature used
    by the thermal model and the platform monitor.
    """

    speed_factor: float = 1.0
    temperature_c: float = 45.0
    frequency_mhz: float = 1000.0


class ProcessingResource:
    """A CPU (or CPU partition) hosting a task set.

    Parameters
    ----------
    name:
        Unique resource identifier.
    capacity:
        Schedulable utilization bound used by admission heuristics (1.0 for a
        single core; lower values reserve headroom for monitoring overhead).
    frequency_mhz:
        Nominal clock frequency; DVFS changes scale ``speed_factor``.
    """

    def __init__(self, name: str, capacity: float = 1.0, frequency_mhz: float = 1000.0,
                 memory_kib: float = 1024 * 64) -> None:
        if capacity <= 0 or capacity > 1.0 + 1e-9:
            raise ResourceError(f"capacity must be in (0, 1], got {capacity}")
        if frequency_mhz <= 0:
            raise ResourceError("frequency must be positive")
        self.name = name
        self.capacity = capacity
        self.nominal_frequency_mhz = frequency_mhz
        self.memory_kib = memory_kib
        self.taskset = TaskSet()
        self.condition = OperatingCondition(frequency_mhz=frequency_mhz)
        self._memory_allocations: Dict[str, float] = {}

    # -- task hosting ------------------------------------------------------

    def host(self, task: Task) -> None:
        """Admit a task onto this resource (no admission test here; the MCC
        runs the analyses before deploying)."""
        self.taskset.add(task)

    def evict(self, task_name: str) -> Task:
        return self.taskset.remove(task_name)

    @property
    def utilization(self) -> float:
        """Utilization at the *current* operating point (WCETs scale with
        1/speed_factor)."""
        factor = 1.0 / self.condition.speed_factor if self.condition.speed_factor > 0 else float("inf")
        return self.taskset.utilization * factor

    @property
    def nominal_utilization(self) -> float:
        return self.taskset.utilization

    def fits(self, task: Task) -> bool:
        """Whether the task fits under the capacity bound at nominal speed."""
        return self.nominal_utilization + task.utilization <= self.capacity + 1e-12

    def effective_taskset(self) -> TaskSet:
        """Task set with WCETs scaled to the current operating point."""
        factor = 1.0 / self.condition.speed_factor
        return TaskSet([task.scaled(factor) for task in self.taskset])

    # -- memory ------------------------------------------------------------

    def allocate_memory(self, owner: str, amount_kib: float) -> None:
        if amount_kib < 0:
            raise ResourceError("cannot allocate negative memory")
        allocated = sum(self._memory_allocations.values())
        if allocated + amount_kib > self.memory_kib + 1e-9:
            raise ResourceError(
                f"resource {self.name}: memory exhausted "
                f"({allocated + amount_kib:.0f} KiB > {self.memory_kib:.0f} KiB)")
        self._memory_allocations[owner] = self._memory_allocations.get(owner, 0.0) + amount_kib

    def release_memory(self, owner: str) -> float:
        return self._memory_allocations.pop(owner, 0.0)

    @property
    def memory_allocated_kib(self) -> float:
        return sum(self._memory_allocations.values())

    # -- operating point ----------------------------------------------------

    def set_speed_factor(self, factor: float) -> None:
        if factor <= 0 or factor > 1.0 + 1e-9:
            raise ResourceError(f"speed factor must be in (0, 1], got {factor}")
        self.condition.speed_factor = factor
        self.condition.frequency_mhz = self.nominal_frequency_mhz * factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProcessingResource({self.name!r}, util={self.nominal_utilization:.2f}, "
                f"tasks={len(self.taskset)})")


class NetworkResource:
    """A shared communication resource (e.g. a CAN bus or Ethernet link).

    Bandwidth is allocated to named flows; the security and resource
    viewpoints check that allocations respect the link capacity.
    """

    def __init__(self, name: str, bandwidth_bps: float, kind: str = "can") -> None:
        if bandwidth_bps <= 0:
            raise ResourceError("bandwidth must be positive")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.kind = kind
        self._allocations: Dict[str, float] = {}

    def allocate(self, flow: str, bps: float) -> None:
        if bps < 0:
            raise ResourceError("cannot allocate negative bandwidth")
        current = sum(self._allocations.values())
        if current + bps > self.bandwidth_bps + 1e-9:
            raise ResourceError(
                f"network {self.name}: bandwidth exhausted "
                f"({current + bps:.0f} bps > {self.bandwidth_bps:.0f} bps)")
        self._allocations[flow] = self._allocations.get(flow, 0.0) + bps

    def release(self, flow: str) -> float:
        return self._allocations.pop(flow, 0.0)

    @property
    def allocated_bps(self) -> float:
        return sum(self._allocations.values())

    @property
    def utilization(self) -> float:
        return self.allocated_bps / self.bandwidth_bps

    def allocations(self) -> Dict[str, float]:
        return dict(self._allocations)


class MemoryPool:
    """A shared memory region with named partitions (spatial isolation)."""

    def __init__(self, name: str, size_kib: float) -> None:
        if size_kib <= 0:
            raise ResourceError("memory pool size must be positive")
        self.name = name
        self.size_kib = size_kib
        self._partitions: Dict[str, float] = {}

    def carve(self, owner: str, size_kib: float) -> None:
        if size_kib <= 0:
            raise ResourceError("partition size must be positive")
        if owner in self._partitions:
            raise ResourceError(f"partition {owner!r} already exists in pool {self.name}")
        if self.allocated_kib + size_kib > self.size_kib + 1e-9:
            raise ResourceError(f"memory pool {self.name} exhausted")
        self._partitions[owner] = size_kib

    def free(self, owner: str) -> float:
        return self._partitions.pop(owner, 0.0)

    @property
    def allocated_kib(self) -> float:
        return sum(self._partitions.values())

    @property
    def available_kib(self) -> float:
        return self.size_kib - self.allocated_kib

    def partitions(self) -> Dict[str, float]:
        return dict(self._partitions)


class Platform:
    """The full hardware/software platform of one vehicle.

    Bundles processing resources, networks and memory pools, and offers the
    lookups that the MCC's mapping step and the monitors need.
    """

    def __init__(self, name: str = "vehicle-platform") -> None:
        self.name = name
        self._processors: Dict[str, ProcessingResource] = {}
        self._networks: Dict[str, NetworkResource] = {}
        self._memories: Dict[str, MemoryPool] = {}

    # -- construction -------------------------------------------------------

    def add_processor(self, processor: ProcessingResource) -> ProcessingResource:
        if processor.name in self._processors:
            raise ResourceError(f"duplicate processor {processor.name!r}")
        self._processors[processor.name] = processor
        return processor

    def add_network(self, network: NetworkResource) -> NetworkResource:
        if network.name in self._networks:
            raise ResourceError(f"duplicate network {network.name!r}")
        self._networks[network.name] = network
        return network

    def add_memory(self, memory: MemoryPool) -> MemoryPool:
        if memory.name in self._memories:
            raise ResourceError(f"duplicate memory pool {memory.name!r}")
        self._memories[memory.name] = memory
        return memory

    # -- lookup --------------------------------------------------------------

    def processor(self, name: str) -> ProcessingResource:
        try:
            return self._processors[name]
        except KeyError as exc:
            raise ResourceError(f"unknown processor {name!r}") from exc

    def network(self, name: str) -> NetworkResource:
        try:
            return self._networks[name]
        except KeyError as exc:
            raise ResourceError(f"unknown network {name!r}") from exc

    def memory(self, name: str) -> MemoryPool:
        try:
            return self._memories[name]
        except KeyError as exc:
            raise ResourceError(f"unknown memory pool {name!r}") from exc

    def processors(self) -> List[ProcessingResource]:
        return list(self._processors.values())

    def networks(self) -> List[NetworkResource]:
        return list(self._networks.values())

    def memories(self) -> List[MemoryPool]:
        return list(self._memories.values())

    def find_task(self, task_name: str) -> Optional[ProcessingResource]:
        """Return the processor hosting the named task, if any."""
        for processor in self._processors.values():
            if task_name in processor.taskset:
                return processor
        return None

    def total_utilization(self) -> float:
        if not self._processors:
            return 0.0
        return sum(p.nominal_utilization for p in self._processors.values())

    def __iter__(self) -> Iterator[ProcessingResource]:
        return iter(self._processors.values())

    @classmethod
    def symmetric(cls, num_processors: int, capacity: float = 1.0,
                  frequency_mhz: float = 1000.0, name: str = "vehicle-platform") -> "Platform":
        """Convenience constructor: homogeneous multi-core platform."""
        if num_processors <= 0:
            raise ResourceError("need at least one processor")
        platform = cls(name=name)
        for index in range(num_processors):
            platform.add_processor(ProcessingResource(
                f"cpu{index}", capacity=capacity, frequency_mhz=frequency_mhz))
        return platform
