"""Trust model for cooperating vehicles.

Cooperation "rais[es] issues of trust and self-protection against other
malicious neighbors" (Section V).  The trust model maintains a per-peer
reputation in [0, 1] that increases with consistent behaviour (proposals
close to the agreed value, heartbeats on time) and decreases with deviations;
the platoon uses it to weight or exclude peers during agreement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TrustLevel(enum.Enum):
    """Discrete trust classes derived from the continuous reputation score."""

    UNTRUSTED = "untrusted"
    SUSPECT = "suspect"
    TRUSTED = "trusted"


class TrustModel:
    """Evidence-based reputation per peer.

    Parameters
    ----------
    initial_trust:
        Reputation assigned to newly encountered peers (cautious default).
    trusted_threshold / untrusted_threshold:
        Boundaries of the discrete trust classes.
    """

    def __init__(self, initial_trust: float = 0.6,
                 trusted_threshold: float = 0.7,
                 untrusted_threshold: float = 0.3,
                 learning_rate: float = 0.2) -> None:
        if not 0.0 <= untrusted_threshold < trusted_threshold <= 1.0:
            raise ValueError("need 0 <= untrusted < trusted <= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning rate must be in (0, 1]")
        if not 0.0 <= initial_trust <= 1.0:
            raise ValueError("initial trust must be in [0, 1]")
        self.initial_trust = initial_trust
        self.trusted_threshold = trusted_threshold
        self.untrusted_threshold = untrusted_threshold
        self.learning_rate = learning_rate
        self._reputation: Dict[str, float] = {}
        self._observations: Dict[str, int] = {}

    # -- queries -----------------------------------------------------------------------

    def reputation(self, peer: str) -> float:
        return self._reputation.get(peer, self.initial_trust)

    def level(self, peer: str) -> TrustLevel:
        score = self.reputation(peer)
        if score >= self.trusted_threshold:
            return TrustLevel.TRUSTED
        if score <= self.untrusted_threshold:
            return TrustLevel.UNTRUSTED
        return TrustLevel.SUSPECT

    def is_trusted(self, peer: str) -> bool:
        return self.level(peer) == TrustLevel.TRUSTED

    def is_untrusted(self, peer: str) -> bool:
        return self.level(peer) == TrustLevel.UNTRUSTED

    def peers(self) -> List[str]:
        return sorted(self._reputation)

    def observations_of(self, peer: str) -> int:
        return self._observations.get(peer, 0)

    def weight(self, peer: str) -> float:
        """Weight for consensus aggregation: zero for untrusted peers,
        reputation otherwise."""
        if self.is_untrusted(peer):
            return 0.0
        return self.reputation(peer)

    # -- evidence ------------------------------------------------------------------------

    def record_consistent(self, peer: str, strength: float = 1.0) -> float:
        """Record behaviour consistent with the agreement/expectation."""
        return self._update(peer, target=1.0, strength=strength)

    def record_deviation(self, peer: str, strength: float = 1.0) -> float:
        """Record behaviour deviating from the agreement/expectation."""
        return self._update(peer, target=0.0, strength=strength)

    def _update(self, peer: str, target: float, strength: float) -> float:
        strength = min(max(strength, 0.0), 1.0)
        current = self.reputation(peer)
        updated = current + self.learning_rate * strength * (target - current)
        self._reputation[peer] = min(1.0, max(0.0, updated))
        self._observations[peer] = self._observations.get(peer, 0) + 1
        return self._reputation[peer]

    def reset(self, peer: Optional[str] = None) -> None:
        if peer is None:
            self._reputation.clear()
            self._observations.clear()
        else:
            self._reputation.pop(peer, None)
            self._observations.pop(peer, None)
