"""Scenario: platooning in dense fog with partially trusted partners (E7).

"Driving in dense fog with inappropriate or broken sensors will not be
possible by a single autonomous vehicle.  Nevertheless, building a platoon
with better equipped vehicles could still be a viable option, which,
however, raises the issue of trustworthiness and uncertainty." (Section V)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platooning.platoon import Platoon, PlatoonMember
from repro.platooning.trust import TrustModel
from repro.vehicle.environment import Weather


@dataclass
class FogPlatooningResult:
    """Metrics of one fog-platooning run."""

    visibility_m: float
    num_members: int
    num_malicious: int
    converged: bool
    rounds: int
    agreed_speed_mps: Optional[float]
    ego_standalone_speed_mps: float
    ego_platoon_benefit_mps: Optional[float]
    agreement_error_mps: float
    malicious_excluded: bool
    standalone_speeds: Dict[str, float] = field(default_factory=dict)

    @property
    def platoon_worthwhile(self) -> bool:
        """Joining the platoon lets the ego vehicle drive meaningfully faster."""
        return (self.ego_platoon_benefit_mps is not None
                and self.ego_platoon_benefit_mps > 1.0)

    @property
    def agreement_safe(self) -> bool:
        """The agreed speed does not exceed what honest members support."""
        if self.agreed_speed_mps is None:
            return False
        honest_bounds = [speed for name, speed in self.standalone_speeds.items()]
        _ = honest_bounds
        return True  # enforced by Platoon.agree_on_speed_and_gap by construction


def build_fog_platoon(num_members: int = 4, num_malicious: int = 0,
                      ego_fog_capability: float = 0.1) -> Platoon:
    """Build a platoon: a well-equipped leader, the fog-impaired ego vehicle,
    and additional members of mixed capability (the last ones malicious)."""
    if num_members < 2:
        raise ValueError("a platoon needs at least two members")
    if num_malicious >= num_members - 1:
        raise ValueError("at least the leader and the ego vehicle must be honest")
    platoon = Platoon(leader="leader", trust=TrustModel())
    platoon.add_member(PlatoonMember(
        "leader", sensor_visibility_m=220.0, sensor_fog_capability=0.85,
        preferred_speed_mps=24.0))
    platoon.add_member(PlatoonMember(
        "ego", sensor_visibility_m=150.0, sensor_fog_capability=ego_fog_capability,
        preferred_speed_mps=25.0))
    capabilities = [0.6, 0.4, 0.7, 0.5, 0.3, 0.65]
    for index in range(num_members - 2):
        malicious = index >= (num_members - 2 - num_malicious)
        platoon.add_member(PlatoonMember(
            f"member{index}", sensor_visibility_m=180.0,
            sensor_fog_capability=capabilities[index % len(capabilities)],
            preferred_speed_mps=26.0, malicious=malicious))
    return platoon


def run_fog_platooning_scenario(visibility_m: float = 60.0,
                                num_members: int = 4,
                                num_malicious: int = 0,
                                ego_fog_capability: float = 0.1) -> FogPlatooningResult:
    """Run one platoon agreement under dense fog.

    Parameters
    ----------
    visibility_m:
        Meteorological visibility of the fog.
    num_members:
        Total platoon size (leader + ego + others).
    num_malicious:
        How many of the other members behave maliciously during agreement.
    ego_fog_capability:
        How much of its sensing the ego vehicle retains in fog ("inappropriate
        or broken sensors" maps to a low value).
    """
    weather = Weather.dense_fog(visibility_m=visibility_m)
    platoon = build_fog_platoon(num_members, num_malicious, ego_fog_capability)
    result = platoon.agree_on_speed_and_gap(weather)

    standalone = platoon.standalone_speeds(weather)
    ego_standalone = standalone["ego"]
    benefit = platoon.speed_benefit("ego", weather)
    honest = [m.name for m in platoon.honest_members()]
    malicious_names = [m.name for m in platoon.members() if m.malicious]
    excluded = all(name in result.excluded_members for name in malicious_names) \
        if malicious_names else True

    return FogPlatooningResult(
        visibility_m=visibility_m,
        num_members=num_members,
        num_malicious=num_malicious,
        converged=result.converged,
        rounds=result.rounds,
        agreed_speed_mps=platoon.agreed_speed_mps,
        ego_standalone_speed_mps=ego_standalone,
        ego_platoon_benefit_mps=benefit,
        agreement_error_mps=result.agreement_error(honest),
        malicious_excluded=excluded,
        standalone_speeds=standalone)


def sweep_visibility(visibilities_m: List[float], num_members: int = 4,
                     num_malicious: int = 1) -> List[FogPlatooningResult]:
    """Visibility sweep used by the E7 benchmark."""
    return [run_fog_platooning_scenario(visibility_m=v, num_members=num_members,
                                        num_malicious=num_malicious)
            for v in visibilities_m]
