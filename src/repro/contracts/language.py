"""Parsing and serializing contracts.

The paper's contracting language is proprietary; we substitute a small,
declarative dictionary/JSON representation that captures the same content:
per-component viewpoint requirements plus the required/provided service
interface.  ``ContractParser`` turns dictionaries (or JSON strings) into
:class:`~repro.contracts.model.Contract` objects and back.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from repro.contracts.model import (
    Contract,
    RealTimeRequirement,
    Requirement,
    ResourceRequirement,
    SafetyRequirement,
    SecurityRequirement,
    ServiceProvision,
    ServiceRequirement,
)


class ContractSyntaxError(ValueError):
    """Raised when a contract document cannot be parsed."""


_REQUIREMENT_KEYS = {"timing", "safety", "security", "resources"}


class ContractParser:
    """Parse contract documents.

    A contract document is a dictionary of the form::

        {
          "component": "acc_controller",
          "timing":   {"period": 0.01, "wcet": 0.002, "deadline": 0.01},
          "safety":   {"asil": "C", "fail_operational": true},
          "security": {"level": "MEDIUM", "allowed_peers": ["object_tracker"]},
          "resources": {"memory_kib": 512, "can_bandwidth_bps": 20000},
          "requires": [{"service": "object_list", "max_latency": 0.02}],
          "provides": [{"service": "acc_setpoints"}],
          "metadata": {"skill": "acc_driving"}
        }
    """

    def parse(self, document: Union[str, Dict[str, Any]]) -> Contract:
        if isinstance(document, str):
            try:
                document = json.loads(document)
            except json.JSONDecodeError as exc:
                raise ContractSyntaxError(f"invalid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ContractSyntaxError(f"contract document must be a dict, got {type(document).__name__}")
        if "component" not in document:
            raise ContractSyntaxError("contract document is missing the 'component' field")

        contract = Contract(component=str(document["component"]),
                            metadata=dict(document.get("metadata", {})))

        for key in document:
            if key in _REQUIREMENT_KEYS:
                contract.add_requirement(self._parse_requirement(key, document[key]))

        for entry in document.get("requires", []):
            contract.requires.append(self._parse_service_requirement(entry))
        for entry in document.get("provides", []):
            contract.provides.append(self._parse_service_provision(entry))

        unknown = set(document) - _REQUIREMENT_KEYS - {
            "component", "requires", "provides", "metadata"}
        if unknown:
            raise ContractSyntaxError(f"unknown contract fields: {sorted(unknown)}")
        return contract

    def parse_many(self, documents: Iterable[Union[str, Dict[str, Any]]]) -> List[Contract]:
        return [self.parse(document) for document in documents]

    # -- helpers -----------------------------------------------------------

    def _parse_requirement(self, viewpoint: str, body: Dict[str, Any]) -> Requirement:
        if not isinstance(body, dict):
            raise ContractSyntaxError(f"{viewpoint} requirement must be a dict")
        try:
            if viewpoint == "timing":
                return RealTimeRequirement(
                    period=float(body["period"]),
                    wcet=float(body["wcet"]),
                    deadline=float(body["deadline"]) if "deadline" in body and body["deadline"] is not None else None,
                    jitter=float(body.get("jitter", 0.0)),
                )
            if viewpoint == "safety":
                return SafetyRequirement(
                    asil=body.get("asil", "QM"),
                    fail_operational=bool(body.get("fail_operational", False)),
                    redundancy_group=body.get("redundancy_group"),
                )
            if viewpoint == "security":
                return SecurityRequirement(
                    level=body.get("level", "NONE"),
                    allowed_peers=list(body.get("allowed_peers", [])),
                    external_interface=bool(body.get("external_interface", False)),
                )
            if viewpoint == "resources":
                return ResourceRequirement(
                    memory_kib=float(body.get("memory_kib", 0.0)),
                    can_bandwidth_bps=float(body.get("can_bandwidth_bps", 0.0)),
                    requires_vm_isolation=bool(body.get("requires_vm_isolation", False)),
                )
        except KeyError as exc:
            raise ContractSyntaxError(f"{viewpoint} requirement is missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ContractSyntaxError(f"invalid {viewpoint} requirement: {exc}") from exc
        raise ContractSyntaxError(f"unknown viewpoint {viewpoint!r}")

    def _parse_service_requirement(self, entry: Union[str, Dict[str, Any]]) -> ServiceRequirement:
        if isinstance(entry, str):
            return ServiceRequirement(service=entry)
        if not isinstance(entry, dict) or "service" not in entry:
            raise ContractSyntaxError(f"invalid required-service entry: {entry!r}")
        return ServiceRequirement(
            service=str(entry["service"]),
            max_latency=float(entry["max_latency"]) if entry.get("max_latency") is not None else None,
            optional=bool(entry.get("optional", False)),
        )

    def _parse_service_provision(self, entry: Union[str, Dict[str, Any]]) -> ServiceProvision:
        if isinstance(entry, str):
            return ServiceProvision(service=entry)
        if not isinstance(entry, dict) or "service" not in entry:
            raise ContractSyntaxError(f"invalid provided-service entry: {entry!r}")
        return ServiceProvision(
            service=str(entry["service"]),
            max_clients=int(entry["max_clients"]) if entry.get("max_clients") is not None else None,
        )


class ContractSerializer:
    """Serialize contracts back to dictionaries/JSON (round-trips with the parser)."""

    def to_dict(self, contract: Contract) -> Dict[str, Any]:
        document: Dict[str, Any] = {"component": contract.component}
        for requirement in contract.requirements:
            body = requirement.to_dict()
            body.pop("viewpoint")
            document[requirement.viewpoint] = body
        if contract.requires:
            document["requires"] = [r.to_dict() for r in contract.requires]
        if contract.provides:
            document["provides"] = [p.to_dict() for p in contract.provides]
        if contract.metadata:
            document["metadata"] = dict(contract.metadata)
        return document

    def to_json(self, contract: Contract, indent: int = 2) -> str:
        return json.dumps(self.to_dict(contract), indent=indent, sort_keys=True)
