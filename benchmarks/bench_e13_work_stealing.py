"""E13 (work stealing): cost-model chunk planner vs static round-robin.

The work-stealing engine of the sharded campaign (PR 6) replaces the static
one-shard-per-worker round-robin partition with many cost-balanced chunks
pulled off the pool's shared queue.  Its claims are regenerated here with
*measured* per-representative integration costs:

* **Skewed fleet: >= 1.5x.**  A fleet whose variant catalog cycles
  [premium, basic, basic, basic] — premium builds carry a large installed
  base and hence expensive busy-window analyses — puts every heavy
  representative on a position that is 0 mod 4.  Cyclic round-robin
  dealing aliases with that structure at ``workers=4``: one worker is
  dealt *all* the premium items while three idle on basic ones, whereas
  cost-model chunking plus completion-driven dispatch spreads the premiums
  one per worker.  The deterministic makespan model
  (max shard cost for the static plan, list scheduling over the LPT chunk
  order for the stealing plan, both over the same measured costs) must show
  the stealing plan >= 1.5x faster.
* **Uniform fleet: near-linear.**  On a cost-uniform fleet the chunked
  partition must not *lose* to round-robin: list-scheduled efficiency
  (ideal makespan / modeled makespan) stays >= 0.75 at ``workers=4``.
* **Verdict parity.**  A real pooled campaign with the cost planner and
  stealing enabled produces byte-identical wave records to ``workers=1``
  and to the round-robin/no-steal configuration.

The makespan comparison is a *model* over measured single-item costs rather
than wall-clock pool timing because CI runners routinely expose a single
core, where any process pool measures fork overhead, not scheduling.  The
measured quantities land in ``BENCH_e13_work_stealing.json``.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, CampaignResult
from repro.fleet.shard import ShardItem, ShardTask, execute_shard, plan_chunks, plan_shards
from repro.fleet.vehicle import FleetSpec, FleetVehicle, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract

SEED = 7
WORKERS = 4


def _request(vehicle: FleetVehicle) -> ChangeRequest:
    contract = build_update_contract(vehicle.wcet_factor)
    return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                         component=contract.component, contract=contract)


def _representatives(extra_components: int, variants: int,
                     seed: int) -> List[FleetVehicle]:
    """One vehicle per variant — the representative set of one wave."""
    spec = FleetSpec(size=variants, seed=seed, num_variants=variants,
                     extra_components=extra_components)
    return generate_fleet(spec)


def _measure_costs(build_vehicles, repeats: int = 3) -> List[float]:
    """Measured cold integration cost (seconds) of each representative.

    Each item runs as its own single-item shard with a task-local cache, so
    every measurement is a genuine cold busy-window derivation over the
    vehicle's full installed base — the quantity the campaign's EWMA cost
    model estimates from prior waves.  ``build_vehicles`` is a zero-argument
    factory returning a *fresh* representative list; min-of-N runs over
    fresh fleets (``request_change`` adopts the update, so a vehicle cannot
    be measured twice) keep one scheduler stall on a loaded runner from
    distorting a single item's cost.
    """
    best: List[float] = []
    for _ in range(repeats):
        vehicles = build_vehicles()
        for position, vehicle in enumerate(vehicles):
            item = ShardItem(position=position, vehicle=vehicle,
                             request=_request(vehicle))
            result = execute_shard(ShardTask(shard_index=0, items=[item]))
            elapsed = max(result.verdicts[0].elapsed_s, 1e-9)
            if position >= len(best):
                best.append(elapsed)
            else:
                best[position] = min(best[position], elapsed)
    return best


def _round_robin_makespan(costs: Sequence[float], workers: int) -> float:
    """Static plan: every worker runs exactly its dealt shard."""
    shards = plan_shards(len(costs), workers)
    return max(sum(costs[i] for i in shard) for shard in shards)


def _stealing_makespan(costs: Sequence[float], workers: int,
                       groups: Optional[Sequence[object]] = None) -> float:
    """List-schedule the LPT chunk order onto earliest-free workers.

    This models exactly what ``imap_unordered`` with ``chunksize=1`` over
    the :func:`plan_chunks` dispatch list does: an idle worker pulls the
    next chunk the moment it finishes its current one.
    """
    chunks = plan_chunks(len(costs), workers, costs=list(costs), groups=groups)
    loads = [0.0] * workers
    for chunk in chunks:
        slot = loads.index(min(loads))
        loads[slot] += sum(costs[i] for i in chunk)
    return max(loads)


def _premium_catalog(heavy: Sequence[FleetVehicle],
                     light: Sequence[FleetVehicle]) -> List[FleetVehicle]:
    """A variant catalog cycling [premium, basic, basic, basic].

    Every fourth representative is a premium build — the position pattern
    that aliases exactly with cyclic round-robin dealing at ``workers=4``:
    one worker is dealt *every* premium representative.
    """
    mixed: List[FleetVehicle] = []
    for index, vehicle in enumerate(heavy):
        mixed.append(vehicle)
        mixed.extend(light[3 * index:3 * index + 3])
    return mixed


def _digest(result: CampaignResult) -> Tuple:
    return (result.fleet_size, result.admitted, result.rejected,
            result.deviating, result.refined, result.rolled_back,
            result.halted, result.halted_wave,
            [record.to_dict() for record in result.waves])


def _run_campaign(fleet_size: int, workers: int, heterogeneity: float = 0.15,
                  **kwargs) -> CampaignResult:
    spec = FleetSpec(size=fleet_size, seed=SEED, num_variants=6,
                     heterogeneity=heterogeneity)
    cache = AnalysisCache(max_entries=16384)
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, _request, analysis_cache=cache,
                        batch_admission=True, workers=workers,
                        feedback_seed=SEED, **kwargs)
    return campaign.run()


@pytest.mark.benchmark(group="e13-work-stealing")
def test_e13_skewed_fleet_steal_vs_round_robin(benchmark):
    """Cost-model chunking + stealing >= 1.5x over static round-robin on a
    skewed fleet at workers=4; near-linear on the uniform fleet."""
    heavy_variants, light_variants = 4, 12
    heavy_extras, light_extras = 40, 2

    def build_skewed() -> List[FleetVehicle]:
        return _premium_catalog(
            _representatives(heavy_extras, heavy_variants, seed=SEED),
            _representatives(light_extras, light_variants, seed=SEED + 1))

    skewed_costs = _measure_costs(build_skewed)

    rr_makespan = _round_robin_makespan(skewed_costs, WORKERS)
    steal_makespan = _stealing_makespan(skewed_costs, WORKERS)
    speedup = rr_makespan / steal_makespan

    uniform_costs = _measure_costs(
        lambda: _representatives(light_extras, 16, seed=SEED + 2))
    ideal = sum(uniform_costs) / WORKERS
    uniform_efficiency = ideal / _stealing_makespan(uniform_costs, WORKERS)

    benchmark(lambda: plan_chunks(len(skewed_costs), WORKERS,
                                  costs=skewed_costs))

    heavy_cost = sum(skewed_costs[0::4]) / heavy_variants
    light_cost = (sum(skewed_costs) - sum(skewed_costs[0::4])) / light_variants
    row = {
        "items": len(skewed_costs),
        "workers": WORKERS,
        "cpu_count": multiprocessing.cpu_count(),
        "heavy_extras": heavy_extras,
        "light_extras": light_extras,
        "heavy_cost_s": heavy_cost,
        "light_cost_s": light_cost,
        "skew_ratio": heavy_cost / light_cost if light_cost else float("inf"),
        "round_robin_makespan_s": rr_makespan,
        "stealing_makespan_s": steal_makespan,
        "speedup": speedup,
        "uniform_efficiency": uniform_efficiency,
    }
    print_table("E13: work-stealing chunk plan vs static round-robin "
                "(target: >= 1.5x skewed, >= 0.75 uniform efficiency)", [row])
    write_bench_record("e13_work_stealing", row)
    assert speedup >= 1.5
    assert uniform_efficiency >= 0.75


@pytest.mark.benchmark(group="e13-work-stealing")
def test_e13_stealing_verdict_parity(benchmark):
    """The work-stealing pooled engine is byte-identical to sequential and
    to the round-robin/no-steal configuration on a real pool — on a
    cost-skewed fleet (high heterogeneity) and a uniform one alike."""
    fleet_size = 18 if quick_mode() else 36
    rows = []
    for label, heterogeneity in (("skewed", 0.35), ("uniform", 0.0)):
        sequential = _run_campaign(fleet_size, workers=1,
                                   heterogeneity=heterogeneity)
        stealing = _run_campaign(fleet_size, workers=3,
                                 heterogeneity=heterogeneity,
                                 shard_planner="cost", steal=True)
        static = _run_campaign(fleet_size, workers=3,
                               heterogeneity=heterogeneity,
                               shard_planner="round_robin", steal=False)
        assert _digest(stealing) == _digest(sequential)
        assert _digest(static) == _digest(sequential)
        assert stealing.admitted == fleet_size
        assert stealing.shard_telemetry  # pooled runs record telemetry
        rows.append({"fleet": label, "admitted": stealing.admitted,
                     "steal_shards": len(stealing.shard_telemetry),
                     "static_shards": len(static.shard_telemetry),
                     "identical": True})
    benchmark(lambda: plan_chunks(64, WORKERS))
    print_table("E13: verdict parity across scheduler configurations "
                "(skewed and uniform fleets vs workers=1)", rows)
