"""Software components and micro-servers.

The CCC execution domain builds on microkernel component semantics: "micro
servers provide services that can be granted to other components that require
these services" (Section II.B).  ``Component`` is a deployable unit carrying
its contract; ``MicroServer`` is a component that additionally exports
services; ``ServiceSession`` is an explicit, revocable grant from a provider
to a client — the unit on which the principle of least privilege and the
distributed access control of the security layer operate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.contracts.model import Contract


class ComponentError(RuntimeError):
    """Raised for invalid component wiring or lifecycle operations."""


class ComponentState(enum.Enum):
    """Lifecycle of a deployed component."""

    DECLARED = "declared"
    RUNNING = "running"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"
    STOPPED = "stopped"


@dataclass
class ServiceSession:
    """A granted client/provider service relationship.

    Sessions are the capability-like objects through which all inter-component
    communication flows; revoking a session cuts the client off from the
    provider, which is how the security layer contains a compromised
    component.
    """

    service: str
    provider: str
    client: str
    max_latency: Optional[float] = None
    active: bool = True

    def revoke(self) -> None:
        self.active = False

    @property
    def key(self) -> str:
        return f"{self.client}->{self.provider}:{self.service}"


class Component:
    """A deployable software component with an explicit contract."""

    def __init__(self, contract: Contract, version: str = "1.0") -> None:
        self.contract = contract
        self.version = version
        self.state = ComponentState.DECLARED
        self.sessions: List[ServiceSession] = []
        self.health: float = 1.0  # 1.0 = nominal, 0.0 = failed

    @property
    def name(self) -> str:
        return self.contract.component

    @property
    def is_micro_server(self) -> bool:
        return bool(self.contract.provides)

    def start(self) -> None:
        if self.state in (ComponentState.QUARANTINED,):
            raise ComponentError(f"component {self.name} is quarantined and cannot start")
        self.state = ComponentState.RUNNING

    def stop(self) -> None:
        self.state = ComponentState.STOPPED
        for session in self.sessions:
            session.revoke()

    def quarantine(self) -> None:
        """Isolate the component after a security incident: sessions revoked,
        restart blocked until the MCC re-integrates it."""
        self.state = ComponentState.QUARANTINED
        for session in self.sessions:
            session.revoke()

    def degrade(self, health: float) -> None:
        if not 0.0 <= health <= 1.0:
            raise ComponentError("health must be within [0, 1]")
        self.health = health
        if self.state == ComponentState.RUNNING and health < 1.0:
            self.state = ComponentState.DEGRADED
        if health >= 1.0 and self.state == ComponentState.DEGRADED:
            self.state = ComponentState.RUNNING

    @property
    def running(self) -> bool:
        return self.state in (ComponentState.RUNNING, ComponentState.DEGRADED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Component({self.name!r}, state={self.state.value}, health={self.health:.2f})"


class MicroServer(Component):
    """A component that provides services to clients.

    The distinction is purely semantic (any component with provisions acts as
    a micro-server); this subclass exists to make example/system code read
    like the paper's architecture description.
    """

    def grant(self, client: "Component", service: str,
              max_latency: Optional[float] = None) -> ServiceSession:
        if service not in self.contract.provided_services():
            raise ComponentError(
                f"micro-server {self.name} does not provide service {service!r}")
        session = ServiceSession(service=service, provider=self.name,
                                 client=client.name, max_latency=max_latency)
        self.sessions.append(session)
        client.sessions.append(session)
        return session


class ComponentRegistry:
    """All components deployed in one execution domain, plus session wiring."""

    def __init__(self) -> None:
        self._components: Dict[str, Component] = {}
        self._sessions: Dict[str, ServiceSession] = {}

    # -- membership ----------------------------------------------------------

    def add(self, component: Component) -> Component:
        if component.name in self._components:
            raise ComponentError(f"duplicate component {component.name!r}")
        self._components[component.name] = component
        return component

    def remove(self, name: str) -> Component:
        component = self.get(name)
        component.stop()
        for session in list(component.sessions):
            self._sessions.pop(session.key, None)
        del self._components[name]
        return component

    def get(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError as exc:
            raise ComponentError(f"unknown component {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def components(self) -> List[Component]:
        return list(self._components.values())

    def contracts(self) -> List[Contract]:
        return [component.contract for component in self._components.values()]

    # -- service wiring --------------------------------------------------------

    def providers_of(self, service: str) -> List[Component]:
        return [c for c in self._components.values()
                if service in c.contract.provided_services()]

    def connect(self, client_name: str, service: str,
                provider_name: Optional[str] = None) -> ServiceSession:
        """Create a session from ``client`` to a provider of ``service``.

        If ``provider_name`` is not given, a unique provider must exist.
        """
        client = self.get(client_name)
        if provider_name is None:
            providers = self.providers_of(service)
            if not providers:
                raise ComponentError(f"no provider for service {service!r}")
            if len(providers) > 1:
                raise ComponentError(
                    f"ambiguous providers for service {service!r}: "
                    f"{sorted(p.name for p in providers)}")
            provider = providers[0]
        else:
            provider = self.get(provider_name)
            if service not in provider.contract.provided_services():
                raise ComponentError(
                    f"component {provider_name} does not provide {service!r}")
        requirement = next((r for r in client.contract.requires if r.service == service), None)
        session = ServiceSession(service=service, provider=provider.name, client=client.name,
                                 max_latency=requirement.max_latency if requirement else None)
        if session.key in self._sessions:
            raise ComponentError(f"session {session.key} already exists")
        self._sessions[session.key] = session
        provider.sessions.append(session)
        client.sessions.append(session)
        return session

    def autowire(self) -> List[ServiceSession]:
        """Connect every required service to its (unique) provider.

        Optional requirements with no provider are skipped; mandatory ones
        raise :class:`ComponentError`.
        """
        created: List[ServiceSession] = []
        for component in self._components.values():
            for requirement in component.contract.requires:
                key_exists = any(
                    s.client == component.name and s.service == requirement.service
                    for s in component.sessions if s.active)
                if key_exists:
                    continue
                providers = self.providers_of(requirement.service)
                if not providers:
                    if requirement.optional:
                        continue
                    raise ComponentError(
                        f"component {component.name} requires service "
                        f"{requirement.service!r} but no provider exists")
                if len(providers) > 1:
                    raise ComponentError(
                        f"ambiguous providers for {requirement.service!r} required by "
                        f"{component.name}")
                created.append(self.connect(component.name, requirement.service,
                                            providers[0].name))
        return created

    def sessions(self) -> List[ServiceSession]:
        return list(self._sessions.values())

    def active_sessions(self) -> List[ServiceSession]:
        return [s for s in self._sessions.values() if s.active]

    def sessions_of(self, component_name: str) -> List[ServiceSession]:
        return [s for s in self._sessions.values()
                if s.client == component_name or s.provider == component_name]

    def revoke_sessions(self, component_name: str) -> int:
        """Revoke every session touching the component; returns the count."""
        count = 0
        for session in self.sessions_of(component_name):
            if session.active:
                session.revoke()
                count += 1
        return count
