"""Adversity layer: hostile and degraded-world campaigns (E14–E16).

Two differential harnesses pin the load-bearing guarantees of
:mod:`repro.fleet.adversity`:

* **Worker parity** — every adversity model draws its randomness from
  ``SeededRNG`` streams keyed on campaign parameters and executes in the
  parent in wave order, so a perturbed campaign must stay byte-identical
  between ``workers=1`` and a pooled layout (hypothesis-seeded).
* **Sequential reference** — the halt decision under compromised/false
  deviation feedback is recomputed by an independent sequential replay
  (per-vehicle feedback draws, two-sided band check, a hand-rolled
  sliding-window rate counter standing in for the IDS) and compared wave by
  wave against what the campaign engine actually did.

Deterministic tests cover the carry/straggler/abandon delivery accounting,
thermal WCET inflation and its caching, the no-op identity of the base
model, and the resume/adversity exclusion.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cache import AnalysisCache
from repro.fleet.adversity import (MONITOR_PEER, AdversityModel,
                                   IntrusionAdversity, LossyDeliveryAdversity,
                                   ThermalAdversity)
from repro.fleet.campaign import (Campaign, CampaignError, WavePolicy,
                                  plan_waves)
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract
from repro.sim.random import SeededRNG, derive_seed

from test_parallel_campaign import campaign_digest, fleet_digest


def make_factory(utilization=0.22):
    """Per-variant ADD update factory (one shared contract per variant)."""
    contracts = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor,
                                             utilization=utilization)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    return factory


def run_adverse(size, seed, workers, adversity, *, policy=None,
                utilization=0.22, failure_rate=0.0, num_variants=3,
                extra_components=2):
    """One campaign run under ``adversity`` (pass a FRESH model per run —
    adversity models are stateful)."""
    spec = FleetSpec(size=size, seed=seed, num_variants=num_variants,
                     extra_components=extra_components)
    cache = AnalysisCache()
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, make_factory(utilization), policy=policy,
                        analysis_cache=cache, workers=workers,
                        failure_injection_rate=failure_rate,
                        feedback_seed=seed, adversity=adversity)
    return fleet, campaign, campaign.run()


class TestNoOpAdversity:
    """The base model is the identity: a campaign with it is byte-identical
    to one without any adversity at all."""

    def test_base_model_matches_unperturbed_run(self):
        fleet_none, _, plain = run_adverse(12, seed=7, workers=1,
                                           adversity=None)
        fleet_noop, _, noop = run_adverse(12, seed=7, workers=1,
                                          adversity=AdversityModel())
        assert campaign_digest(noop) == campaign_digest(plain)
        assert fleet_digest(fleet_noop) == fleet_digest(fleet_none)

    def test_perturbation_fields_stay_zero_unperturbed(self):
        _, _, result = run_adverse(10, seed=1, workers=1, adversity=None)
        assert (result.undelivered, result.retried, result.abandoned,
                result.discounted) == (0, 0, 0, 0)
        for record in result.waves:
            assert record.delivered == record.size
            assert record.effective_failures == record.failures

    def test_resume_and_adversity_are_mutually_exclusive(self, tmp_path):
        policy = WavePolicy(canary_size=1, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.0)
        checkpoint_path = str(tmp_path / "halt.ckpt")
        spec = FleetSpec(size=8, seed=3, num_variants=2, extra_components=2)
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        campaign = Campaign(fleet, make_factory(), policy=policy,
                            analysis_cache=cache, workers=1,
                            failure_injection_rate=1.0, feedback_seed=3,
                            checkpoint_path=checkpoint_path)
        halted = campaign.run()
        assert halted.halted and campaign.last_checkpoint is not None
        resumed_campaign = Campaign(fleet, make_factory(), policy=policy,
                                    analysis_cache=cache, workers=1,
                                    feedback_seed=3,
                                    adversity=LossyDeliveryAdversity(0.5))
        with pytest.raises(CampaignError, match="adversity"):
            resumed_campaign.run(resume_from=campaign.last_checkpoint)

    def test_halt_under_adversity_writes_no_checkpoint(self, tmp_path):
        """Adverse campaigns cannot be checkpoint-resumed (the adversity
        state is not snapshotted), so a halt must not leave a checkpoint."""
        checkpoint_path = str(tmp_path / "adverse.ckpt")
        policy = WavePolicy(canary_size=2, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.0)
        adversity = IntrusionAdversity(compromise_rate=1.0,
                                       discount_suspected=False, seed=5)
        spec = FleetSpec(size=8, seed=5, num_variants=2, extra_components=2)
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        campaign = Campaign(fleet, make_factory(), policy=policy,
                            analysis_cache=cache, workers=1, feedback_seed=5,
                            adversity=adversity,
                            checkpoint_path=checkpoint_path)
        result = campaign.run()
        assert result.halted
        assert campaign.last_checkpoint is None
        assert not os.path.exists(checkpoint_path)


class TestWorkerParity:
    """Acceptance criterion: byte-identical workers=1 vs pooled results for
    every adversity model — digests include the undelivered/retried/
    abandoned/discounted accounting via the wave ``to_dict`` rows."""

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           drop_rate=st.sampled_from([0.2, 0.5]))
    def test_lossy_delivery_parity(self, seed, drop_rate):
        fleet_seq, _, sequential = run_adverse(
            10, seed=seed, workers=1,
            adversity=LossyDeliveryAdversity(drop_rate, max_retries=2,
                                             seed=seed))
        fleet_par, _, parallel = run_adverse(
            10, seed=seed, workers=4,
            adversity=LossyDeliveryAdversity(drop_rate, max_retries=2,
                                             seed=seed))
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           mode=st.sampled_from(["over_report", "under_report"]),
           discount=st.booleans())
    def test_intrusion_parity(self, seed, mode, discount):
        policy = WavePolicy(canary_size=2, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.25)

        def model():
            return IntrusionAdversity(compromise_rate=0.3, mode=mode,
                                      discount_suspected=discount, seed=seed)

        fleet_seq, _, sequential = run_adverse(10, seed=seed, workers=1,
                                               adversity=model(),
                                               policy=policy)
        fleet_par, _, parallel = run_adverse(10, seed=seed, workers=4,
                                             adversity=model(), policy=policy)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           peak=st.sampled_from([70.0, 95.0]))
    def test_thermal_parity(self, seed, peak):
        policy = WavePolicy(canary_size=2, wave_fractions=(0.5, 1.0),
                            max_failure_rate=1.0)

        def model():
            return ThermalAdversity(peak_ambient_c=peak, peak_wave=1,
                                    wave_dt_s=240.0)

        fleet_seq, _, sequential = run_adverse(10, seed=seed, workers=1,
                                               adversity=model(),
                                               policy=policy,
                                               utilization=0.3)
        fleet_par, _, parallel = run_adverse(10, seed=seed, workers=4,
                                             adversity=model(), policy=policy,
                                             utilization=0.3)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)


class _ReferenceRateIds:
    """Independent stand-in for the IDS rate rule: a per-sender sliding
    window (``window_s`` seconds) whose population, divided by the window,
    must not exceed ``max_rate_hz``; every excess observation is one
    violation, and ``threshold`` violations make the sender suspected."""

    def __init__(self, window_s=1.0, max_rate_hz=2.0, threshold=3):
        self.window_s = window_s
        self.max_rate_hz = max_rate_hz
        self.threshold = threshold
        self._times = {}
        self._violations = {}

    def report(self, sender, time):
        window = self._times.setdefault(sender, [])
        window.append(time)
        cutoff = time - self.window_s
        while window and window[0] < cutoff:
            window.pop(0)
        if len(window) / self.window_s > self.max_rate_hz:
            self._violations[sender] = self._violations.get(sender, 0) + 1

    def suspected(self, sender):
        return self._violations.get(sender, 0) >= self.threshold


def intrusion_reference(fleet, policy, *, compromise_rate, mode,
                        reports_per_wave, suspicion_threshold,
                        discount_suspected, adversity_seed, feedback_seed):
    """Sequential replay of the campaign's feedback grading and halt logic.

    Assumes every delivered vehicle is admitted (the caller runs a low-
    utilization update and asserts ``rejected == 0``).  Returns the
    per-executed-wave ``(deviating, discounted)`` pairs and the halting wave
    index (``None`` when the rollout completes).
    """
    ids = _ReferenceRateIds(threshold=suspicion_threshold)
    spacing = ids.window_s / (4.0 * reports_per_wave)
    per_wave = []
    halted_wave = None
    for wave_index, (_, wave) in enumerate(plan_waves(fleet, policy)):
        deviating = discounted = 0
        for vehicle in wave:
            rng = SeededRNG(derive_seed(feedback_seed, vehicle.index))
            rng.uniform()  # failure-injection draw (rate 0 in this harness)
            factor = rng.uniform(0.92, 1.08)
            compromised = SeededRNG(derive_seed(
                adversity_seed, "compromise", vehicle.index)).uniform() \
                < compromise_rate
            if compromised:
                factor = 1.6 if mode == "over_report" else 0.02
            # Two-sided band, tolerance 0.1: honest factors stay inside,
            # both forgeries land outside.
            if not abs(factor - 1.0) > 0.1:
                continue
            deviating += 1
            reports = reports_per_wave \
                if compromised and mode == "over_report" else 1
            for copy in range(reports):
                ids.report(vehicle.vehicle_id,
                           float(wave_index) + copy * spacing)
            if discount_suspected and ids.suspected(vehicle.vehicle_id):
                discounted += 1
        per_wave.append((deviating, discounted))
        if policy.halts(max(deviating - discounted, 0), len(wave)):
            halted_wave = wave_index
            break
    return per_wave, halted_wave


class TestIntrusionSequentialReference:
    """Acceptance criterion: halt decisions under compromised/false
    deviation feedback match an independent sequential reference."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           compromise_rate=st.sampled_from([0.0, 0.25, 0.6]),
           mode=st.sampled_from(["over_report", "under_report"]),
           discount=st.booleans())
    def test_halt_matches_reference(self, seed, compromise_rate, mode,
                                    discount):
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                            max_failure_rate=0.2)
        adversity = IntrusionAdversity(compromise_rate=compromise_rate,
                                       mode=mode, discount_suspected=discount,
                                       seed=seed)
        fleet, _, result = run_adverse(14, seed=seed, workers=1,
                                       adversity=adversity, policy=policy,
                                       utilization=0.08)
        # The reference replays grading, not admission — the low-utilization
        # update must admit every vehicle for the comparison to be exact.
        assert result.rejected == 0
        per_wave, halted_wave = intrusion_reference(
            fleet, policy, compromise_rate=compromise_rate, mode=mode,
            reports_per_wave=adversity.reports_per_wave,
            suspicion_threshold=adversity.ids.suspicion_threshold,
            discount_suspected=discount, adversity_seed=seed,
            feedback_seed=seed)
        assert len(result.waves) == len(per_wave)
        for record, (deviating, discounted) in zip(result.waves, per_wave):
            assert record.deviating == deviating
            assert record.discounted == discounted
        assert result.halted == (halted_wave is not None)
        assert result.halted_wave == halted_wave

    def test_discount_keeps_forged_halt_from_firing(self):
        """The defended/undefended pair: identical forged reports halt the
        undefended campaign and are discounted by the defended one."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                            max_failure_rate=0.2)

        def model(discount):
            return IntrusionAdversity(compromise_rate=0.5, seed=11,
                                      discount_suspected=discount)

        _, _, undefended = run_adverse(14, seed=11, workers=1,
                                       adversity=model(False), policy=policy)
        _, _, defended = run_adverse(14, seed=11, workers=1,
                                     adversity=model(True), policy=policy)
        assert undefended.halted
        assert defended.completed and not defended.halted
        assert defended.discounted == defended.deviating > 0

    def test_suspects_are_exactly_the_compromised_reporters(self):
        adversity = IntrusionAdversity(compromise_rate=0.5, seed=11)
        fleet, _, result = run_adverse(14, seed=11, workers=1,
                                       adversity=adversity)
        suspects = set(adversity.ids.suspected_compromised())
        assert suspects
        assert suspects == set(adversity.compromised_ids)

    def test_under_reporting_is_caught_by_two_sided_band(self):
        """A stealthy under-reporter forges implausibly *small* execution
        times; the two-sided band flags them and — sending only one report
        per wave — the sender is never rate-suspected, so the failures
        count and the campaign halts (the defense narrative of E14)."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                            max_failure_rate=0.2)
        adversity = IntrusionAdversity(compromise_rate=0.5,
                                       mode="under_report", seed=11)
        _, _, result = run_adverse(14, seed=11, workers=1,
                                   adversity=adversity, policy=policy)
        assert result.deviating > 0
        assert result.discounted == 0
        assert result.halted


class TestLossyDelivery:
    """Carry/retry/straggler/abandon accounting of the delivery seam."""

    def test_full_coverage_with_generous_retries(self):
        adversity = LossyDeliveryAdversity(0.5, max_retries=40, seed=3)
        fleet, _, result = run_adverse(12, seed=3, workers=1,
                                       adversity=adversity)
        assert result.abandoned == 0
        assert all(vehicle.updated for vehicle in fleet)
        assert result.admitted + result.rejected == len(fleet)

    def test_accounting_identities(self):
        adversity = LossyDeliveryAdversity(0.4, max_retries=2, seed=9)
        fleet, _, result = run_adverse(12, seed=9, workers=1,
                                       adversity=adversity)
        assert result.completed
        # Every drop is one undelivered event (the vehicle was staged but
        # not updated that wave) that either defers or abandons the vehicle.
        assert adversity.drops == result.undelivered
        assert result.abandoned <= result.undelivered
        assert result.retried == sum(record.retried for record in result.waves)
        updated = sum(1 for vehicle in fleet if vehicle.updated)
        assert updated + result.abandoned == len(fleet)
        assert sorted(adversity.abandoned_ids) == sorted(
            vehicle.vehicle_id for vehicle in fleet if not vehicle.updated)

    def test_straggler_waves_extend_the_plan(self):
        adversity = LossyDeliveryAdversity(0.6, max_retries=30, seed=4)
        _, _, result = run_adverse(12, seed=4, workers=1, adversity=adversity)
        kinds = [record.kind for record in result.waves]
        planned = {"canary", "wave", "full"}
        assert set(kinds) - planned == {"straggler"}
        # Stragglers strictly follow the planned rollout.
        first_straggler = kinds.index("straggler")
        assert all(kind == "straggler" for kind in kinds[first_straggler:])

    def test_zero_retries_abandons_on_first_drop(self):
        adversity = LossyDeliveryAdversity(0.5, max_retries=0, seed=7)
        fleet, _, result = run_adverse(12, seed=7, workers=1,
                                       adversity=adversity)
        assert result.retried == 0  # nothing is ever carried forward
        assert result.abandoned == adversity.drops  # every drop abandons
        assert result.undelivered == result.abandoned
        assert result.abandoned == sum(
            1 for vehicle in fleet if not vehicle.updated)

    def test_never_delivering_model_raises_instead_of_spinning(self):
        class BlackHole(AdversityModel):
            def deliver(self, vehicle, wave_index, attempt):
                return False

        with pytest.raises(CampaignError, match="stalled"):
            run_adverse(6, seed=1, workers=1, adversity=BlackHole())

    def test_drop_rate_validation(self):
        with pytest.raises(ValueError):
            LossyDeliveryAdversity(1.0)
        with pytest.raises(ValueError):
            LossyDeliveryAdversity(0.2, max_retries=-1)


class TestThermalAdversity:
    """The admission-input seam: WCET inflation under DVFS throttling."""

    def test_ambient_profile_is_triangular(self):
        adversity = ThermalAdversity(base_ambient_c=30.0, peak_ambient_c=90.0,
                                     peak_wave=2)
        assert adversity.ambient_at(0) == pytest.approx(30.0)
        assert adversity.ambient_at(1) == pytest.approx(60.0)
        assert adversity.ambient_at(2) == pytest.approx(90.0)
        assert adversity.ambient_at(3) == pytest.approx(60.0)
        assert adversity.ambient_at(4) == pytest.approx(30.0)
        assert adversity.ambient_at(10) == pytest.approx(30.0)

    def test_inflation_scales_wcet_and_caps_below_deadline(self):
        adversity = ThermalAdversity()
        contract = build_update_contract(1.0, utilization=0.3)
        inflated = adversity._inflate(contract, 0.5)
        timing = contract.timing
        deadline = timing.deadline if timing.deadline is not None \
            else timing.period
        assert inflated.timing.wcet == pytest.approx(
            min(timing.wcet / 0.5, 0.99 * deadline))
        assert inflated.timing.wcet > timing.wcet
        barely = adversity._inflate(contract, 0.0001)
        assert barely.timing.wcet == pytest.approx(0.99 * deadline)

    def test_inflated_contracts_are_cached_per_speed(self):
        adversity = ThermalAdversity()
        contract = build_update_contract(1.0, utilization=0.3)
        assert adversity._inflate(contract, 0.8) \
            is adversity._inflate(contract, 0.8)
        assert adversity._inflate(contract, 0.8) \
            is not adversity._inflate(contract, 0.6)

    def test_transform_request_is_identity_at_full_speed(self):
        adversity = ThermalAdversity()
        contract = build_update_contract(1.0)
        request = ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                component=contract.component,
                                contract=contract)
        spec = FleetSpec(size=1, seed=0, num_variants=1, extra_components=0)
        vehicle = generate_fleet(spec)[0]
        assert adversity.speed_factor == 1.0
        assert adversity.transform_request(vehicle, request, 0) is request

    def test_heat_wave_throttles_and_flips_verdicts(self):
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 0.7, 1.0),
                            max_failure_rate=1.0)
        adversity = ThermalAdversity(peak_ambient_c=90.0, peak_wave=2,
                                     wave_dt_s=240.0)
        _, _, result = run_adverse(14, seed=2, workers=1, adversity=adversity,
                                   policy=policy, utilization=0.35,
                                   extra_components=6)
        assert result.completed
        assert len(adversity.trace) == len(result.waves)
        speeds = [row[3] for row in adversity.trace]
        assert min(speeds) < 1.0
        rejected_by_wave = {record.index: record.rejected
                            for record in result.waves}
        hot = sum(count for wave, count in rejected_by_wave.items()
                  if adversity.trace[wave][3] < 1.0)
        cool = sum(count for wave, count in rejected_by_wave.items()
                   if adversity.trace[wave][3] >= 1.0)
        assert hot > 0  # inflated WCETs flipped verdicts in throttled waves
        assert cool == 0  # the same update admits cleanly at full speed

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ThermalAdversity(peak_wave=-1)
        with pytest.raises(ValueError):
            ThermalAdversity(wave_dt_s=0.0)
