"""The asyncio fleet admission service: many campaigns, one wave at a time.

:class:`AdmissionService` turns the re-entrant
:class:`~repro.fleet.engine.CampaignEngine` into a long-running, multi-tenant
admission frontend.  Tenants submit campaigns
(:class:`~repro.service.schemas.SubmitCampaign`); a pool of scheduler slots
drives every live engine **one** :meth:`~repro.fleet.engine.CampaignEngine.step`
per claim, rotating round-robin across tenants (FIFO within a tenant), so a
tenant with a 500-vehicle rollout cannot starve a tenant with a canary
probe.  Each executed wave is published to the job's subscribers as a
:class:`~repro.service.schemas.WaveProgress` through the async-iterator
:meth:`AdmissionService.stream`.

Halt, resume and rollback are API calls over the existing checkpoint
machinery: an operator :class:`~repro.service.schemas.HaltRequest` parks the
job at its **next wave boundary** with a
:meth:`~repro.fleet.engine.CampaignEngine.checkpoint`-serialized state (a
policy halt parks it with the halt-written
:attr:`~repro.fleet.campaign.Campaign.last_checkpoint`);
:class:`~repro.service.schemas.ResumeRequest` re-provisions a fresh engine
with ``resume_from=`` (optionally remediating the halt threshold), and
:class:`~repro.service.schemas.RollbackRequest` restores the fleet's
pre-campaign vehicle states and retires the job.

Tenancy and sharing
-------------------

Every job owns its fleet and its :class:`~repro.analysis.cache.AnalysisCache`
— verdict isolation is structural.  What tenants *share* is the optional
``store_dir``: one append-only
:class:`~repro.analysis.cache_store.SegmentStore` directory every campaign
publishes its newly derived busy-window analyses to and absorbs its
neighbours' from (safe concurrently — each writer owns its segment, and
writer ids are per-instance).  Sharing moves wall time only: the cache is
content-addressed and the analysis exact, so a tenant's campaign result is
byte-identical to an isolated run of the same submission — the E17
benchmark measures the throughput gain and asserts the identity.

Determinism
-----------

Steps execute inline on the event loop, one at a time — the service
interleaves campaigns at wave granularity rather than running waves of
different tenants in true parallel (a campaign's own ``workers`` knob
provides real parallelism inside a wave through its shard pool).  Inline
stepping keeps the service loop deterministic and lock-free; the scheduling
order changes *when* a wave runs, never what it computes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import AsyncIterator, Deque, Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.contracts.model import Contract
from repro.fleet.campaign import (Campaign, CampaignCheckpoint,
                                  CampaignResult, WavePolicy, plan_waves)
from repro.fleet.engine import CampaignEngine
from repro.fleet.vehicle import FleetSpec, FleetVehicle, VehicleState, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.service.schemas import (CampaignStatus, HaltRequest, JobState,
                                   ResumeRequest, RollbackRequest,
                                   ServiceError, SubmitCampaign,
                                   SubmitReceipt, WaveProgress)

__all__ = ["AdmissionService"]


@dataclass
class _Job:
    """Service-internal mutable state of one submitted campaign."""

    job_id: str
    request: SubmitCampaign
    condition: asyncio.Condition
    state: str = JobState.QUEUED
    fleet: Optional[List[FleetVehicle]] = None
    cache: Optional[AnalysisCache] = None
    campaign: Optional[Campaign] = None
    engine: Optional[CampaignEngine] = None
    #: Resumable boundary state while parked (halt-written or operator-taken).
    checkpoint: Optional[CampaignCheckpoint] = None
    #: Pre-campaign vehicle states, for :meth:`AdmissionService.rollback`.
    initial_states: Optional[List[VehicleState]] = None
    #: Per-variant update contracts, stable across provision/resume cycles.
    update_contracts: Dict[int, Contract] = field(default_factory=dict)
    progress: List[WaveProgress] = field(default_factory=list)
    result: Optional[CampaignResult] = None
    error: Optional[str] = None
    halt_requested: bool = False
    #: Remediated halt threshold applied at the next (re-)provisioning.
    max_failure_rate: Optional[float] = None

    async def _notify(self) -> None:
        async with self.condition:
            self.condition.notify_all()


class AdmissionService:
    """Long-running multi-tenant admission frontend over campaign engines.

    Parameters
    ----------
    store_dir:
        Optional directory of the shared append-only analysis-cache store
        every tenant's campaign publishes to and absorbs from.  ``None``
        runs tenants fully isolated (identical results, colder caches).
    slots:
        Number of concurrent scheduler tasks claiming (tenant, job) pairs.
        Each claim executes exactly one wave; more slots means more jobs
        advance per scheduling round.

    Use as an async context manager (``async with AdmissionService(...)``)
    or call :meth:`start`/:meth:`stop` explicitly.  :meth:`stop` parks
    every still-running job at its current wave boundary with a resumable
    checkpoint — a stopped service loses no work.
    """

    def __init__(self, store_dir: Optional[str] = None, slots: int = 2) -> None:
        if slots < 1:
            raise ServiceError("slots must be at least 1")
        self.store_dir = store_dir
        self.slots = slots
        self._jobs: Dict[str, _Job] = {}
        self._tenant_queues: Dict[str, Deque[str]] = {}
        self._tenant_order: List[str] = []
        self._rotation = 0
        self._counter = 0
        self._workers: List[asyncio.Task] = []
        self._work = asyncio.Event()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the scheduler slots (idempotent)."""
        if self._workers:
            return
        self._stopping = False
        self._workers = [asyncio.create_task(self._worker(), name=f"slot-{i}")
                         for i in range(self.slots)]

    async def stop(self) -> None:
        """Stop scheduling and park every running job at a wave boundary."""
        self._stopping = True
        self._work.set()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        for job in self._jobs.values():
            if job.state == JobState.RUNNING and job.engine is not None:
                self._park(job)
                await job._notify()
            elif job.state == JobState.QUEUED:
                job.state = JobState.HALTED
                await job._notify()

    async def __aenter__(self) -> "AdmissionService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- API ---------------------------------------------------------------

    async def submit(self, request: SubmitCampaign) -> SubmitReceipt:
        """Accept one campaign; returns its receipt with the job id."""
        if self._stopping:
            raise ServiceError("service is stopping; not accepting jobs")
        self._counter += 1
        job_id = f"{request.tenant}/{self._counter}"
        job = _Job(job_id=job_id, request=request,
                   condition=asyncio.Condition())
        self._jobs[job_id] = job
        if request.tenant not in self._tenant_queues:
            self._tenant_queues[request.tenant] = deque()
            self._tenant_order.append(request.tenant)
        self._tenant_queues[request.tenant].append(job_id)
        self._work.set()
        policy = WavePolicy(canary_size=request.canary_size,
                            wave_fractions=request.wave_fractions,
                            max_failure_rate=request.max_failure_rate,
                            rollback_on_halt=request.rollback_on_halt)
        waves_planned = len(plan_waves(list(range(request.fleet_size)), policy))
        return SubmitReceipt(job_id=job_id, tenant=request.tenant,
                             state=job.state, fleet_size=request.fleet_size,
                             waves_planned=waves_planned)

    def status(self, job_id: str) -> CampaignStatus:
        """Point-in-time snapshot of one job."""
        job = self._get(job_id)
        result = self._visible_result(job)
        if result is None:
            return CampaignStatus(job_id=job.job_id, tenant=job.request.tenant,
                                  state=job.state, waves_executed=0,
                                  admitted=0, rejected=0, deviating=0,
                                  rolled_back=0, halted_wave=None,
                                  update_coverage=0.0, error=job.error)
        return CampaignStatus(job_id=job.job_id, tenant=job.request.tenant,
                              state=job.state,
                              waves_executed=len(result.waves),
                              admitted=result.admitted,
                              rejected=result.rejected,
                              deviating=result.deviating,
                              rolled_back=result.rolled_back,
                              halted_wave=result.halted_wave,
                              update_coverage=result.update_coverage,
                              error=job.error)

    def result(self, job_id: str) -> CampaignResult:
        """The finalized :class:`CampaignResult` of a completed/halted job."""
        job = self._get(job_id)
        if job.result is None:
            raise ServiceError(f"job {job_id!r} has no finalized result yet "
                               f"(state: {job.state})")
        return job.result

    async def stream(self, job_id: str) -> AsyncIterator[WaveProgress]:
        """Yield the job's wave progress as it executes.

        Starts from the first wave (late subscribers replay the backlog)
        and ends when the job parks or terminates: completion and policy
        halt are both streamed (the closing record carries ``final`` /
        ``halted``), an operator halt simply ends the iterator — resume and
        stream again to follow the rest of the rollout.
        """
        job = self._get(job_id)
        cursor = 0
        while True:
            async with job.condition:
                await job.condition.wait_for(
                    lambda: len(job.progress) > cursor
                    or job.state not in (JobState.QUEUED, JobState.RUNNING))
                if len(job.progress) <= cursor:
                    return
                item = job.progress[cursor]
                cursor += 1
            yield item

    async def wait(self, job_id: str) -> CampaignStatus:
        """Block until the job parks or terminates; returns its status."""
        job = self._get(job_id)
        async with job.condition:
            await job.condition.wait_for(
                lambda: job.state not in (JobState.QUEUED, JobState.RUNNING))
        return self.status(job_id)

    async def halt(self, request: HaltRequest) -> CampaignStatus:
        """Park the job at its next wave boundary; returns once parked.

        A job that completes (or policy-halts) before the flag is seen
        reports that outcome instead — the call never turns an outcome
        back.
        """
        job = self._get(request.job_id)
        if job.state in JobState.TERMINAL or job.state == JobState.HALTED:
            return self.status(job.job_id)
        job.halt_requested = True
        self._work.set()
        async with job.condition:
            await job.condition.wait_for(
                lambda: job.state not in (JobState.QUEUED, JobState.RUNNING))
        return self.status(job.job_id)

    async def resume(self, request: ResumeRequest) -> CampaignStatus:
        """Re-queue a halted job, optionally remediating the halt threshold."""
        job = self._get(request.job_id)
        if job.state != JobState.HALTED:
            raise ServiceError(f"job {request.job_id!r} is {job.state}, "
                               "only halted jobs resume")
        if request.max_failure_rate is not None:
            job.max_failure_rate = request.max_failure_rate
        job.halt_requested = False
        job.result = None
        job.state = JobState.QUEUED
        self._tenant_queues[job.request.tenant].append(job.job_id)
        self._work.set()
        return self.status(job.job_id)

    async def rollback(self, request: RollbackRequest) -> CampaignStatus:
        """Abandon a halted job; the fleet returns to its pre-campaign state."""
        job = self._get(request.job_id)
        if job.state != JobState.HALTED:
            raise ServiceError(f"job {request.job_id!r} is {job.state}, "
                               "only halted jobs roll back")
        if job.fleet is not None and job.initial_states is not None:
            states = {state.vehicle_id: state for state in job.initial_states}
            for vehicle in job.fleet:
                vehicle.restore_state(states[vehicle.vehicle_id])
        job.state = JobState.ROLLED_BACK
        await job._notify()
        return self.status(job.job_id)

    # -- scheduling --------------------------------------------------------

    async def _worker(self) -> None:
        while not self._stopping:
            job = self._claim()
            if job is None:
                self._work.clear()
                await self._work.wait()
                continue
            try:
                self._advance(job)
            except Exception as error:
                if job.engine is not None:
                    job.engine.close()
                    job.engine = None
                job.error = str(error)
                job.state = JobState.FAILED
            if job.state in (JobState.QUEUED, JobState.RUNNING):
                # Still work to do: back to the *head* of the tenant's
                # queue — jobs of one tenant run FIFO, one at a time.
                self._tenant_queues[job.request.tenant].appendleft(job.job_id)
                self._work.set()
            await job._notify()
            # One wave per claim: yield so peers interleave at wave
            # granularity even when this slot could keep running.
            await asyncio.sleep(0)

    def _claim(self) -> Optional[_Job]:
        """Next runnable job, rotating round-robin across tenants."""
        tenants = self._tenant_order
        for offset in range(len(tenants)):
            tenant = tenants[(self._rotation + offset) % len(tenants)]
            queue = self._tenant_queues[tenant]
            while queue:
                job = self._jobs[queue.popleft()]
                if job.state in (JobState.QUEUED, JobState.RUNNING):
                    self._rotation = (self._rotation + offset + 1) \
                        % len(tenants)
                    return job
                # Halted/rolled-back while queued: drop from the queue.
        return None

    def _advance(self, job: _Job) -> None:
        """Execute one scheduling claim: provision, park, or step one wave."""
        if job.halt_requested:
            self._park(job)
            return
        if job.engine is None:
            self._provision(job)
            job.state = JobState.RUNNING
            return
        record = job.engine.step()
        done = job.engine.done
        running = job.engine.state.result
        job.progress.append(WaveProgress(
            job_id=job.job_id, tenant=job.request.tenant,
            index=record.index, kind=record.kind, size=record.size,
            admitted=record.admitted, rejected=record.rejected,
            deviating=record.deviating, rolled_back=record.rolled_back,
            failure_rate=record.failure_rate, halted=running.halted,
            final=done))
        if done:
            job.result = job.engine.finalize()
            job.engine = None
            if job.result.halted:
                # Policy halt: the halt-written checkpoint rewinds the
                # halting wave, so a resume re-admits it remediated.
                job.checkpoint = job.campaign.last_checkpoint
                job.state = JobState.HALTED
            else:
                job.state = JobState.COMPLETED

    def _park(self, job: _Job) -> None:
        """Operator halt: boundary checkpoint, engine teardown, HALTED."""
        job.halt_requested = False
        if job.engine is not None:
            job.checkpoint = job.engine.checkpoint()
            job.engine.finalize()  # join the pool, publish the store delta
            job.engine = None
        job.state = JobState.HALTED

    def _provision(self, job: _Job) -> None:
        """Build (or rebuild, on resume) the job's campaign and engine.

        The fleet and its analysis cache are generated once per job and
        survive halts; every (re-)provisioning builds a fresh ``Campaign``
        — ``run()``-state free by construction — and a fresh engine,
        resumed from the parked checkpoint when one exists.
        """
        from repro.scenarios.fleet_campaign import build_update_contract
        request = job.request
        if job.fleet is None:
            job.cache = AnalysisCache(batch_kernel=request.batch_kernel)
            spec = FleetSpec(size=request.fleet_size, seed=request.seed,
                             heterogeneity=request.heterogeneity,
                             num_variants=request.num_variants,
                             extra_components=request.extra_components)
            job.fleet = generate_fleet(spec, analysis_cache=job.cache)
            job.initial_states = [vehicle.capture_state()
                                  for vehicle in job.fleet]

        def update_factory(vehicle: FleetVehicle) -> ChangeRequest:
            variant = vehicle.variant.index
            contract = job.update_contracts.get(variant)
            if contract is None:
                contract = build_update_contract(
                    vehicle.wcet_factor,
                    utilization=request.update_utilization,
                    component=request.component)
                job.update_contracts[variant] = contract
            return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                 component=contract.component,
                                 contract=contract)

        threshold = job.max_failure_rate \
            if job.max_failure_rate is not None else request.max_failure_rate
        policy = WavePolicy(canary_size=request.canary_size,
                            wave_fractions=request.wave_fractions,
                            max_failure_rate=threshold,
                            rollback_on_halt=request.rollback_on_halt)
        job.campaign = Campaign(
            job.fleet, update_factory, policy=policy,
            analysis_cache=job.cache,
            failure_injection_rate=request.failure_injection_rate,
            feedback_seed=request.seed, workers=request.workers,
            batch_kernel=request.batch_kernel, cache_store=self.store_dir)
        job.engine = CampaignEngine(job.campaign,
                                    resume_from=job.checkpoint)

    # -- plumbing ----------------------------------------------------------

    def _get(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def _visible_result(self, job: _Job) -> Optional[CampaignResult]:
        if job.result is not None:
            return job.result
        if job.engine is not None:
            return job.engine.state.result
        if job.checkpoint is not None:
            return job.checkpoint.result
        return None
