"""E6 (Section V): thermal stress as a common-cause, cross-layer disturbance.

Regenerates the paper's argument that neither a platform-only reaction (DVFS)
nor a function-only reaction (relaxed control) suffices on its own: only the
cross-layer combination protects the hardware *and* keeps deadlines.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.scenarios.thermal import ThermalStrategy, compare_thermal_strategies, run_thermal_scenario


@pytest.mark.benchmark(group="e6-thermal")
def test_e6_strategy_comparison(benchmark):
    def run_all():
        return compare_thermal_strategies(peak_ambient_c=80.0, duration_s=600.0)

    results = benchmark(run_all)
    rows = []
    for name, result in results.items():
        rows.append({
            "strategy": name,
            "peak_temp_c": result.peak_temperature_c,
            "time_over_critical_s": result.time_over_critical_s,
            "deadline_miss_intervals": result.deadline_miss_intervals,
            "control_quality": result.control_quality,
            "final_speed_factor": result.final_speed_factor,
            "hardware_protected": result.hardware_protected,
            "deadlines_kept": result.deadlines_kept,
        })
    print_table("E6: thermal stress, reaction-strategy comparison", rows)

    cross = results[ThermalStrategy.CROSS_LAYER.value]
    assert cross.hardware_protected and cross.deadlines_kept
    assert not results[ThermalStrategy.NO_REACTION.value].hardware_protected
    assert not results[ThermalStrategy.PLATFORM_ONLY.value].deadlines_kept
    assert not results[ThermalStrategy.FUNCTION_ONLY.value].hardware_protected
    assert cross.control_quality > results[ThermalStrategy.PLATFORM_ONLY.value].control_quality


@pytest.mark.benchmark(group="e6-thermal")
def test_e6_ambient_temperature_sweep(benchmark):
    """Peak junction temperature of the cross-layer strategy vs ambient peak."""
    ambients = [55.0, 65.0, 75.0, 85.0]

    def sweep():
        return [run_thermal_scenario(ThermalStrategy.CROSS_LAYER, peak_ambient_c=a,
                                     duration_s=400.0) for a in ambients]

    results = benchmark(sweep)
    rows = [{"peak_ambient_c": a, "peak_temp_c": r.peak_temperature_c,
             "deadline_miss_intervals": r.deadline_miss_intervals,
             "final_speed_factor": r.final_speed_factor}
            for a, r in zip(ambients, results)]
    print_table("E6: cross-layer strategy vs ambient temperature", rows)
    peaks = [r.peak_temperature_c for r in results]
    assert peaks == sorted(peaks)
    assert all(r.deadlines_kept for r in results)
