"""Re-entrant wave-stepping engine behind :class:`~repro.fleet.campaign.Campaign`.

:class:`~repro.fleet.campaign.Campaign` describes *what* to roll out — the
fleet, the update factory, the staging/halting policy and the execution
knobs; this module owns *how*, one wave at a time.  :class:`CampaignEngine`
is an explicit state machine over :class:`CampaignState`: construct it, call
:meth:`~CampaignEngine.step` once per wave (each call executes exactly one
wave and returns its :class:`~repro.fleet.campaign.WaveRecord`), and call
:meth:`~CampaignEngine.finalize` when :attr:`~CampaignEngine.done` to close
the shard pool, persist the caches and obtain the aggregate
:class:`~repro.fleet.campaign.CampaignResult`.
:meth:`Campaign.run() <repro.fleet.campaign.Campaign.run>` is nothing but
that loop — stepped and run-to-completion execution are byte-identical by
construction, and the differential tests pin it.

The split buys two things the monolithic ``run()`` could not offer:

* **Interruptibility.**  Between any two :meth:`~CampaignEngine.step` calls
  the campaign sits at a *wave boundary*: every executed wave is fully
  committed (admission, feedback, halt decision, rollback), no wave is in
  flight.  :meth:`~CampaignEngine.checkpoint` serializes that boundary as a
  :class:`~repro.fleet.campaign.CampaignCheckpoint` — the same artifact a
  policy halt writes — so a campaign can be parked and resumed at *any*
  boundary, not only where the halt policy tripped.
* **Interleavability.**  A driver can hold many engines and advance them
  step by step in any order — the fleet admission service
  (:mod:`repro.service`) runs one wave of one tenant's campaign per
  scheduling slot, streaming each returned wave record to the submitter.

State taxonomy
--------------

:class:`CampaignState` carries exactly the between-wave execution state: the
wave cursor, the straggler/retry carry, the stall guard, the running
:class:`~repro.fleet.campaign.CampaignResult` and the EWMA cost model.  The
per-vehicle rollout state lives where it always did — on the
:class:`~repro.fleet.vehicle.FleetVehicle` objects (MCC model, ``updated``/
``deviating``/``rolled_back`` flags) — and is captured into checkpoints as
portable :class:`~repro.fleet.vehicle.VehicleState` snapshots.  The
simulated feedback RNG needs no stream state at all: every draw is derived
fresh from ``(feedback_seed, vehicle.index)``, so it is position- not
history-dependent.  Two engine-local caches are deliberately *not* part of
the state: the ``precedents`` verdict table and its ``pinned`` object list
key on object identity (:meth:`CampaignEngine._equivalence_key`), which
cannot cross a process boundary — a resumed engine rebuilds them, trading
replays for re-analyses but never changing a verdict.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.cache_store import SegmentStore
from repro.fleet.campaign import (Campaign, CampaignCheckpoint, CampaignError,
                                  CampaignResult, WaveRecord, plan_waves)
from repro.fleet.shard import (ShardItem, ShardTask, execute_shard,
                               initialize_worker, plan_chunks, plan_shards)
from repro.fleet.vehicle import FleetVehicle, VehicleState
from repro.mcc.configuration import ChangeRequest, IntegrationReport
from repro.mcc.controller import MccSnapshot
from repro.monitoring.deviation import DeviationDetector
from repro.monitoring.metrics import MetricRegistry
from repro.sim.random import SeededRNG, derive_seed

__all__ = ["CampaignState", "CampaignEngine"]


def _copy_result(source: CampaignResult) -> CampaignResult:
    """An independent copy of a result (fresh wave records/lists)."""
    return replace(source,
                   waves=[replace(record,
                                  vehicle_ids=list(record.vehicle_ids))
                          for record in source.waves],
                   shard_telemetry=[dict(row)
                                    for row in source.shard_telemetry])


@dataclass
class CampaignState:
    """Between-wave execution state of one campaign.

    Everything the wave loop mutates lives here, so an engine holding a
    ``CampaignState`` at a wave boundary is fully described by it (plus the
    fleet vehicles' own rollout state):

    ``wave_index``
        Cursor into the static wave plan; past the plan's end the campaign
        is running adversity ``straggler`` waves (or is done).
    ``start_wave``
        First wave this engine executes (> 0 on a resumed campaign; the
        checkpointed waves are seeded into ``result``, not re-run).
    ``carry``
        Vehicles whose update delivery failed, carried into the next wave
        as ``(vehicle, failed_attempts)`` pairs.  Structurally empty
        without an adversity model — which is exactly why wave-boundary
        checkpoints (which exclude adversity) need not serialize it.
    ``stalled_waves``
        Consecutive straggler waves without a delivery or an abandonment;
        the stall guard halts a pathological adversity model at 1000.
    ``result``
        The running aggregate; :meth:`CampaignEngine.finalize` stamps the
        cache counters onto it and returns it.
    ``cost_model``
        EWMA of measured integration seconds per shard-group label.  The
        *same dict object* as :attr:`Campaign._cost_model`, so the model
        persists on the campaign across engine lifetimes (and checkpoints
        carry a value snapshot of it); wall-time-only by construction.
    ``hits_before`` / ``misses_before``
        Shared-cache counter baselines taken at engine construction, so
        ``result`` reports this run's cache traffic only.
    """

    wave_index: int = 0
    start_wave: int = 0
    carry: List[Tuple[FleetVehicle, int]] = field(default_factory=list)
    stalled_waves: int = 0
    result: CampaignResult = field(
        default_factory=lambda: CampaignResult(fleet_size=0, batched=False))
    cost_model: Dict[Hashable, float] = field(default_factory=dict)
    hits_before: int = 0
    misses_before: int = 0


class CampaignEngine:
    """Executes one campaign wave-by-wave; the stepper behind ``run()``.

    Construction performs the campaign prologue exactly as the monolithic
    ``run()`` did — begin trace, checkpoint restore, cache warm-start,
    counter baselines, shard-pool fork — so a constructed engine is
    positioned at the first wave boundary.  Then:

    * :meth:`step` executes exactly one wave (staging, adversity delivery,
      dedupe, pooled or in-process admission, feedback, halt decision,
      rollback) and returns its :class:`WaveRecord`;
    * :attr:`done` reports whether a next wave exists (the plan is
      exhausted with no carry, or the campaign halted);
    * :meth:`finalize` runs the epilogue (pool join, snapshot/store
      persistence, cache counters, end trace) and returns the result;
    * :meth:`checkpoint` serializes the current wave boundary;
    * :meth:`close` tears the shard pool down without finalizing — the
      error/abandon path.

    One engine executes one campaign run; it is not reusable after
    :meth:`finalize`.  The engine holds live references into its
    :class:`Campaign` (vehicles, caches, cost model), so at most one engine
    should drive a campaign at a time — :meth:`Campaign.run` enforces this
    with its one-shot guard.
    """

    def __init__(self, campaign: Campaign,
                 resume_from: Optional[CampaignCheckpoint] = None) -> None:
        self.campaign = campaign
        result = CampaignResult(fleet_size=len(campaign.vehicles),
                                batched=campaign.batch_admission)
        self.plan = plan_waves(campaign.vehicles, campaign.policy)
        start_wave = 0
        if campaign.tracer is not None:
            campaign.tracer.emit(
                "campaign.begin", fleet_size=len(campaign.vehicles),
                waves_planned=len(self.plan), workers=campaign.workers,
                batched=campaign.batch_admission,
                planner=campaign.shard_planner, steal=campaign.steal,
                adversity=type(campaign.adversity).__name__
                if campaign.adversity is not None else None,
                resumed=resume_from is not None)
        if resume_from is not None:
            if campaign.adversity is not None:
                raise CampaignError(
                    "resume_from cannot be combined with an adversity "
                    "model: delivery-perturbed staging (carried and "
                    "straggler waves) cannot be validated against the "
                    "static wave plan a checkpoint records")
            start_wave = self._restore_checkpoint(resume_from, self.plan,
                                                  result)
        if campaign.analysis_cache is not None and campaign.cache_path is not None:
            # Warm-start this run from the previous run's snapshot.
            loaded = campaign.analysis_cache.load_snapshot(campaign.cache_path,
                                                           missing_ok=True)
            if campaign.tracer is not None:
                campaign.tracer.emit("cache.snapshot_load", entries=loaded)
            if campaign.workers > 1:
                # Refresh the snapshot so spawn-method workers (which cannot
                # inherit the parent cache at fork) warm-start from the
                # provisioning analyses; fork-method workers ignore the file.
                campaign.analysis_cache.save_snapshot(campaign.cache_path)
        if campaign.analysis_cache is not None and campaign.cache_store is not None:
            # Warm-start from the shared store, then make this run's
            # pre-pool entries (fleet provisioning analyses) durable so
            # even spawn-started workers begin warm.
            if campaign._parent_store is None:
                campaign._parent_store = SegmentStore(campaign.cache_store)
            self._absorb_store()
            self._publish_store()
        #: request-equivalence key -> (report, mapping, priorities) of the
        #: vehicle that ran the full integration; kept across waves so later
        #: waves of unchanged same-variant vehicles replay wave 1's verdicts.
        self.precedents: Dict[Tuple, Tuple[IntegrationReport, Dict[str, str],
                                           Dict[str, int]]] = {}
        #: Objects whose id() is baked into a stored precedent key.  Holding
        #: them prevents garbage collection from recycling an id into a new
        #: contract mid-campaign, which could falsely match a stale key.
        self.pinned: List[object] = []
        self.pool = None
        self._finalized = False
        if campaign.workers > 1 and not multiprocessing.current_process().daemon:
            # Workers inherit the parent's warm cache copy-on-write at fork
            # (or load the snapshot once, under spawn) and keep it for the
            # whole campaign — see initialize_worker.  Inside a *daemonic*
            # worker (e.g. an experiment runner's pool) children are not
            # allowed; shard execution then stays in-process, which changes
            # wall time only — verdicts are worker-layout-independent.
            import repro.fleet.shard as shard_module
            context = multiprocessing.get_context(campaign.start_method)
            worker_max_entries = campaign.analysis_cache.max_entries \
                if campaign.analysis_cache is not None else 16384
            worker_batch_kernel = campaign.analysis_cache.batch_kernel \
                if campaign.analysis_cache is not None else False
            shard_module._FORK_SEED = campaign.analysis_cache
            try:
                self.pool = context.Pool(
                    processes=campaign.workers, initializer=initialize_worker,
                    initargs=(campaign.cache_path, worker_max_entries,
                              worker_batch_kernel, campaign.cache_store))
            finally:
                shard_module._FORK_SEED = None
        # Counter baseline: the shared cache typically served fleet
        # provisioning too; the result reports this run's traffic only (a
        # resumed run reports the resumed waves', not the halted run's).
        self.state = CampaignState(
            wave_index=start_wave, start_wave=start_wave, carry=[],
            stalled_waves=0, result=result, cost_model=campaign._cost_model,
            hits_before=campaign.analysis_cache.hits
            if campaign.analysis_cache else 0,
            misses_before=campaign.analysis_cache.misses
            if campaign.analysis_cache else 0)

    # -- stepping ----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether a next wave exists: halted, or plan and carry exhausted."""
        state = self.state
        return state.result.halted or (state.wave_index >= len(self.plan)
                                       and not state.carry)

    def step(self) -> WaveRecord:
        """Execute exactly one wave and return its record.

        The wave runs to commit — staging (planned members plus delivery
        carry), adversity delivery, request construction, equivalence
        dedupe, pooled or in-process admission, per-vehicle adoption,
        monitor feedback, the halt decision and any rollback — so after
        ``step()`` returns the campaign sits at the next wave boundary.  On
        a halt the record is still returned (it is part of the result) and
        :attr:`done` turns true.  Stepping a finished engine raises
        :class:`CampaignError`.
        """
        if self._finalized:
            raise CampaignError("campaign engine already finalized")
        if self.done:
            raise CampaignError("campaign has no next wave to step")
        campaign = self.campaign
        state = self.state
        result = state.result
        wave_index = state.wave_index
        if wave_index < len(self.plan):
            kind, planned = self.plan[wave_index]
        else:
            kind, planned = "straggler", []
        staged = [vehicle for vehicle, _ in state.carry] + list(planned)
        attempts = {vehicle.vehicle_id: tries
                    for vehicle, tries in state.carry}
        record = WaveRecord(index=wave_index, kind=kind,
                            vehicle_ids=[v.vehicle_id for v in staged])
        record.retried = len(state.carry)
        state.carry = []
        if campaign.tracer is not None:
            campaign.tracer.emit("wave.begin", wave=wave_index, kind=kind,
                                 staged=len(staged), retried=record.retried)
        wave: List[FleetVehicle] = staged
        if campaign.adversity is not None:
            if campaign.tracer is not None:
                campaign.tracer.emit("adversity.begin_wave",
                                     wave=wave_index, staged=len(staged))
            campaign.adversity.begin_wave(wave_index, staged)
            wave = []
            for vehicle in staged:
                attempt = attempts.get(vehicle.vehicle_id, 0)
                if campaign.adversity.deliver(vehicle, wave_index, attempt):
                    wave.append(vehicle)
                    delivery = "delivered"
                elif campaign.adversity.abandon(vehicle, attempt + 1):
                    record.abandoned += 1
                    delivery = "abandoned"
                else:
                    state.carry.append((vehicle, attempt + 1))
                    delivery = "deferred"
                if campaign.tracer is not None:
                    campaign.tracer.emit("adversity.deliver",
                                         wave=wave_index,
                                         vehicle=vehicle.vehicle_id,
                                         attempt=attempt,
                                         outcome=delivery)
            record.undelivered = record.size - len(wave)
            # A custom model that neither delivers nor abandons would loop
            # forever on straggler waves; attempts grow strictly each
            # round, so any sane retry budget terminates — guard against
            # the insane ones.
            if kind == "straggler" and not wave and record.abandoned == 0:
                state.stalled_waves += 1
                if state.stalled_waves > 1000:
                    raise CampaignError(
                        "adversity model stalled the campaign: "
                        "1000 consecutive straggler waves without "
                        "a delivery or an abandonment")
            else:
                state.stalled_waves = 0
        requests = []
        for vehicle in wave:
            request = campaign.update_factory(vehicle)
            if campaign.adversity is not None:
                request = campaign.adversity.transform_request(
                    vehicle, request, wave_index)
            requests.append(request)
        keys: List[Optional[Tuple]] = [None] * len(requests)
        rep_positions: List[int] = []
        if campaign.batch_admission:
            # Keys are stable for the whole wave: a vehicle's model only
            # changes when its own request is admitted, and adoption
            # happens strictly after the dedupe pass.
            seen_new = set()
            for position, (vehicle, request) in enumerate(zip(wave,
                                                              requests)):
                key = self._equivalence_key(vehicle, request)
                keys[position] = key
                if key not in self.precedents and key not in seen_new:
                    seen_new.add(key)
                    rep_positions.append(position)
            if self.pool is not None:
                self._admit_shards(wave, requests, keys, rep_positions,
                                   wave_index, result)
            else:
                self._prefetch_wave([(wave[p], requests[p])
                                     for p in rep_positions])
        admitted: List[Tuple[FleetVehicle, ChangeRequest, MccSnapshot]] = []
        pre_wave: Dict[str, MccSnapshot] = {}
        for vehicle, request, key in zip(wave, requests, keys):
            snapshot = vehicle.mcc.snapshot()
            pre_wave[vehicle.vehicle_id] = snapshot
            replayed = False
            if campaign.batch_admission:
                precedent = self.precedents.get(key)
                if precedent is None:
                    self.pinned.append(request.contract)
                    self.pinned.extend(vehicle.mcc.model.contracts())
                    report = vehicle.mcc.request_change(request)
                    self.precedents[key] = (report,
                                            dict(vehicle.mcc.model.mapping),
                                            dict(vehicle.mcc.model.priorities))
                else:
                    replayed = True
                    report = vehicle.mcc.replay_change(request, *precedent)
            else:
                report = vehicle.mcc.request_change(request)
            if campaign.tracer is not None:
                campaign.tracer.emit("vehicle.admit", wave=wave_index,
                                     vehicle=vehicle.vehicle_id,
                                     accepted=report.accepted,
                                     replayed=replayed)
            if report.accepted:
                vehicle.updated = True
                record.admitted += 1
                admitted.append((vehicle, request, snapshot))
            else:
                record.rejected += 1
        for vehicle, request, _ in admitted:
            self._feedback(vehicle, request, wave_index, record)
        # The halt decision judges the vehicles that actually ran the
        # update (delivered, not staged) and ignores failures the feedback
        # grader attributed to suspected-compromised senders; on an
        # unperturbed campaign both terms reduce to the classic
        # failures-over-size comparison.
        halt = campaign.policy.halts(record.effective_failures,
                                     record.delivered)
        if halt and campaign.policy.rollback_on_halt:
            self._rollback_wave([(vehicle, snapshot)
                                 for vehicle, _, snapshot in admitted],
                                record)
        if campaign.tracer is not None:
            campaign.tracer.emit("wave.end", wave=wave_index, halt=halt,
                                 **record.to_dict())
        result.waves.append(record)
        result.admitted += record.admitted
        result.rejected += record.rejected
        result.deviating += record.deviating
        result.refined += record.refined
        result.rolled_back += record.rolled_back
        result.undelivered += record.undelivered
        result.retried += record.retried
        result.abandoned += record.abandoned
        result.discounted += record.discounted
        if halt:
            result.halted = True
            result.halted_wave = wave_index
            if campaign.tracer is not None:
                campaign.tracer.emit(
                    "campaign.halt", wave=wave_index,
                    effective_failures=record.effective_failures,
                    delivered=record.delivered)
            if campaign.adversity is None:
                campaign.last_checkpoint = self._build_checkpoint(
                    wave_index, result, wave, pre_wave)
                if campaign.checkpoint_path is not None:
                    campaign.last_checkpoint.save(campaign.checkpoint_path)
                    if campaign.tracer is not None:
                        campaign.tracer.emit("checkpoint.save",
                                             wave=wave_index,
                                             path=campaign.checkpoint_path)
        else:
            state.wave_index += 1
        return record

    def finalize(self) -> CampaignResult:
        """Run the campaign epilogue and return the aggregate result.

        Joins the shard pool, persists the ``cache_path`` snapshot and the
        ``cache_store`` delta, stamps the cache counters onto the result
        and closes the trace.  One-shot: a second call raises.  Callable
        at any wave boundary — :meth:`Campaign.run` calls it when
        :attr:`done`, the admission service also calls it when abandoning
        a parked campaign.
        """
        if self._finalized:
            raise CampaignError("campaign engine already finalized")
        campaign = self.campaign
        result = self.state.result
        self.close()
        if campaign.analysis_cache is not None and campaign.cache_path is not None:
            # Persist everything this run derived (shard fan-ins included)
            # so re-runs — and a resume after a halt — warm-start from it.
            campaign.analysis_cache.save_snapshot(campaign.cache_path)
            if campaign.tracer is not None:
                campaign.tracer.emit("cache.snapshot_save",
                                     path=campaign.cache_path,
                                     entries=len(campaign.analysis_cache))
        if campaign.analysis_cache is not None and campaign._parent_store is not None:
            # Workers made their own derivations durable mid-wave; absorb
            # any last publications, then append what only the parent
            # derived (prefetch path, in-process fallback waves).
            self._absorb_store()
            self._publish_store()
        if campaign.analysis_cache is not None:
            result.cache_hits = campaign.analysis_cache.hits \
                - self.state.hits_before
            result.cache_misses = campaign.analysis_cache.misses \
                - self.state.misses_before
            result.engine_reuse_rate = campaign.analysis_cache.engine.reuse_rate
        if campaign.tracer is not None:
            campaign.tracer.emit("campaign.end", admitted=result.admitted,
                                 rejected=result.rejected,
                                 deviating=result.deviating,
                                 halted=result.halted,
                                 waves=len(result.waves))
            campaign.tracer.flush()
        self._finalized = True
        return result

    def close(self) -> None:
        """Tear the shard pool down (idempotent; no cache persistence).

        The error/abandon path: a raising :meth:`step` leaves caches and
        trace unflushed — exactly as an exception inside the monolithic
        ``run()`` loop did — but the worker pool must never leak.
        """
        if self.pool is not None:
            self.pool.close()
            self.pool.join()
            self.pool = None

    def checkpoint(self, path: Optional[str] = None) -> CampaignCheckpoint:
        """Serialize the current wave boundary as a resumable checkpoint.

        Unlike the halt-written checkpoint (which rewinds the halting
        wave's members so that wave re-runs on resume), a boundary
        checkpoint needs no rewind: every executed wave is committed, the
        next wave has not started, so the vehicles' live state *is* the
        checkpoint state and ``next_wave`` is simply the cursor.  Requires
        ``adversity=None`` (a perturbed staging cannot be validated against
        the static plan — same restriction resume itself has) and a
        non-halted campaign (a policy halt already built
        :attr:`Campaign.last_checkpoint`, which rewinds properly).
        """
        campaign = self.campaign
        if campaign.adversity is not None:
            raise CampaignError(
                "wave-boundary checkpoints require adversity=None: carried "
                "and straggler staging cannot be validated on resume")
        if self.state.result.halted:
            raise CampaignError(
                "campaign halted — resume from Campaign.last_checkpoint, "
                "which rewinds the halting wave's members")
        prefix = _copy_result(self.state.result)
        checkpoint = CampaignCheckpoint(
            next_wave=self.state.wave_index, result=prefix,
            vehicle_states=[vehicle.capture_state()
                            for vehicle in campaign.vehicles],
            cost_model=dict(self.state.cost_model))
        if path is not None:
            checkpoint.save(path)
            if campaign.tracer is not None:
                campaign.tracer.emit("checkpoint.save",
                                     wave=self.state.wave_index, path=path)
        return checkpoint

    # -- wave internals ----------------------------------------------------

    def _prefetch_wave(self,
                       representatives: Sequence[Tuple[FleetVehicle,
                                                       ChangeRequest]]) -> None:
        """Warm the shared cache with the representatives' candidate analyses.

        Only the vehicles that will actually run a full integration are
        previewed (one per equivalence group); the batch goes through
        ``analyse_many`` so representatives of *different* variants
        warm-start off each other in the incremental engine.  The prefetch is
        only a warm-up — a skipped preview costs cache misses, never a
        different verdict.
        """
        cache = self.campaign.analysis_cache
        assert cache is not None
        tasksets = []
        for vehicle, request in representatives:
            preview = vehicle.mcc.process.preview_tasksets(vehicle.mcc.model,
                                                           request)
            if preview is None:
                continue  # rejected before the acceptance phase; nothing to warm
            tasksets.extend(taskset for _, taskset in sorted(preview.items()))
        if tasksets:
            cache.analyse_many(tasksets)

    @staticmethod
    def _equivalence_key(vehicle: FleetVehicle, request: ChangeRequest) -> Tuple:
        """Identity of one admission problem, exact within this process.

        Two vehicles with the same platform shape (same variant), the same
        adopted contract *objects*, the same mapping/priority state and the
        same request contract object pose the identical integration problem.
        Diverged vehicles (refined WCETs build fresh contract objects,
        rollbacks restore the previous model) fall out of the group
        automatically because their object identities differ.

        Identity-based keys are only sound while the referenced objects stay
        alive — a recycled ``id`` could alias a stale key — so the engine
        pins every object that enters a stored precedent key for its
        lifetime (see :attr:`pinned`).  For the same reason keys never cross
        a process boundary: shard workers receive wave positions, not keys.
        """
        model = vehicle.mcc.model
        return (vehicle.variant.index,
                tuple(sorted((contract.component, id(contract))
                             for contract in model.contracts())),
                tuple(sorted(model.mapping.items())),
                tuple(sorted(model.priorities.items())),
                request.kind, request.component, id(request.contract))

    @staticmethod
    def _group_label(vehicle: FleetVehicle, request: ChangeRequest) -> Tuple:
        """Coarse congruence label of one representative integration.

        Representatives of the same fleet variant receiving the same logical
        request share platform shape, contract structure and therefore
        congruence signature — their analyses dedupe against each other, so
        the chunk planner co-locates them in one shard and the cost model
        aggregates their measured integration times under one key.  Unlike
        :meth:`_equivalence_key` this label is value-based (no object
        identities), so it is stable across waves, runs and checkpoints.
        """
        return (vehicle.variant.index, request.kind, request.component)

    def _estimate_costs(self, labels: Sequence[Tuple]) -> List[float]:
        """Per-representative cost estimates from the prior-wave EWMA model.

        Labels never measured yet (wave 1, or a variant first reaching a
        later wave) are priced at the mean of the known costs — neutral
        weight — or 1.0 on a completely cold model (uniform partition).
        """
        known = self.state.cost_model
        fallback = (sum(known.values()) / len(known)) if known else 1.0
        return [known.get(label, fallback) for label in labels]

    def _record_cost(self, label: Tuple, elapsed_s: float) -> None:
        """Fold one measured integration time into the EWMA cost model."""
        previous = self.state.cost_model.get(label)
        self.state.cost_model[label] = elapsed_s if previous is None \
            else 0.5 * previous + 0.5 * elapsed_s

    def _admit_shards(self, wave: Sequence[FleetVehicle],
                      requests: Sequence[ChangeRequest],
                      keys: Sequence[Tuple], rep_positions: Sequence[int],
                      wave_index: int, result: CampaignResult) -> None:
        """Run the wave's new representative integrations on the pool.

        The representatives were deduped pre-fork (one wave position per new
        equivalence key); their verdicts land in :attr:`precedents`
        post-join so the parent's adoption loop replays every group member —
        including the representative itself — without re-analysing anything.

        Layout and dispatch follow the campaign's ``shard_planner`` and
        ``steal`` knobs: cost-model chunks pulled completion-driven off the
        pool's shared queue by default, static round-robin shards behind a
        ``Pool.map`` barrier otherwise.  Fan-in order is nondeterministic
        under stealing, but each verdict updates exactly one equivalence
        key, so ``precedents`` — and every wave verdict derived from it —
        is independent of arrival order; only the telemetry rows and the
        cost model see the completion order.
        """
        campaign = self.campaign
        labels = [self._group_label(wave[position], requests[position])
                  for position in rep_positions]
        if campaign.shard_planner == "cost":
            shards = plan_chunks(len(rep_positions), campaign.workers,
                                 costs=self._estimate_costs(labels),
                                 groups=labels)
        else:
            shards = plan_shards(len(rep_positions), campaign.workers)
        tasks = [ShardTask(shard_index=shard_index,
                           items=[ShardItem(position=item,
                                            vehicle=wave[rep_positions[item]],
                                            request=requests[rep_positions[item]])
                                  for item in shard],
                           cache_path=campaign.cache_path,
                           store_path=campaign.cache_store,
                           trace=campaign.tracer is not None)
                 for shard_index, shard in enumerate(shards)]
        if campaign.tracer is not None:
            campaign.tracer.emit("shard.plan", wave=wave_index,
                                 planner=campaign.shard_planner,
                                 steal=campaign.steal, shards=len(tasks),
                                 representatives=len(rep_positions))
        if campaign.steal:
            # Completion-driven dispatch: the pool's shared task queue is
            # the steal target — an idle worker takes the next chunk
            # immediately, and results fan in as they finish.
            completed = self.pool.imap_unordered(execute_shard, tasks,
                                                 chunksize=1)
        else:
            completed = self.pool.map(execute_shard, tasks)
        for shard_result in completed:
            if campaign.analysis_cache is not None:
                campaign.analysis_cache.merge_entries(shard_result.cache_entries)
            for verdict in shard_result.verdicts:
                position = rep_positions[verdict.position]
                vehicle, request = wave[position], requests[position]
                self.pinned.append(request.contract)
                self.pinned.extend(vehicle.mcc.model.contracts())
                self.precedents[keys[position]] = (verdict.report,
                                                   verdict.mapping,
                                                   verdict.priorities)
                self._record_cost(labels[verdict.position], verdict.elapsed_s)
            # Field set pinned by SHARD_TELEMETRY_SCHEMA (see
            # repro.fleet.shard) — extend both together.
            telemetry_row = {
                "wave": wave_index,
                "shard": shard_result.shard_index,
                "items": len(shard_result.verdicts),
                "worker_pid": shard_result.worker_pid,
                "elapsed_s": shard_result.elapsed_s,
                "cache_hits": shard_result.cache_hits,
                "cache_misses": shard_result.cache_misses,
                "published_entries": shard_result.published_entries,
                "absorbed_entries": shard_result.absorbed_entries,
            }
            result.shard_telemetry.append(telemetry_row)
            if campaign.tracer is not None:
                campaign.tracer.ingest(shard_result.events, wave=wave_index)
                campaign.tracer.emit("shard.execute",
                                     **{key: value for key, value
                                        in telemetry_row.items()})

    def _feedback(self, vehicle: FleetVehicle, request: ChangeRequest,
                  wave_index: int, record: WaveRecord) -> None:
        """Simulate one updated vehicle's monitor feedback and grade it.

        With an adversity model the honest observation passes through
        :meth:`~repro.fleet.adversity.AdversityModel.observe` (compromised
        vehicles forge it), the detector may grade against two-sided bands,
        and a raised deviation is additionally graded by the model — a
        report attributed to a suspected-compromised sender is recorded
        (``record.deviating``) but discounted from the halt decision
        (``record.discounted``).
        """
        campaign = self.campaign
        contract = vehicle.mcc.model.contract(request.component)
        timing = contract.timing
        if timing is None:  # pragma: no cover - campaign updates carry timing
            return
        rng = SeededRNG(derive_seed(campaign.feedback_seed, vehicle.index))
        injected = rng.uniform() < campaign.failure_injection_rate
        nominal_range = (0.55, 0.95)
        two_sided = False
        if campaign.adversity is not None:
            two_sided = campaign.adversity.two_sided_feedback
            if campaign.adversity.nominal_factor_range is not None:
                nominal_range = campaign.adversity.nominal_factor_range
        factor = rng.uniform(1.25, 1.75) if injected \
            else rng.uniform(*nominal_range)
        observed = timing.wcet * factor
        if campaign.adversity is not None:
            observed = campaign.adversity.observe(vehicle, wave_index,
                                                  timing.wcet, observed)
        registry = MetricRegistry()
        detector: DeviationDetector = vehicle.mcc.configure_deviation_detector(
            registry, two_sided=two_sided)
        source = f"{request.component}.task"
        anomalies = detector.observe(float(wave_index), source,
                                     "execution_time", observed)
        if campaign.tracer is not None:
            campaign.tracer.emit("feedback.observe", wave=wave_index,
                                 vehicle=vehicle.vehicle_id, observed=observed,
                                 deviating=bool(anomalies))
        if not anomalies:
            return
        vehicle.deviating = True
        record.deviating += 1
        if campaign.adversity is not None and campaign.adversity.grade_feedback(
                vehicle, wave_index, len(anomalies)):
            record.discounted += 1
            if campaign.tracer is not None:
                campaign.tracer.emit("feedback.discount", wave=wave_index,
                                     vehicle=vehicle.vehicle_id)
            return  # a discounted (suspect) report must not refine the model
        if campaign.policy.refine_on_deviation:
            refinements = vehicle.mcc.incorporate_observed_wcets(
                {source: observed})
            record.refined += len(refinements)

    def _rollback_wave(self, admitted: List[Tuple[FleetVehicle, MccSnapshot]],
                       record: WaveRecord) -> None:
        for vehicle, snapshot in admitted:
            vehicle.mcc.rollback(snapshot)
            vehicle.updated = False
            vehicle.rolled_back = True
            record.rolled_back += 1
            if self.campaign.tracer is not None:
                self.campaign.tracer.emit("vehicle.rollback",
                                          wave=record.index,
                                          vehicle=vehicle.vehicle_id)

    # -- checkpoint/resume -------------------------------------------------

    def _build_checkpoint(self, halted_wave: int, result: CampaignResult,
                          wave: Sequence[FleetVehicle],
                          pre_wave: Dict[str, MccSnapshot]
                          ) -> CampaignCheckpoint:
        """Freeze the campaign at the start of its halting wave.

        The checkpointed result excludes the halting wave's record (the
        wave re-runs on resume); halting-wave members are stored at their
        pre-wave snapshot with clean flags even when ``rollback_on_halt`` is
        off, so a resume always re-admits the remediated wave from scratch.
        """
        prefix = _copy_result(result)
        prefix.waves = prefix.waves[:-1]
        prefix.halted = False
        prefix.halted_wave = None
        # Telemetry rows of the *executed* waves stay with the checkpoint (a
        # resumed run merges them with its own); only the halting wave's
        # rows are dropped — that wave re-runs on resume and reports afresh.
        prefix.shard_telemetry = [row for row in prefix.shard_telemetry
                                  if row["wave"] < halted_wave]
        for attribute in ("admitted", "rejected", "deviating", "refined",
                          "rolled_back", "undelivered", "retried",
                          "abandoned", "discounted"):
            setattr(prefix, attribute,
                    sum(getattr(record, attribute) for record in prefix.waves))
        halting = {vehicle.vehicle_id for vehicle in wave}
        states = []
        for vehicle in self.campaign.vehicles:
            if vehicle.vehicle_id in halting:
                states.append(VehicleState(vehicle_id=vehicle.vehicle_id,
                                           snapshot=pre_wave[vehicle.vehicle_id],
                                           updated=False, deviating=False,
                                           rolled_back=False))
            else:
                states.append(vehicle.capture_state())
        return CampaignCheckpoint(next_wave=halted_wave, result=prefix,
                                  vehicle_states=states,
                                  cost_model=dict(self.state.cost_model))

    def _restore_checkpoint(self, checkpoint: CampaignCheckpoint,
                            plan: Sequence[Tuple[str, List[FleetVehicle]]],
                            result: CampaignResult) -> int:
        """Rewind the fleet and seed ``result`` from ``checkpoint``.

        Validates that the resumed campaign stages the same fleet the same
        way (the executed waves' vehicle ids must match the plan — policy
        remediation may change thresholds, not the staging of already
        executed waves).  Returns the wave index to continue from.
        """
        campaign = self.campaign
        checkpointed = {state.vehicle_id for state in checkpoint.vehicle_states}
        current = {vehicle.vehicle_id for vehicle in campaign.vehicles}
        if checkpointed != current:
            raise CampaignError(
                f"checkpoint covers a {len(checkpointed)}-vehicle fleet, the "
                f"resumed campaign stages {len(current)} vehicles; resume "
                "needs the exact fleet the campaign halted on")
        if checkpoint.next_wave > len(plan):
            raise CampaignError(
                f"checkpoint expects wave {checkpoint.next_wave} but the "
                f"resumed campaign plans only {len(plan)} waves")
        for index, record in enumerate(checkpoint.result.waves):
            planned = [vehicle.vehicle_id for vehicle in plan[index][1]]
            if planned != list(record.vehicle_ids):
                raise CampaignError(
                    f"resumed staging diverges at wave {index}: checkpoint "
                    f"executed {record.vehicle_ids}, plan stages {planned}")
        states = {state.vehicle_id: state for state in checkpoint.vehicle_states}
        for vehicle in campaign.vehicles:
            vehicle.restore_state(states[vehicle.vehicle_id])
        seeded = _copy_result(checkpoint.result)
        result.waves = seeded.waves
        # Executed waves' shard telemetry is carried over so a resumed
        # campaign's telemetry covers the same waves an uninterrupted run's
        # would; the resumed waves append their own rows.  Cache counters
        # are deliberately not carried over: they describe one process's
        # cache traffic and the resumed run reports its own.
        result.shard_telemetry = seeded.shard_telemetry
        for attribute in ("admitted", "rejected", "deviating", "refined",
                          "rolled_back", "undelivered", "retried",
                          "abandoned", "discounted"):
            setattr(result, attribute, getattr(seeded, attribute))
        # The EWMA cost model is wall-time-only state; warm-starting it
        # from the checkpoint lets a resumed campaign plan its first chunks
        # on measured costs instead of uniform guesses.  ``getattr`` keeps
        # checkpoints pickled before the field existed loadable.
        campaign._cost_model.update(getattr(checkpoint, "cost_model", None)
                                    or {})
        return checkpoint.next_wave

    # -- segment-store plumbing --------------------------------------------

    def _absorb_store(self) -> int:
        """Merge everything newly durable in ``cache_store`` into the
        parent cache; returns the number of new entries absorbed."""
        campaign = self.campaign
        assert campaign._parent_store is not None \
            and campaign.analysis_cache is not None
        entries = campaign._parent_store.read_new()
        campaign._store_keys.update(key for key, _ in entries)
        absorbed = campaign.analysis_cache.merge_entries(entries)
        if campaign.tracer is not None:
            campaign.tracer.emit("store.absorb", entries=absorbed)
        return absorbed

    def _publish_store(self) -> int:
        """Append the parent cache's not-yet-durable entries to the store."""
        campaign = self.campaign
        assert campaign._parent_store is not None \
            and campaign.analysis_cache is not None
        fresh = campaign.analysis_cache.export_entries(
            exclude=campaign._store_keys)
        if fresh:
            campaign._parent_store.append(fresh)
            campaign._store_keys.update(key for key, _ in fresh)
        if campaign.tracer is not None:
            campaign.tracer.emit("store.publish", entries=len(fresh))
        return len(fresh)
