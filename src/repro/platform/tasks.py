"""Task model for the execution domain.

Tasks carry the real-time parameters that the contracting language declares
(period, WCET, deadline, jitter) plus a scheduling priority.  ``Job`` objects
are single activations of a task produced by the scheduling simulator; the
``TaskSet`` container offers the utilization/priority helpers used both by
the scheduler and the model-domain WCRT analysis.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.contracts.model import RealTimeRequirement


class TaskState(enum.Enum):
    """Lifecycle of a job inside the scheduling simulator."""

    IDLE = "idle"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"


class TaskError(ValueError):
    """Raised for invalid task parameters or task-set operations."""


@dataclass
class Task:
    """A periodic (or sporadic) real-time task.

    Attributes
    ----------
    name:
        Unique task identifier.
    period:
        Activation period (sporadic: minimum inter-arrival time) in seconds.
    wcet:
        Worst-case execution time in seconds at the nominal operating point.
    deadline:
        Relative deadline; defaults to the period.
    priority:
        Fixed scheduling priority; *lower numbers mean higher priority*.
    jitter:
        Release jitter bound in seconds.
    component:
        Name of the software component this task belongs to (for mapping and
        monitoring purposes).
    criticality:
        Free-form criticality tag (e.g. the ASIL of the owning component).
    """

    name: str
    period: float
    wcet: float
    deadline: Optional[float] = None
    priority: int = 0
    jitter: float = 0.0
    component: Optional[str] = None
    criticality: str = "QM"
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise TaskError(f"task {self.name}: period must be positive")
        if self.wcet <= 0:
            raise TaskError(f"task {self.name}: wcet must be positive")
        if self.deadline is None:
            self.deadline = self.period
        if self.deadline <= 0:
            raise TaskError(f"task {self.name}: deadline must be positive")
        if self.jitter < 0 or self.offset < 0:
            raise TaskError(f"task {self.name}: jitter and offset must be non-negative")

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    @classmethod
    def from_requirement(cls, name: str, requirement: RealTimeRequirement,
                         priority: int = 0, component: Optional[str] = None,
                         criticality: str = "QM") -> "Task":
        """Build a task from a contract's real-time requirement."""
        return cls(name=name, period=requirement.period, wcet=requirement.wcet,
                   deadline=requirement.deadline, jitter=requirement.jitter,
                   priority=priority, component=component, criticality=criticality)

    def scaled(self, wcet_factor: float) -> "Task":
        """Return a copy with the WCET scaled (used for DVFS / degraded
        operating points where execution slows down)."""
        if wcet_factor <= 0:
            raise TaskError("wcet_factor must be positive")
        return Task(name=self.name, period=self.period, wcet=self.wcet * wcet_factor,
                    deadline=self.deadline, priority=self.priority, jitter=self.jitter,
                    component=self.component, criticality=self.criticality, offset=self.offset)


@dataclass
class Job:
    """One activation of a task inside the scheduling simulator."""

    task: Task
    release_time: float
    absolute_deadline: float
    remaining: float
    state: TaskState = TaskState.READY
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    preemptions: int = 0

    @property
    def response_time(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time

    @property
    def deadline_missed(self) -> bool:
        if self.completion_time is None:
            return False
        return self.completion_time > self.absolute_deadline + 1e-12


class TaskSet:
    """An ordered collection of tasks bound to one processing resource."""

    def __init__(self, tasks: Optional[List[Task]] = None) -> None:
        self._tasks: Dict[str, Task] = {}
        for task in tasks or []:
            self.add(task)

    def add(self, task: Task) -> None:
        if task.name in self._tasks:
            raise TaskError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task

    def remove(self, name: str) -> Task:
        try:
            return self._tasks.pop(name)
        except KeyError as exc:
            raise TaskError(f"unknown task {name!r}") from exc

    def get(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError as exc:
            raise TaskError(f"unknown task {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def tasks(self) -> List[Task]:
        return list(self._tasks.values())

    @property
    def utilization(self) -> float:
        return sum(task.utilization for task in self._tasks.values())

    def by_priority(self) -> List[Task]:
        """Tasks sorted by priority (highest priority, i.e. lowest number, first)."""
        return sorted(self._tasks.values(), key=lambda t: (t.priority, t.name))

    def higher_priority_than(self, task: Task) -> List[Task]:
        """Strictly higher-priority tasks (tie on priority: not included)."""
        return [t for t in self._tasks.values()
                if t.priority < task.priority and t.name != task.name]

    def assign_rate_monotonic_priorities(self) -> None:
        """Assign priorities in rate-monotonic order (shorter period => higher
        priority); deterministic tie-break by name."""
        ordered = sorted(self._tasks.values(), key=lambda t: (t.period, t.name))
        for index, task in enumerate(ordered):
            task.priority = index

    def assign_deadline_monotonic_priorities(self) -> None:
        """Assign priorities in deadline-monotonic order."""
        ordered = sorted(self._tasks.values(), key=lambda t: (t.deadline, t.name))
        for index, task in enumerate(ordered):
            task.priority = index

    def hyperperiod(self, resolution: float = 1e-6, cap: float = 1e9) -> float:
        """Least common multiple of the task periods on a discrete grid.

        Periods are snapped to ``resolution`` before computing the LCM; the
        result is capped to avoid pathological explosion with co-prime
        periods.
        """
        if not self._tasks:
            return 0.0
        ticks = 1
        for task in self._tasks.values():
            period_ticks = max(1, round(task.period / resolution))
            ticks = ticks * period_ticks // math.gcd(ticks, period_ticks)
            if ticks * resolution > cap:
                return cap
        return ticks * resolution
