"""Trace recording utilities.

Monitors, schedulers and the CAN bus emit :class:`TraceRecord` entries into a
shared :class:`TraceRecorder`.  Benchmarks and the self-awareness loop query
these traces to compute metrics (response times, latencies, detection delays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Simulation time at which the event was recorded.
    category:
        Free-form grouping key, e.g. ``"task.complete"`` or ``"can.rx"``.
    source:
        Name of the emitting entity.
    data:
        Arbitrary payload describing the event.
    """

    time: float
    category: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """An ordered collection of trace records with simple query helpers."""

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self._records: List[TraceRecord] = list(records or [])

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def filter(self, category: Optional[str] = None, source: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None) -> "Trace":
        """Return a new trace containing only the matching records."""
        def match(record: TraceRecord) -> bool:
            if category is not None and record.category != category:
                return False
            if source is not None and record.source != source:
                return False
            if predicate is not None and not predicate(record):
                return False
            return True

        return Trace(record for record in self._records if match(record))

    def values(self, key: str) -> List[Any]:
        """Extract ``data[key]`` from every record that carries it."""
        return [record.data[key] for record in self._records if key in record.data]

    def times(self) -> List[float]:
        return [record.time for record in self._records]

    def first(self) -> Optional[TraceRecord]:
        return self._records[0] if self._records else None

    def last(self) -> Optional[TraceRecord]:
        return self._records[-1] if self._records else None

    def between(self, start: float, end: float) -> "Trace":
        """Records with ``start <= time <= end``."""
        return Trace(r for r in self._records if start <= r.time <= end)

    def categories(self) -> List[str]:
        seen: List[str] = []
        for record in self._records:
            if record.category not in seen:
                seen.append(record.category)
        return seen


class TraceRecorder:
    """Collects trace records from many emitters.

    The recorder can be disabled to remove tracing overhead from tight
    benchmark loops; emitters call :meth:`record` unconditionally.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.trace = Trace()

    def record(self, time: float, category: str, source: str, **data: Any) -> None:
        if not self.enabled:
            return
        self.trace.append(TraceRecord(time=time, category=category, source=source, data=data))

    def filter(self, category: Optional[str] = None, source: Optional[str] = None) -> Trace:
        return self.trace.filter(category=category, source=source)

    def clear(self) -> None:
        self.trace = Trace()

    def __len__(self) -> int:
        return len(self.trace)
