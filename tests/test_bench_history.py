"""Tests for the benchmark perf-record history tool (`bench-history`)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench_history import (bench_history_rows,
                                             bench_trajectory,
                                             compare_bench_records,
                                             load_bench_records, record_mode)
from repro.experiments.cli import main


def _write_record(directory, name, payload, quick=False, **extra):
    document = {"name": name, "created_utc": "2026-08-08T12:00:00Z",
                "python": "3.x", "platform": "test", "quick_mode": quick,
                "payload": payload}
    document.update(extra)
    suffix = ".quick.json" if quick else ".json"
    path = directory / f"BENCH_{name}{suffix}"
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


@pytest.fixture
def records_dir(tmp_path):
    _write_record(tmp_path, "e12_batch_kernel",
                  {"lanes": 800, "tasks_per_lane": 16, "numpy": True,
                   "scalar_s": 0.30, "batch_s": 0.05, "speedup": 6.0})
    _write_record(tmp_path, "e9_incremental_speedup",
                  {"task_sets": 66, "pr1_baseline_s": 1.2, "incremental_s": 0.2,
                   "speedup_vs_pr1": 6.0, "reuse_rate": 0.8}, quick=True)
    _write_record(tmp_path, "e12_pure_path",
                  {"lanes": 80, "pure_python_s": 0.02, "groups_solved": 2})
    return tmp_path


class TestLoadBenchRecords:
    def test_loads_and_sorts_by_name(self, records_dir):
        records, skipped = load_bench_records(str(records_dir))
        assert [r["name"] for r in records] == [
            "e12_batch_kernel", "e12_pure_path", "e9_incremental_speedup"]
        assert skipped == []

    def test_corrupt_and_foreign_files_are_skipped_not_fatal(self, records_dir):
        (records_dir / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
        (records_dir / "BENCH_list.json").write_text("[1, 2]", encoding="utf-8")
        (records_dir / "BENCH_noenvelope.json").write_text(
            json.dumps({"speedup": 2.0}), encoding="utf-8")
        (records_dir / "unrelated.json").write_text("0", encoding="utf-8")
        records, skipped = load_bench_records(str(records_dir))
        assert len(records) == 3
        assert sorted(skipped) == ["BENCH_broken.json", "BENCH_list.json",
                                   "BENCH_noenvelope.json"]

    def test_empty_directory(self, tmp_path):
        assert load_bench_records(str(tmp_path)) == ([], [])


class TestBenchHistoryRows:
    def test_headline_speedup_is_promoted(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        rows = bench_history_rows(records)
        by_bench = {row["bench"]: row for row in rows}
        assert by_bench["e12_batch_kernel"]["speedup"] == "6.00x"
        assert by_bench["e9_incremental_speedup"]["speedup"] == "6.00x"
        assert by_bench["e12_pure_path"]["speedup"] == "-"

    def test_rows_carry_provenance_and_metrics(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        rows = bench_history_rows(records)
        by_bench = {row["bench"]: row for row in rows}
        assert by_bench["e9_incremental_speedup"]["quick"] is True
        assert by_bench["e12_batch_kernel"]["quick"] is False
        assert "lanes=800" in by_bench["e12_batch_kernel"]["metrics"]
        assert "batch_s=0.05" in by_bench["e12_batch_kernel"]["metrics"]
        # The headline key stays out of the catch-all metrics column.
        assert "speedup=" not in by_bench["e12_batch_kernel"]["metrics"]

    def test_booleans_are_not_mistaken_for_metrics(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        row = next(r for r in bench_history_rows(records)
                   if r["bench"] == "e12_batch_kernel")
        assert "numpy=" not in row["metrics"]


class TestCli:
    def test_bench_history_command(self, records_dir, capsys):
        assert main(["bench-history", "--dir", str(records_dir)]) == 0
        out = capsys.readouterr().out
        assert "e12_batch_kernel" in out
        assert "6.00x" in out

    def test_bench_history_warns_on_corrupt_records(self, records_dir, capsys):
        (records_dir / "BENCH_broken.json").write_text("{", encoding="utf-8")
        assert main(["bench-history", "--dir", str(records_dir)]) == 0
        captured = capsys.readouterr()
        assert "BENCH_broken.json" in captured.err
        assert "e12_pure_path" in captured.out

    def test_bench_history_missing_directory(self, tmp_path, capsys):
        assert main(["bench-history", "--dir", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_bench_history_empty_directory(self, tmp_path, capsys):
        assert main(["bench-history", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_*.json records" in capsys.readouterr().out


class TestRecordMode:
    def test_explicit_mode_field_wins(self):
        assert record_mode({"mode": "quick", "quick_mode": False}) == "quick"
        assert record_mode({"mode": "full", "quick_mode": True}) == "full"

    def test_legacy_records_classified_by_quick_flag(self):
        assert record_mode({"quick_mode": True}) == "quick"
        assert record_mode({"quick_mode": False}) == "full"
        assert record_mode({}) == "full"


class TestBenchTrajectory:
    @staticmethod
    def _record(name, speedup, mode="full", created="2026-08-08T12:00:00Z",
                metric="speedup"):
        return {"name": name, "mode": mode, "created_utc": created,
                "payload": {metric: speedup}}

    def test_mixed_modes_yield_separate_series(self):
        records = [
            self._record("e10", 2.0, mode="full"),
            self._record("e10", 0.5, mode="quick"),
            self._record("e12", 6.0, mode="full"),
        ]
        trajectory = bench_trajectory(records)
        assert trajectory["schema"] == 1
        keys = [(entry["bench"], entry["mode"])
                for entry in trajectory["series"]]
        assert keys == [("e10", "full"), ("e10", "quick"), ("e12", "full")]
        e10_full = trajectory["series"][0]
        assert e10_full["points"] == [{"created_utc": "2026-08-08T12:00:00Z",
                                       "metric": "speedup", "value": 2.0}]

    def test_points_ordered_by_created_utc(self):
        records = [
            self._record("e10", 3.0, created="2026-08-08T12:00:00Z"),
            self._record("e10", 2.0, created="2026-08-01T12:00:00Z"),
            self._record("e10", 2.5, created="2026-08-04T12:00:00Z"),
        ]
        series = bench_trajectory(records)["series"]
        assert len(series) == 1
        assert [point["value"] for point in series[0]["points"]] == [2.0, 2.5, 3.0]

    def test_headline_key_priority_and_unplotted(self):
        records = [
            self._record("e9", 6.0, metric="speedup_vs_pr1"),
            self._record("e13", 1.4, metric="admission_speedup"),
            {"name": "e12_pure", "mode": "full",
             "payload": {"pure_python_s": 0.02}},
        ]
        trajectory = bench_trajectory(records)
        metrics = {entry["bench"]: entry["points"][0]["metric"]
                   for entry in trajectory["series"]}
        assert metrics == {"e9": "speedup_vs_pr1", "e13": "admission_speedup"}
        assert trajectory["unplotted"] == ["e12_pure[full]"]

    def test_boolean_payload_values_are_not_headlines(self):
        trajectory = bench_trajectory([
            {"name": "e10", "mode": "full", "payload": {"speedup": True}}])
        assert trajectory["series"] == []
        assert trajectory["unplotted"] == ["e10[full]"]

    def test_throughput_keys_plot_as_their_own_series(self):
        # The E17 admission-service record carries admissions_per_s: an
        # absolute rate that must chart in the trajectory without being
        # mistaken for a speedup ratio.
        records = [
            self._record("e17_admission_service", 120.5,
                         metric="admissions_per_s"),
            self._record("e12", 6.0),
        ]
        trajectory = bench_trajectory(records)
        metrics = {entry["bench"]: entry["points"][0]["metric"]
                   for entry in trajectory["series"]}
        assert metrics == {"e17_admission_service": "admissions_per_s",
                           "e12": "speedup"}
        assert trajectory["unplotted"] == []

    def test_headline_keys_take_priority_over_throughput(self):
        trajectory = bench_trajectory([
            {"name": "e17", "mode": "full",
             "payload": {"speedup": 2.0, "admissions_per_s": 99.0}}])
        assert trajectory["series"][0]["points"][0]["metric"] == "speedup"

    def test_cli_json_flag_writes_trajectory(self, records_dir, tmp_path,
                                             capsys):
        out_path = tmp_path / "out" / "trajectory.json"
        out_path.parent.mkdir()
        assert main(["bench-history", "--dir", str(records_dir),
                     "--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text(encoding="utf-8"))
        assert document["schema"] == 1
        assert {(entry["bench"], entry["mode"])
                for entry in document["series"]} == {
                    ("e12_batch_kernel", "full"),
                    ("e9_incremental_speedup", "quick")}
        assert document["unplotted"] == ["e12_pure_path[full]"]
        assert "trajectory written to" in capsys.readouterr().out

    def test_cli_json_flag_on_empty_directory_writes_empty_document(
            self, tmp_path, capsys):
        out_path = tmp_path / "trajectory.json"
        assert main(["bench-history", "--dir", str(tmp_path),
                     "--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text(encoding="utf-8"))
        assert document == {"schema": 1, "series": [], "unplotted": []}


class TestCompareBenchRecords:
    @staticmethod
    def _record(name, speedup, mode="full"):
        return {"name": name, "mode": mode,
                "payload": {"speedup": speedup}}

    def test_no_regression_within_tolerance(self):
        current = [self._record("e10", 1.5)]
        baseline = [self._record("e10", 2.0)]
        # 25% drop, tolerance 30% — passes.
        assert compare_bench_records(current, baseline, tolerance=0.3) == []

    def test_regression_beyond_tolerance_is_reported(self):
        current = [self._record("e10", 1.2)]
        baseline = [self._record("e10", 2.0)]
        regressions = compare_bench_records(current, baseline, tolerance=0.3)
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression["bench"] == "e10"
        assert regression["metric"] == "speedup"
        assert regression["baseline"] == 2.0
        assert regression["current"] == 1.2
        assert regression["drop"] == pytest.approx(0.4)

    def test_improvements_never_regress(self):
        current = [self._record("e10", 5.0)]
        baseline = [self._record("e10", 2.0)]
        assert compare_bench_records(current, baseline) == []

    def test_modes_never_cross_compare(self):
        # A quick-mode smoke number far below the committed full-fidelity
        # record is NOT a regression — the grids are incomparable.
        current = [self._record("e10", 0.5, mode="quick")]
        baseline = [self._record("e10", 8.0, mode="full")]
        assert compare_bench_records(current, baseline) == []
        # But a quick baseline does gate a quick current.
        baseline_quick = [self._record("e10", 8.0, mode="quick")]
        assert len(compare_bench_records(current, baseline_quick)) == 1

    def test_unpaired_records_are_ignored(self):
        current = [self._record("brand_new", 1.0)]
        baseline = [self._record("retired", 9.0)]
        assert compare_bench_records(current, baseline) == []

    def test_non_numeric_and_missing_headlines_are_skipped(self):
        current = [{"name": "e10", "mode": "full",
                    "payload": {"speedup": "broken"}}]
        baseline = [self._record("e10", 2.0)]
        assert compare_bench_records(current, baseline) == []

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            compare_bench_records([], [], tolerance=1.0)
        with pytest.raises(ValueError):
            compare_bench_records([], [], tolerance=-0.1)

    def test_throughput_keys_never_gate(self):
        # Absolute admissions/sec is machine-dependent: a slower CI runner
        # must not fail the gate on it, however large the drop.
        current = [{"name": "e17_admission_service", "mode": "full",
                    "payload": {"admissions_per_s": 10.0}}]
        baseline = [{"name": "e17_admission_service", "mode": "full",
                     "payload": {"admissions_per_s": 500.0}}]
        assert compare_bench_records(current, baseline) == []


class TestCliRegressionGate:
    def test_gate_passes_and_reports(self, tmp_path, capsys):
        current, baseline = tmp_path / "current", tmp_path / "baseline"
        current.mkdir(), baseline.mkdir()
        _write_record(current, "e10", {"speedup": 2.0})
        _write_record(baseline, "e10", {"speedup": 2.1})
        assert main(["bench-history", "--dir", str(current),
                     "--baseline", str(baseline),
                     "--fail-on-regression"]) == 0
        assert "no headline regressions" in capsys.readouterr().out

    def test_gate_fails_loud_on_regression(self, tmp_path, capsys):
        current, baseline = tmp_path / "current", tmp_path / "baseline"
        current.mkdir(), baseline.mkdir()
        _write_record(current, "e10", {"speedup": 1.0})
        _write_record(baseline, "e10", {"speedup": 2.0})
        assert main(["bench-history", "--dir", str(current),
                     "--baseline", str(baseline),
                     "--fail-on-regression"]) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.err
        assert "e10" in captured.out

    def test_regression_without_fail_flag_reports_but_passes(self, tmp_path,
                                                             capsys):
        current, baseline = tmp_path / "current", tmp_path / "baseline"
        current.mkdir(), baseline.mkdir()
        _write_record(current, "e10", {"speedup": 1.0})
        _write_record(baseline, "e10", {"speedup": 2.0})
        assert main(["bench-history", "--dir", str(current),
                     "--baseline", str(baseline)]) == 0
        assert "headline regressions" in capsys.readouterr().out

    def test_missing_baseline_directory(self, tmp_path, capsys):
        _write_record(tmp_path, "e10", {"speedup": 1.0})
        assert main(["bench-history", "--dir", str(tmp_path),
                     "--baseline", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_quick_records_use_distinct_filenames(self, tmp_path):
        full = _write_record(tmp_path, "e10", {"speedup": 2.0})
        quick = _write_record(tmp_path, "e10", {"speedup": 0.5}, quick=True)
        assert full.name == "BENCH_e10.json"
        assert quick.name == "BENCH_e10.quick.json"
        records, skipped = load_bench_records(str(tmp_path))
        assert skipped == []
        assert len(records) == 2
