"""System-level compositional analysis: multi-resource fixpoint + chains.

One ECU's schedulability says nothing about a distributed function: a sensor
task on ECU1 queues a CAN frame whose arrival activates a control task on
ECU2, and every stage's response-time variation widens the activation jitter
of the next.  Compositional performance analysis (CPA) closes this loop by
iterating *output event model propagation* across resources until a global
fixpoint is reached:

1. analyse every resource in isolation under the current activation event
   models (processors via the busy-window CPU analysis, buses via the
   non-preemptive CAN analysis),
2. derive each link source's output event model — same period, jitter
   widened by ``wcrt - bcrt`` (best-case response: the WCET, respectively
   the frame transmission time) — and install it as the activation model of
   the link target,
3. repeat until no event model changes (convergence) or a divergence
   criterion trips (a busy window exceeds its bound, a propagated jitter
   explodes, or the iteration cap is hit).

The converged models make a *jitter-aware* end-to-end latency bound along a
cause-effect chain available: because each stage's analysed jitter already
contains the upstream response-time variation, the chain latency is the sum
of the best-case responses of all hops but the last plus the worst-case
response of the last hop — strictly tighter than the naive summation of
per-hop WCRTs (which remains available as the documented pessimistic
fallback :func:`repro.analysis.cpa.end_to_end_latency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.compositional.can_rta import CanResponseTimeAnalysis, FrameSpec
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis, ResponseTimeResult
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.tasks import TaskSet


class SystemConfigurationError(ValueError):
    """Raised for invalid system models (unknown resources, bad links)."""


@dataclass(frozen=True)
class EventLink:
    """One activation dependency: the output events of ``source`` (a task's
    completions or a frame's deliveries) activate ``target``."""

    source_resource: str
    source: str
    target_resource: str
    target: str


@dataclass(frozen=True)
class CauseEffectChain:
    """A named end-to-end chain of ``(resource, item)`` hops.

    Consecutive hops must be connected by an :class:`EventLink` in the
    analysed model — the jitter-aware latency bound is only sound along
    propagated activation dependencies.
    """

    name: str
    hops: Tuple[Tuple[str, str], ...]
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "hops", tuple((str(r), str(i)) for r, i in self.hops))
        if not self.hops:
            raise SystemConfigurationError(
                f"chain {self.name!r}: hop list must not be empty")
        if self.deadline is not None and self.deadline <= 0:
            raise SystemConfigurationError(
                f"chain {self.name!r}: deadline must be positive")


class _Processor:
    __slots__ = ("taskset", "speed_factor")

    def __init__(self, taskset: TaskSet, speed_factor: float) -> None:
        self.taskset = taskset
        self.speed_factor = speed_factor


class _Bus:
    __slots__ = ("frames", "bitrate_bps")

    def __init__(self, frames: Tuple[FrameSpec, ...], bitrate_bps: float) -> None:
        self.frames = frames
        self.bitrate_bps = bitrate_bps


class SystemModel:
    """Named processors and buses plus the event links between their items.

    (This is the *analysis-domain* system model — resources and activation
    dependencies; the MCC-domain :class:`repro.mcc.configuration.SystemModel`
    models contracts and mappings.)
    """

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._processors: Dict[str, _Processor] = {}
        self._buses: Dict[str, _Bus] = {}
        self._links: List[EventLink] = []
        self._incoming: Dict[Tuple[str, str], EventLink] = {}

    # -- construction ------------------------------------------------------

    def add_processor(self, name: str, taskset: TaskSet,
                      speed_factor: float = 1.0) -> None:
        """Register a processor analysed by the busy-window CPU analysis."""
        self._check_new_resource(name)
        if speed_factor <= 0:
            raise SystemConfigurationError(f"processor {name}: speed factor must be positive")
        self._processors[name] = _Processor(taskset, speed_factor)

    def add_bus(self, name: str, frames: Sequence[FrameSpec],
                bitrate_bps: float) -> None:
        """Register a CAN segment analysed by the non-preemptive CAN RTA."""
        self._check_new_resource(name)
        # Validates ids/uniqueness eagerly so errors surface at model build.
        CanResponseTimeAnalysis(list(frames), bitrate_bps)
        self._buses[name] = _Bus(tuple(frames), bitrate_bps)

    def connect(self, source_resource: str, source: str,
                target_resource: str, target: str) -> EventLink:
        """Link a source item's output events to a target item's activation."""
        for resource, item in ((source_resource, source), (target_resource, target)):
            if item not in self.items(resource):
                raise SystemConfigurationError(
                    f"resource {resource!r} has no item {item!r}")
        link = EventLink(source_resource, source, target_resource, target)
        key = (target_resource, target)
        if key in self._incoming:
            raise SystemConfigurationError(
                f"{target_resource}/{target} already has an activation source "
                f"({self._incoming[key].source_resource}/{self._incoming[key].source})")
        self._links.append(link)
        self._incoming[key] = link
        return link

    def _check_new_resource(self, name: str) -> None:
        if not name:
            raise SystemConfigurationError("resource needs a name")
        if name in self._processors or name in self._buses:
            raise SystemConfigurationError(f"resource {name!r} already registered")

    # -- introspection -----------------------------------------------------

    @property
    def processors(self) -> Dict[str, _Processor]:
        return dict(self._processors)

    @property
    def buses(self) -> Dict[str, _Bus]:
        return dict(self._buses)

    @property
    def links(self) -> List[EventLink]:
        return list(self._links)

    def resource_names(self) -> List[str]:
        return sorted(self._processors) + sorted(self._buses)

    def items(self, resource: str) -> List[str]:
        """Names of the analysable items of one resource."""
        if resource in self._processors:
            return [task.name for task in self._processors[resource].taskset]
        if resource in self._buses:
            return [frame.name for frame in self._buses[resource].frames]
        raise SystemConfigurationError(f"unknown resource {resource!r}")

    def has_link(self, source_resource: str, source: str,
                 target_resource: str, target: str) -> bool:
        link = self._incoming.get((target_resource, target))
        return (link is not None and link.source_resource == source_resource
                and link.source == source)

    def base_event_model(self, resource: str, item: str) -> EventModel:
        """The activation model of an item before any propagation."""
        if resource in self._processors:
            taskset = self._processors[resource].taskset
            if item not in taskset:
                raise SystemConfigurationError(
                    f"resource {resource!r} has no item {item!r}")
            task = taskset.get(item)
            return EventModel(period=task.period, jitter=task.jitter)
        for frame in self._buses[resource].frames:
            if frame.name == item:
                return EventModel(period=frame.period, jitter=frame.jitter)
        raise SystemConfigurationError(f"resource {resource!r} has no item {item!r}")

    def best_case_response(self, resource: str, item: str) -> float:
        """Best-case response used in jitter propagation: the speed-adjusted
        WCET of a task, the transmission time of a frame."""
        if resource in self._processors:
            processor = self._processors[resource]
            if item not in processor.taskset:
                raise SystemConfigurationError(
                    f"resource {resource!r} has no item {item!r}")
            return processor.taskset.get(item).wcet / processor.speed_factor
        bus = self._buses.get(resource)
        if bus is not None:
            for frame in bus.frames:
                if frame.name == item:
                    return frame.transmission_time(bus.bitrate_bps)
        raise SystemConfigurationError(f"resource {resource!r} has no item {item!r}")

    def max_period(self) -> float:
        periods = [task.period for p in self._processors.values() for task in p.taskset]
        periods += [frame.period for b in self._buses.values() for frame in b.frames]
        return max(periods) if periods else 1.0


@dataclass
class SystemAnalysisResult:
    """Outcome of one system-level fixpoint.

    ``results`` maps resource name -> item name -> per-item
    :class:`ResponseTimeResult`; ``event_models`` carries the converged
    activation model of every item (base model where nothing propagated).
    """

    converged: bool
    diverged: bool
    iterations: int
    results: Dict[str, Dict[str, ResponseTimeResult]]
    event_models: Dict[Tuple[str, str], EventModel]
    model: SystemModel = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def schedulable(self) -> bool:
        """Whether the fixpoint converged and every item meets its deadline."""
        return (self.converged and not self.diverged
                and all(result.schedulable
                        for per_resource in self.results.values()
                        for result in per_resource.values()))

    def result_of(self, resource: str, item: str) -> ResponseTimeResult:
        try:
            return self.results[resource][item]
        except KeyError as exc:
            raise SystemConfigurationError(
                f"no result for {resource!r}/{item!r}") from exc

    def chain_latency(self, chain: CauseEffectChain) -> Optional[float]:
        """Jitter-aware worst-case latency of a cause-effect chain.

        Because every hop's analysed activation jitter already contains the
        upstream response-time variation (that is what the fixpoint
        propagates), the latency from the first hop's activation to the last
        hop's completion is bounded by the sum of the best-case responses of
        all hops but the last plus the worst-case response of the last hop.
        Returns ``None`` when the fixpoint did not converge or the final hop
        has no bounded response.
        """
        self._validate_chain(chain)
        if not self.converged or self.diverged:
            return None
        last_resource, last_item = chain.hops[-1]
        last = self.result_of(last_resource, last_item)
        if last.wcrt is None:
            return None
        total = last.wcrt
        for resource, item in chain.hops[:-1]:
            self.result_of(resource, item)  # surface unknown hops uniformly
            total += self.model.best_case_response(resource, item)
        return total

    def chain_slack(self, chain: CauseEffectChain) -> Optional[float]:
        """Deadline minus jitter-aware latency (``None`` when unbounded or
        the chain carries no deadline)."""
        if chain.deadline is None:
            return None
        latency = self.chain_latency(chain)
        if latency is None:
            return None
        return chain.deadline - latency

    def _validate_chain(self, chain: CauseEffectChain) -> None:
        if self.model is None:
            raise SystemConfigurationError("result carries no model reference")
        for (src_res, src), (dst_res, dst) in zip(chain.hops, chain.hops[1:]):
            if not self.model.has_link(src_res, src, dst_res, dst):
                raise SystemConfigurationError(
                    f"chain {chain.name!r}: {src_res}/{src} -> {dst_res}/{dst} "
                    "is not an event link of the analysed model; the "
                    "jitter-aware bound is only sound along propagated "
                    "activation dependencies")


def distributed_end_to_end_latency(result: SystemAnalysisResult,
                                   chain: CauseEffectChain) -> Optional[float]:
    """Module-level alias of :meth:`SystemAnalysisResult.chain_latency`."""
    return result.chain_latency(chain)


class SystemAnalysis:
    """Iterates per-resource analyses to the global event-model fixpoint.

    Parameters
    ----------
    model:
        Optional default :class:`SystemModel`; :meth:`analyse` accepts a
        model per call so one engine (and its warm state) can serve a whole
        update sweep of mutated models.
    cache:
        Optional shared :class:`AnalysisCache`.  Processor analyses go
        through it (content-addressed on task set + event models), so the
        fixpoint's repeated re-analyses — and re-analyses across the steps
        of an update sweep — are answered from the store or by the cache's
        incremental engine.
    incremental:
        Without a cache: ``True`` (default) analyses processors through a
        private :class:`IncrementalResponseTimeAnalysis` and memoizes bus
        segments, ``False`` re-derives everything from scratch on every
        iteration (the cold reference mode the benchmarks compare against).
    max_iterations:
        Fixpoint iteration cap; hitting it reports divergence.
    jitter_limit:
        Propagated-jitter bound above which the system is declared divergent
        (default: 1024 x the largest period in the model).
    bus_memo_limit:
        Entry bound of the bus-segment memo (cleared when exceeded), so a
        long-lived analysis stays bounded like the LRU processor cache.
    """

    def __init__(self, model: Optional[SystemModel] = None,
                 cache: Optional[AnalysisCache] = None,
                 incremental: bool = True,
                 max_iterations: int = 64,
                 jitter_tolerance: float = 1e-9,
                 jitter_limit: Optional[float] = None,
                 bus_memo_limit: int = 4096) -> None:
        if max_iterations <= 0:
            raise SystemConfigurationError("max_iterations must be positive")
        if bus_memo_limit <= 0:
            raise SystemConfigurationError("bus_memo_limit must be positive")
        self.bus_memo_limit = bus_memo_limit
        self.model = model
        self.cache = cache
        self.incremental = incremental
        self.max_iterations = max_iterations
        self.jitter_tolerance = jitter_tolerance
        self.jitter_limit = jitter_limit
        self.engine: Optional[IncrementalResponseTimeAnalysis] = None
        if cache is None and incremental:
            self.engine = IncrementalResponseTimeAnalysis()
        self._bus_memo: Optional[Dict] = {} if (cache is not None or incremental) else None

    # -- per-resource analysis --------------------------------------------

    def _analyse_processor(self, processor: _Processor,
                           overrides: Optional[Dict[str, EventModel]]
                           ) -> Dict[str, ResponseTimeResult]:
        if self.cache is not None:
            return self.cache.analyse(processor.taskset,
                                      speed_factor=processor.speed_factor,
                                      event_models=overrides)
        if self.engine is not None:
            return self.engine.analyse(processor.taskset,
                                       speed_factor=processor.speed_factor,
                                       event_models=overrides)
        analysis = ResponseTimeAnalysis(processor.taskset,
                                        speed_factor=processor.speed_factor,
                                        event_models=overrides)
        return analysis.analyse()

    def _analyse_bus(self, bus: _Bus,
                     overrides: Optional[Dict[str, EventModel]]
                     ) -> Dict[str, ResponseTimeResult]:
        if self._bus_memo is not None and len(self._bus_memo) > self.bus_memo_limit:
            self._bus_memo.clear()
        analysis = CanResponseTimeAnalysis(list(bus.frames), bus.bitrate_bps,
                                           event_models=overrides,
                                           memo=self._bus_memo)
        return analysis.analyse()

    # -- the fixpoint ------------------------------------------------------

    def analyse(self, model: Optional[SystemModel] = None) -> SystemAnalysisResult:
        """Run the propagation fixpoint; returns a :class:`SystemAnalysisResult`.

        On a model without cross-resource links this degenerates to one
        round of isolated per-resource analyses whose results are
        bit-identical to :class:`ResponseTimeAnalysis` /
        :class:`CanResponseTimeAnalysis` run directly.
        """
        model = model if model is not None else self.model
        if model is None:
            raise SystemConfigurationError("no system model given")
        jitter_limit = (self.jitter_limit if self.jitter_limit is not None
                        else 1024.0 * model.max_period())
        processors = model.processors
        buses = model.buses
        links = model.links

        overrides: Dict[str, Dict[str, EventModel]] = {}
        results: Dict[str, Dict[str, ResponseTimeResult]] = {}
        diverged = False
        converged = False
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            results = {}
            for name, processor in processors.items():
                results[name] = self._analyse_processor(processor, overrides.get(name))
            for name, bus in buses.items():
                results[name] = self._analyse_bus(bus, overrides.get(name))

            new_overrides: Dict[str, Dict[str, EventModel]] = {}
            propagation_failed = False
            for link in links:
                source_result = results[link.source_resource][link.source]
                if source_result.wcrt is None:
                    # Unbounded source response: no output event model exists,
                    # the fixpoint cannot close.
                    propagation_failed = True
                    continue
                source_model = self._current_model(model, overrides,
                                                  link.source_resource, link.source)
                out_jitter = max(0.0, source_result.wcrt - model.best_case_response(
                    link.source_resource, link.source))
                if out_jitter > jitter_limit:
                    propagation_failed = True
                    continue
                new_overrides.setdefault(link.target_resource, {})[link.target] = \
                    source_model.with_jitter(out_jitter)
            if propagation_failed:
                diverged = True
                break
            if self._models_stable(overrides, new_overrides):
                converged = True
                break
            overrides = new_overrides
        else:
            diverged = True

        event_models: Dict[Tuple[str, str], EventModel] = {}
        for resource in list(processors) + list(buses):
            for item in model.items(resource):
                event_models[(resource, item)] = self._current_model(
                    model, overrides, resource, item)
        return SystemAnalysisResult(converged=converged, diverged=diverged,
                                    iterations=iterations, results=results,
                                    event_models=event_models, model=model)

    @staticmethod
    def _current_model(model: SystemModel,
                       overrides: Mapping[str, Mapping[str, EventModel]],
                       resource: str, item: str) -> EventModel:
        override = overrides.get(resource, {}).get(item)
        if override is not None:
            return override
        return model.base_event_model(resource, item)

    def _models_stable(self, old: Mapping[str, Mapping[str, EventModel]],
                       new: Mapping[str, Mapping[str, EventModel]]) -> bool:
        if set(old) != set(new):
            return False
        tolerance = self.jitter_tolerance
        for resource, per_item in new.items():
            previous = old[resource]
            if set(previous) != set(per_item):
                return False
            for item, model in per_item.items():
                before = previous[item]
                if model.period != before.period:
                    return False
                if abs(model.jitter - before.jitter) > tolerance:
                    return False
        return True

    def schedulable(self, model: Optional[SystemModel] = None) -> bool:
        """Whole-system verdict: converged fixpoint, every deadline met."""
        return self.analyse(model).schedulable
