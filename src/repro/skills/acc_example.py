"""The ACC skill graph worked example from Section IV of the paper.

The paper refines Adaptive Cruise Control (ACC) driving as the main skill
into the abilities to control distance, control speed and keep the vehicle
controllable for the driver; these refine further down to target-object
selection, dynamic-object perception/tracking, driver-intent estimation and
acceleration/deceleration, terminating at environment sensors and the HMI as
data sources and at the powertrain and braking system as data sinks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.skills.ability import AbilityGraph, PropagationPolicy
from repro.skills.graph import SkillGraph

#: Name of the root (main) skill of the ACC example.
ACC_MAIN_SKILL = "acc_driving"

#: Default mapping of ability-graph nodes to the software components /
#: devices that implement them (matches the component names used by the
#: vehicle substrate and the example configurations).
DEFAULT_IMPLEMENTATIONS: Dict[str, str] = {
    "acc_driving": "acc_controller",
    "control_distance": "acc_controller",
    "control_speed": "acc_controller",
    "keep_vehicle_controllable": "vehicle_supervisor",
    "select_target_object": "object_tracker",
    "perceive_track_objects": "object_tracker",
    "estimate_driver_intent": "driver_intent_estimator",
    "accelerate_decelerate": "powertrain_coordinator",
    "decelerate": "brake_controller",
    "radar_sensor": "radar_sensor",
    "camera_sensor": "camera_sensor",
    "hmi": "hmi_unit",
    "powertrain": "powertrain_actuator",
    "braking_system": "brake_actuator",
}


def build_acc_skill_graph() -> SkillGraph:
    """Construct the ACC skill graph exactly as described in the paper."""
    graph = SkillGraph(main_skill=ACC_MAIN_SKILL)

    # Skills.
    graph.add_skill(ACC_MAIN_SKILL, "Adaptive cruise control driving (main skill).")
    graph.add_skill("control_distance", "Control the distance to the preceding vehicle.")
    graph.add_skill("control_speed", "Control the speed of the ego vehicle.")
    graph.add_skill("keep_vehicle_controllable",
                    "Keep the vehicle controllable for the driver.")
    graph.add_skill("select_target_object", "Select the relevant target object.")
    graph.add_skill("perceive_track_objects", "Perceive and track dynamic objects.")
    graph.add_skill("estimate_driver_intent", "Estimate the driver's intent.")
    graph.add_skill("accelerate_decelerate", "Accelerate and decelerate the vehicle.")
    graph.add_skill("decelerate", "Decelerate the vehicle if required.")

    # Data sources and sinks.
    graph.add_data_source("radar_sensor", "RADAR environment sensor.")
    graph.add_data_source("camera_sensor", "Camera environment sensor.")
    graph.add_data_source("hmi", "Human-machine interface (driver inputs).")
    graph.add_data_sink("powertrain", "Powertrain system.")
    graph.add_data_sink("braking_system", "Braking system.")

    # "For realizing ACC driving, the abilities to control distance, to
    # control speed and to keep the vehicle controllable for the driver are
    # required."
    graph.add_dependency(ACC_MAIN_SKILL, "control_distance")
    graph.add_dependency(ACC_MAIN_SKILL, "control_speed")
    graph.add_dependency(ACC_MAIN_SKILL, "keep_vehicle_controllable")

    # "To keep the vehicle controllable for the driver it is necessary to
    # estimate the driver's intent and to be able to decelerate the vehicle
    # if required."
    graph.add_dependency("keep_vehicle_controllable", "estimate_driver_intent")
    graph.add_dependency("keep_vehicle_controllable", "decelerate")

    # "To control the distance to the preceding vehicle and to control the
    # speed of the ego vehicle the skill to select a target object is needed.
    # Both the aforementioned abilities are also dependent on the skill to
    # estimate the driver's intent and the skill to accelerate and decelerate."
    graph.add_dependency("control_distance", "select_target_object")
    graph.add_dependency("control_speed", "select_target_object")
    graph.add_dependency("control_distance", "estimate_driver_intent")
    graph.add_dependency("control_speed", "estimate_driver_intent")
    graph.add_dependency("control_distance", "accelerate_decelerate")
    graph.add_dependency("control_speed", "accelerate_decelerate")

    # "For the selection of a target object, the system has to be able to
    # perceive and track dynamic objects which itself depends on environment
    # sensors as data sources."
    graph.add_dependency("select_target_object", "perceive_track_objects")
    graph.add_dependency("perceive_track_objects", "radar_sensor")
    graph.add_dependency("perceive_track_objects", "camera_sensor")

    # "To estimate the driver's intent, a form of HMI is required as a data
    # source."
    graph.add_dependency("estimate_driver_intent", "hmi")

    # "Acceleration and deceleration both require the powertrain system as a
    # data sink while deceleration also requires the braking system as a data
    # sink."
    graph.add_dependency("accelerate_decelerate", "powertrain")
    graph.add_dependency("decelerate", "powertrain")
    graph.add_dependency("decelerate", "braking_system")

    return graph


def build_acc_ability_graph(policy: PropagationPolicy = PropagationPolicy.MIN,
                            implementations: Optional[Dict[str, str]] = None) -> AbilityGraph:
    """Instantiate the ACC skill graph into a runtime ability graph."""
    mapping = dict(DEFAULT_IMPLEMENTATIONS)
    if implementations:
        mapping.update(implementations)
    return AbilityGraph(build_acc_skill_graph(), policy=policy, implementations=mapping)
