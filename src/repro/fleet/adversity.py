"""Adversity models: hostile and degraded-world campaign conditions.

The campaign engine of :mod:`repro.fleet.campaign` exercises the paper's
self-aware update loop under *nominal* conditions: every vehicle receives its
update, every monitor report is honest, and the platform the admission
verdict was computed for is the platform the update runs on.  Production
fleets enjoy none of that.  An :class:`AdversityModel` perturbs the wave loop
at its three seams:

* **Update delivery** — a lossy or partitioned OTA network drops the update
  for some vehicles.  :class:`LossyDeliveryAdversity` decides per vehicle and
  per attempt whether delivery succeeds; undelivered vehicles carry into the
  next wave (and into extra *straggler* waves after the planned rollout)
  until delivered or their retry budget is exhausted.
* **Monitor feedback** — compromised vehicles inject false deviation reports
  into the between-wave feedback channel.  :class:`IntrusionAdversity`
  forges the observed execution times of compromised vehicles (over- or
  under-reporting) and grades every deviation report through a
  :class:`~repro.security.ids.IntrusionDetectionSystem`, so the halt policy
  can discount reports from suspected senders instead of halting a healthy
  rollout on fabricated evidence.
* **Admission inputs** — thermal throttling changes the platform between
  waves.  :class:`ThermalAdversity` advances a
  :class:`~repro.platform.thermal.ThermalModel` /
  :class:`~repro.platform.thermal.DvfsGovernor` pair once per wave against a
  deterministic ambient profile and inflates the update contract's WCET by
  the reciprocal of the active speed factor, flipping admission verdicts in
  hot waves.

Determinism contract
--------------------

Every hook executes in the campaign's *parent* process, in wave order, with
all randomness drawn from :class:`~repro.sim.random.SeededRNG` streams keyed
on ``(seed, vehicle.index, attempt)`` — never on wall clock, process ids or
pool scheduling.  Adversity decisions are therefore a pure function of the
campaign parameters, and a perturbed campaign remains byte-identical between
``workers=1`` and any pooled worker layout (the differential harness in
``tests/test_adversity_campaign.py`` pins this).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.contracts.model import Contract
from repro.fleet.vehicle import FleetVehicle
from repro.mcc.configuration import ChangeRequest
from repro.platform.resources import ProcessingResource
from repro.platform.thermal import DvfsGovernor, OperatingPoint, ThermalModel
from repro.security.ids import IdsRule, IntrusionDetectionSystem
from repro.sim.random import SeededRNG, derive_seed

#: Service peer that campaign monitor reports are addressed to (the OEM's
#: campaign backend) — the one peer every vehicle's IDS rule allows.
MONITOR_PEER = "campaign-monitor"


class AdversityModel:
    """Pluggable perturbation of a campaign's wave loop.

    The base class is the identity adversity: every hook is a no-op and a
    campaign configured with it behaves exactly like one without adversity.
    Subclasses override the seams they perturb; the campaign calls every
    hook in deterministic wave order from the parent process (see the module
    docstring for the determinism contract).
    """

    #: When true, the campaign grades feedback against *two-sided* tolerance
    #: bands (:class:`~repro.monitoring.deviation.ExpectedBehaviour` with
    #: ``two_sided=True``), closing the under-reporting channel.
    two_sided_feedback: bool = False

    #: Optional override of the honest observed-execution-time factor range
    #: drawn for non-injected vehicles (the campaign default spans well
    #: below the lower tolerance bound, which only a one-sided band
    #: ignores).  Models that enable two-sided grading narrow it so honest
    #: vehicles stay in band.
    nominal_factor_range: Optional[Tuple[float, float]] = None

    def begin_wave(self, wave_index: int,
                   vehicles: Sequence[FleetVehicle]) -> None:
        """Called once before each wave executes (including stragglers)."""

    def deliver(self, vehicle: FleetVehicle, wave_index: int,
                attempt: int) -> bool:
        """Whether the update reaches ``vehicle`` in this wave.

        ``attempt`` counts prior failed deliveries (0 on the first try).
        Returning ``False`` defers the vehicle to the next wave unless
        :meth:`abandon` gives up on it.
        """
        return True

    def abandon(self, vehicle: FleetVehicle, attempts: int) -> bool:
        """Whether to give up on an undelivered vehicle after ``attempts``
        failed deliveries (called only when :meth:`deliver` returned
        ``False``)."""
        return False

    def transform_request(self, vehicle: FleetVehicle, request: ChangeRequest,
                          wave_index: int) -> ChangeRequest:
        """Perturb the admission input of one vehicle (e.g. inflate WCETs)."""
        return request

    def observe(self, vehicle: FleetVehicle, wave_index: int, nominal: float,
                honest: float) -> float:
        """The execution time ``vehicle`` *reports* for this wave.

        ``nominal`` is the contracted WCET, ``honest`` the value the
        vehicle's monitor actually measured; a compromised vehicle returns a
        forged value instead.
        """
        return honest

    def grade_feedback(self, vehicle: FleetVehicle, wave_index: int,
                       anomaly_count: int) -> bool:
        """Grade one vehicle's deviation report; ``True`` discounts it.

        Called only when the report raised anomalies.  A discounted report
        still marks the vehicle deviating (the record keeps the evidence)
        but is excluded from the halt-policy failure count.
        """
        return False


class LossyDeliveryAdversity(AdversityModel):
    """Lossy/partitioned OTA delivery with bounded per-vehicle retries.

    Each delivery attempt of each vehicle fails independently with
    probability ``drop_rate`` (seeded per ``(vehicle.index, attempt)``, so
    the decision stream is independent of wave composition and worker
    layout).  An undelivered vehicle is retried in the next wave — riding
    along with that wave's planned members, or in extra ``straggler`` waves
    once the planned rollout is exhausted — until it has failed
    ``1 + max_retries`` times, at which point it is abandoned (counted, not
    updated).
    """

    def __init__(self, drop_rate: float, max_retries: int = 3,
                 seed: int = 0) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.drop_rate = drop_rate
        self.max_retries = int(max_retries)
        self.seed = seed
        #: Delivery accounting (attempts, drops, abandoned vehicles).
        self.attempts = 0
        self.drops = 0
        self.abandoned_ids: List[str] = []

    def deliver(self, vehicle: FleetVehicle, wave_index: int,
                attempt: int) -> bool:
        rng = SeededRNG(derive_seed(self.seed, "ota", vehicle.index, attempt))
        self.attempts += 1
        if rng.uniform() < self.drop_rate:
            self.drops += 1
            return False
        return True

    def abandon(self, vehicle: FleetVehicle, attempts: int) -> bool:
        if attempts > self.max_retries:
            self.abandoned_ids.append(vehicle.vehicle_id)
            return True
        return False


class IntrusionAdversity(AdversityModel):
    """Compromised vehicles injecting false deviation reports.

    A fraction ``compromise_rate`` of the fleet (seeded per vehicle index)
    is compromised.  In ``over_report`` mode a compromised vehicle forges an
    execution time well above the tolerance band and spams
    ``reports_per_wave`` copies of the report — trying to trip the halt
    policy and stall the rollout.  In ``under_report`` mode it forges a
    near-zero execution time to *hide* a genuine failure — the channel the
    one-sided tolerance band left open and the two-sided band closes
    (``two_sided_feedback`` is on for this model).

    Every deviation report is graded through an
    :class:`~repro.security.ids.IntrusionDetectionSystem`: each reporting
    vehicle gets a rate rule, report bursts exceed it within the rate
    window, and once the sender crosses the suspicion threshold its reports
    are discounted from the halt count (``discount_suspected=False``
    disables the countermeasure to measure the undefended baseline).
    """

    #: Honest vehicles stay inside the two-sided band (tolerance 0.1).
    nominal_factor_range = (0.92, 1.08)
    two_sided_feedback = True

    def __init__(self, compromise_rate: float, mode: str = "over_report",
                 reports_per_wave: int = 6, over_factor: float = 1.6,
                 under_factor: float = 0.02, max_report_rate_hz: float = 2.0,
                 suspicion_threshold: int = 3, discount_suspected: bool = True,
                 seed: int = 0) -> None:
        if not 0.0 <= compromise_rate <= 1.0:
            raise ValueError("compromise_rate must be in [0, 1]")
        if mode not in ("over_report", "under_report"):
            raise ValueError(f"unknown intrusion mode {mode!r}")
        if reports_per_wave < 1:
            raise ValueError("reports_per_wave must be at least 1")
        self.compromise_rate = compromise_rate
        self.mode = mode
        self.reports_per_wave = int(reports_per_wave)
        self.over_factor = over_factor
        self.under_factor = under_factor
        self.max_report_rate_hz = max_report_rate_hz
        self.discount_suspected = discount_suspected
        self.seed = seed
        self.ids = IntrusionDetectionSystem(
            suspicion_threshold=suspicion_threshold)
        self.compromised_ids: List[str] = []
        self._compromised_cache: Dict[str, bool] = {}

    def is_compromised(self, vehicle: FleetVehicle) -> bool:
        cached = self._compromised_cache.get(vehicle.vehicle_id)
        if cached is None:
            draw = SeededRNG(derive_seed(self.seed, "compromise",
                                         vehicle.index)).uniform()
            cached = draw < self.compromise_rate
            self._compromised_cache[vehicle.vehicle_id] = cached
            if cached:
                self.compromised_ids.append(vehicle.vehicle_id)
        return cached

    def observe(self, vehicle: FleetVehicle, wave_index: int, nominal: float,
                honest: float) -> float:
        if not self.is_compromised(vehicle):
            return honest
        factor = self.over_factor if self.mode == "over_report" \
            else self.under_factor
        return nominal * factor

    def grade_feedback(self, vehicle: FleetVehicle, wave_index: int,
                       anomaly_count: int) -> bool:
        sender = vehicle.vehicle_id
        if self.ids.rule_for(sender) is None:
            self.ids.add_rule(IdsRule(sender=sender,
                                      allowed_peers={MONITOR_PEER},
                                      max_rate_hz=self.max_report_rate_hz))
        # An honest monitor sends its deviation report once; a compromised
        # over-reporter floods duplicates to force the halt — which is
        # exactly the burst the IDS rate window flags.
        reports = self.reports_per_wave \
            if self.is_compromised(vehicle) and self.mode == "over_report" \
            else 1
        spacing = self.ids.rate_window_s / (4.0 * self.reports_per_wave)
        for copy in range(reports):
            self.ids.observe_service_call(float(wave_index) + copy * spacing,
                                          sender, MONITOR_PEER)
        return self.discount_suspected and self.ids.is_suspected(sender)


class ThermalAdversity(AdversityModel):
    """Thermal throttling inflating admission WCETs mid-campaign.

    One shared thermal proxy (the fleet operates in the same heat wave)
    advances by ``wave_dt_s`` seconds per wave towards the steady state of
    the deterministic triangular ambient profile: ambient ramps from
    ``base_ambient_c`` to ``peak_ambient_c`` at wave ``peak_wave`` and falls
    back symmetrically.  The DVFS governor reacts to the junction
    temperature; whenever it throttles, every update contract admitted that
    wave carries a WCET inflated by ``1 / speed_factor`` (capped just below
    the deadline so the contract stays well-formed and the *acceptance
    test* — not contract validation — flips the verdict).  Inflated
    contracts are cached per (base contract, speed factor), so same-variant
    vehicles of one wave still pose one deduped integration.
    """

    def __init__(self, base_ambient_c: float = 35.0,
                 peak_ambient_c: float = 80.0, peak_wave: int = 2,
                 wave_dt_s: float = 120.0, utilization: float = 0.9,
                 throttle_threshold_c: float = 85.0,
                 recover_threshold_c: float = 70.0,
                 operating_points: Optional[List[OperatingPoint]] = None) -> None:
        if peak_wave < 0:
            raise ValueError("peak_wave must be non-negative")
        if wave_dt_s <= 0:
            raise ValueError("wave_dt_s must be positive")
        self.base_ambient_c = base_ambient_c
        self.peak_ambient_c = peak_ambient_c
        self.peak_wave = int(peak_wave)
        self.wave_dt_s = wave_dt_s
        self.utilization = utilization
        self._proxy = ProcessingResource("thermal-adversity-proxy")
        self.model = ThermalModel(self._proxy, ambient_c=base_ambient_c)
        self.governor = DvfsGovernor(
            self._proxy, operating_points=operating_points,
            throttle_threshold_c=throttle_threshold_c,
            recover_threshold_c=recover_threshold_c)
        #: (wave_index, ambient_c, temperature_c, speed_factor) per wave.
        self.trace: List[Tuple[int, float, float, float]] = []
        #: id(base contract) -> (pinned base, {speed factor: inflated copy}).
        self._inflated: Dict[int, Tuple[Contract, Dict[float, Contract]]] = {}

    def ambient_at(self, wave_index: int) -> float:
        """Triangular ambient profile peaking at ``peak_wave``."""
        span = self.peak_ambient_c - self.base_ambient_c
        rise = max(self.peak_wave, 1)
        distance = abs(wave_index - self.peak_wave)
        return self.base_ambient_c + span * max(0.0, 1.0 - distance / rise)

    def begin_wave(self, wave_index: int,
                   vehicles: Sequence[FleetVehicle]) -> None:
        ambient = self.ambient_at(wave_index)
        temperature = self.model.step(self.wave_dt_s, self.utilization,
                                      self.governor.current.power_factor,
                                      ambient_c=ambient)
        point = self.governor.update(temperature)
        self.trace.append((wave_index, ambient, temperature,
                           point.speed_factor))

    @property
    def speed_factor(self) -> float:
        return self.governor.current.speed_factor

    def _inflate(self, contract: Contract, speed: float) -> Contract:
        base, variants = self._inflated.setdefault(id(contract),
                                                   (contract, {}))
        assert base is contract  # the pin keeps id(contract) unambiguous
        cached = variants.get(speed)
        if cached is not None:
            return cached
        timing = contract.timing
        deadline = timing.deadline if timing.deadline is not None \
            else timing.period
        wcet = min(timing.wcet / speed, 0.99 * deadline)
        inflated_timing = replace(timing, wcet=wcet)
        inflated = replace(contract,
                           requirements=[inflated_timing if req is timing
                                         else req
                                         for req in contract.requirements])
        variants[speed] = inflated
        return inflated

    def transform_request(self, vehicle: FleetVehicle, request: ChangeRequest,
                          wave_index: int) -> ChangeRequest:
        speed = self.speed_factor
        if speed >= 1.0 or request.contract is None \
                or request.contract.timing is None:
            return request
        return replace(request, contract=self._inflate(request.contract,
                                                       speed))
