"""Typed request/response schemas of the fleet admission service.

The service API is a set of frozen dataclasses — the in-process equivalent
of a wire protocol.  Requests (:class:`SubmitCampaign`, :class:`HaltRequest`,
:class:`ResumeRequest`, :class:`RollbackRequest`) validate themselves at
construction, so a malformed call fails at the caller with
:class:`ServiceError` before it ever reaches the scheduler; responses
(:class:`SubmitReceipt`, :class:`WaveProgress`, :class:`CampaignStatus`) are
immutable snapshots the service emits — holding one never aliases live
service state.

Every campaign knob of :class:`SubmitCampaign` mirrors the E10 scenario
(:func:`repro.scenarios.fleet_campaign.run_fleet_campaign_scenario`): a
submitted campaign is a pure function of its parameters, so a tenant's
result is byte-identical to an isolated direct
:meth:`~repro.fleet.campaign.Campaign.run` over the same parameters — no
matter how many other tenants share the service or its analysis-cache
store (the E17 benchmark pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ServiceError",
    "JobState",
    "SubmitCampaign",
    "SubmitReceipt",
    "WaveProgress",
    "CampaignStatus",
    "HaltRequest",
    "ResumeRequest",
    "RollbackRequest",
]


class ServiceError(ValueError):
    """Raised for malformed service requests or invalid job transitions."""


class JobState:
    """The lifecycle states of a submitted campaign job.

    ``QUEUED`` — accepted, not yet provisioned.  ``RUNNING`` — an engine is
    being stepped (or is scheduled to be).  ``HALTED`` — parked at a wave
    boundary with a resumable checkpoint: either the wave policy tripped or
    an operator :class:`HaltRequest` landed.  ``COMPLETED`` /
    ``ROLLED_BACK`` / ``FAILED`` are terminal.
    """

    QUEUED = "queued"
    RUNNING = "running"
    HALTED = "halted"
    COMPLETED = "completed"
    ROLLED_BACK = "rolled_back"
    FAILED = "failed"

    #: States a job can never leave.
    TERMINAL = (COMPLETED, ROLLED_BACK, FAILED)


@dataclass(frozen=True)
class SubmitCampaign:
    """Submit one staged update campaign for a tenant's fleet.

    The fleet and the update are generated service-side from the seeds and
    knobs below (deterministically — resubmitting the identical request
    yields the identical campaign), matching the E10 scenario parameter for
    parameter.
    """

    tenant: str
    fleet_size: int = 24
    seed: int = 0
    heterogeneity: float = 0.15
    num_variants: int = 4
    extra_components: int = 2
    update_utilization: float = 0.22
    component: str = "nav_assist"
    canary_size: int = 2
    wave_fractions: Tuple[float, ...] = (0.1, 0.3, 1.0)
    max_failure_rate: float = 0.3
    rollback_on_halt: bool = True
    failure_injection_rate: float = 0.0
    workers: int = 1
    batch_kernel: bool = False

    def __post_init__(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServiceError("tenant must be a non-empty string")
        if self.fleet_size < 1:
            raise ServiceError("fleet_size must be at least 1")
        if self.num_variants < 1:
            raise ServiceError("num_variants must be at least 1")
        if not 0.0 <= self.heterogeneity <= 1.0:
            raise ServiceError("heterogeneity must be in [0, 1]")
        if self.update_utilization <= 0.0:
            raise ServiceError("update_utilization must be positive")
        if not 0.0 <= self.failure_injection_rate <= 1.0:
            raise ServiceError("failure_injection_rate must be in [0, 1]")
        if self.workers < 1:
            raise ServiceError("workers must be at least 1")
        # Staging-policy shape errors surface at submit time too, with the
        # campaign layer's own messages (WavePolicy validates in its
        # __post_init__); tuple-ify defensively so callers can pass lists.
        object.__setattr__(self, "wave_fractions",
                           tuple(float(f) for f in self.wave_fractions))
        from repro.fleet.campaign import CampaignError, WavePolicy
        try:
            WavePolicy(canary_size=self.canary_size,
                       wave_fractions=self.wave_fractions,
                       max_failure_rate=self.max_failure_rate,
                       rollback_on_halt=self.rollback_on_halt)
        except CampaignError as error:
            raise ServiceError(f"invalid staging policy: {error}") from error


@dataclass(frozen=True)
class SubmitReceipt:
    """Acknowledgement of an accepted :class:`SubmitCampaign`."""

    job_id: str
    tenant: str
    state: str
    fleet_size: int
    waves_planned: int


@dataclass(frozen=True)
class WaveProgress:
    """One executed wave of one job — the streaming unit.

    ``final`` marks the last wave the job's current engine will execute
    (completion or policy halt); an operator halt parks the job *between*
    waves, so a halted-then-resumed job streams ``final`` only once, at its
    true end.
    """

    job_id: str
    tenant: str
    index: int
    kind: str
    size: int
    admitted: int
    rejected: int
    deviating: int
    rolled_back: int
    failure_rate: float
    halted: bool
    final: bool


@dataclass(frozen=True)
class CampaignStatus:
    """Point-in-time snapshot of one job's aggregate state."""

    job_id: str
    tenant: str
    state: str
    waves_executed: int
    admitted: int
    rejected: int
    deviating: int
    rolled_back: int
    halted_wave: Optional[int]
    update_coverage: float
    error: Optional[str] = None


@dataclass(frozen=True)
class HaltRequest:
    """Park a job at its next wave boundary with a resumable checkpoint."""

    job_id: str
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ServiceError("job_id must be a non-empty string")


@dataclass(frozen=True)
class ResumeRequest:
    """Resume a halted job from its checkpoint.

    ``max_failure_rate`` optionally remediates the staging policy's halt
    threshold (the classic operator move after a policy halt); all other
    campaign parameters stay as submitted — resume re-validates that the
    staging of already-executed waves is unchanged.
    """

    job_id: str
    max_failure_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ServiceError("job_id must be a non-empty string")
        if self.max_failure_rate is not None \
                and not 0.0 <= self.max_failure_rate <= 1.0:
            raise ServiceError("max_failure_rate must be in [0, 1]")


@dataclass(frozen=True)
class RollbackRequest:
    """Abandon a halted job and roll its fleet back to the pre-campaign state."""

    job_id: str

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ServiceError("job_id must be a non-empty string")
