"""Thermal model and DVFS governor for processing resources.

Section V uses ambient temperature as the running example of a common-cause,
cross-layer disturbance: heat degrades the hardware platform (requiring
voltage/frequency scaling to prevent permanent damage) *and* changes the
plant so that control software underperforms.  This module provides the
platform-side half of that coupling: a lumped-parameter thermal model of a
processing resource and a DVFS governor that trades execution speed against
junction temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.platform.resources import ProcessingResource


@dataclass(frozen=True)
class OperatingPoint:
    """A DVFS operating point: relative speed and relative power draw."""

    name: str
    speed_factor: float
    power_factor: float

    def __post_init__(self) -> None:
        if not 0 < self.speed_factor <= 1.0:
            raise ValueError("speed_factor must be in (0, 1]")
        if not 0 < self.power_factor <= 1.0:
            raise ValueError("power_factor must be in (0, 1]")


#: Default operating points: power scales roughly with V^2 * f, modelled here
#: as a super-linear drop relative to the speed reduction.
DEFAULT_OPERATING_POINTS: List[OperatingPoint] = [
    OperatingPoint("nominal", 1.0, 1.0),
    OperatingPoint("throttle-80", 0.8, 0.55),
    OperatingPoint("throttle-60", 0.6, 0.33),
    OperatingPoint("throttle-40", 0.4, 0.18),
]


class ThermalModel:
    """Lumped-parameter (single RC) thermal model of a processing resource.

    dT/dt = (P * R - (T - T_ambient)) / (R * C)

    with power P proportional to the active utilization times the power
    factor of the current operating point.  The absolute scaling is chosen so
    that a fully utilized core at nominal frequency settles ``delta_t_max``
    kelvin above ambient.
    """

    def __init__(self, resource: ProcessingResource,
                 ambient_c: float = 35.0,
                 delta_t_max: float = 55.0,
                 time_constant_s: float = 20.0) -> None:
        if delta_t_max <= 0 or time_constant_s <= 0:
            raise ValueError("delta_t_max and time_constant_s must be positive")
        self.resource = resource
        self.ambient_c = ambient_c
        self.delta_t_max = delta_t_max
        self.time_constant_s = time_constant_s
        resource.condition.temperature_c = ambient_c

    @property
    def temperature_c(self) -> float:
        return self.resource.condition.temperature_c

    def steady_state(self, utilization: float, power_factor: float) -> float:
        """Temperature the core would settle at for a constant load."""
        load = min(max(utilization, 0.0), 1.0)
        return self.ambient_c + self.delta_t_max * load * power_factor

    def step(self, dt: float, utilization: float, power_factor: float = 1.0,
             ambient_c: Optional[float] = None) -> float:
        """Advance the model by ``dt`` seconds and return the new temperature."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if ambient_c is not None:
            self.ambient_c = ambient_c
        target = self.steady_state(utilization, power_factor)
        current = self.resource.condition.temperature_c
        # Exponential first-order response towards the steady-state target.
        import math

        alpha = 1.0 - math.exp(-dt / self.time_constant_s)
        new_temperature = current + alpha * (target - current)
        self.resource.condition.temperature_c = new_temperature
        return new_temperature


class DvfsGovernor:
    """Temperature-triggered frequency governor.

    The governor walks down the list of operating points when the junction
    temperature exceeds ``throttle_threshold_c`` and walks back up when it
    falls below ``recover_threshold_c``.  The selected operating point's
    speed factor is applied to the processing resource, which in turn
    lengthens task execution times in the scheduler — the platform-layer
    symptom that the cross-layer coordinator must reconcile with the control
    function's needs.
    """

    def __init__(self, resource: ProcessingResource,
                 operating_points: Optional[List[OperatingPoint]] = None,
                 throttle_threshold_c: float = 85.0,
                 recover_threshold_c: float = 70.0,
                 critical_threshold_c: float = 105.0) -> None:
        points = operating_points or DEFAULT_OPERATING_POINTS
        if not points:
            raise ValueError("need at least one operating point")
        if recover_threshold_c >= throttle_threshold_c:
            raise ValueError("recover threshold must be below throttle threshold")
        self.resource = resource
        self.operating_points = sorted(points, key=lambda p: -p.speed_factor)
        self.throttle_threshold_c = throttle_threshold_c
        self.recover_threshold_c = recover_threshold_c
        self.critical_threshold_c = critical_threshold_c
        self._index = 0
        self._last_temperature: Optional[float] = None
        self._apply()

    @property
    def current(self) -> OperatingPoint:
        return self.operating_points[self._index]

    @property
    def at_lowest_point(self) -> bool:
        return self._index == len(self.operating_points) - 1

    def _apply(self) -> None:
        self.resource.set_speed_factor(self.current.speed_factor)

    def force(self, name: str) -> OperatingPoint:
        """Force a named operating point (used by the cross-layer coordinator
        when it decides the platform should pre-emptively slow down)."""
        for index, point in enumerate(self.operating_points):
            if point.name == name:
                self._index = index
                self._apply()
                return point
        raise ValueError(f"unknown operating point {name!r}")

    def update(self, temperature_c: float) -> OperatingPoint:
        """React to a temperature reading; returns the active operating point.

        To avoid over-throttling while the (slow) thermal response to a
        previous step is still settling, the governor only steps further down
        while the temperature is not already falling.
        """
        falling = (self._last_temperature is not None
                   and temperature_c < self._last_temperature - 1e-9)
        if (temperature_c >= self.throttle_threshold_c and not falling
                and not self.at_lowest_point):
            self._index += 1
            self._apply()
        elif temperature_c <= self.recover_threshold_c and self._index > 0:
            self._index -= 1
            self._apply()
        self._last_temperature = temperature_c
        return self.current

    def is_critical(self, temperature_c: float) -> bool:
        """Whether the temperature exceeds the permanent-damage threshold."""
        return temperature_c >= self.critical_threshold_c
