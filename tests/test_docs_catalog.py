"""Registry <-> documentation consistency.

Every scenario registered in the experiment registry must be documented in
``docs/SCENARIOS.md`` (a ``### `name` ...`` section) and appear in the
README's capability table or scenario docs link path; every documented
scenario section must correspond to a registered scenario.  This keeps the
catalog from silently drifting as scenarios are added.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.registry import SCENARIOS

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS_MD = REPO_ROOT / "docs" / "SCENARIOS.md"


def documented_scenario_names() -> set:
    text = SCENARIOS_MD.read_text(encoding="utf-8")
    return set(re.findall(r"^### `([a-z0-9_]+)`", text, flags=re.MULTILINE))


@pytest.mark.parametrize("name", sorted(s.name for s in SCENARIOS))
def test_every_registered_scenario_is_documented(name):
    assert name in documented_scenario_names(), (
        f"scenario {name!r} is registered but has no '### `{name}`' section "
        f"in docs/SCENARIOS.md")


def test_every_documented_scenario_is_registered():
    unknown = documented_scenario_names() - set(SCENARIOS.names())
    assert not unknown, (
        f"docs/SCENARIOS.md documents unregistered scenarios: {sorted(unknown)}")


def test_scenario_knob_tables_cover_all_parameters():
    """Each scenario section's knob table lists every registry parameter."""
    text = SCENARIOS_MD.read_text(encoding="utf-8")
    sections = re.split(r"^### ", text, flags=re.MULTILINE)
    by_name = {}
    for section in sections[1:]:
        match = re.match(r"`([a-z0-9_]+)`", section)
        if match:
            by_name[match.group(1)] = section
    for scenario in SCENARIOS:
        section = by_name[scenario.name]
        for parameter in scenario.parameters:
            assert f"`{parameter.name}`" in section, (
                f"docs/SCENARIOS.md section for {scenario.name!r} does not "
                f"mention parameter `{parameter.name}`")
