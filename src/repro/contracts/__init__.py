"""Contracting language (Section II.A of the paper).

Requirements and constraints of every application/platform component are
captured explicitly so that the Multi-Change Controller can run
viewpoint-specific analyses (safety, timing, security, resources) as
acceptance tests during in-field integration.
"""

from repro.contracts.model import (
    AsilLevel,
    SecurityLevel,
    Requirement,
    RealTimeRequirement,
    SafetyRequirement,
    SecurityRequirement,
    ResourceRequirement,
    ServiceRequirement,
    ServiceProvision,
    Contract,
    ContractViolation,
)
from repro.contracts.language import ContractParser, ContractSerializer, ContractSyntaxError
from repro.contracts.viewpoints import Viewpoint, ViewpointRegistry, STANDARD_VIEWPOINTS

__all__ = [
    "AsilLevel",
    "SecurityLevel",
    "Requirement",
    "RealTimeRequirement",
    "SafetyRequirement",
    "SecurityRequirement",
    "ResourceRequirement",
    "ServiceRequirement",
    "ServiceProvision",
    "Contract",
    "ContractViolation",
    "ContractParser",
    "ContractSerializer",
    "ContractSyntaxError",
    "Viewpoint",
    "ViewpointRegistry",
    "STANDARD_VIEWPOINTS",
]
