"""Countermeasure model.

Every layer offers countermeasures for the anomalies it can react to; the
cross-layer coordinator selects among them.  A countermeasure carries a
predicted effectiveness (how likely it is to contain the problem), a cost
(the degradation of service it implies — a safe stop is maximally costly,
a DVFS step is cheap), and an executable action.  The chosen countermeasure
and the path that led to it are recorded as a :class:`Resolution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.layers import Layer
from repro.monitoring.anomaly import Anomaly


@dataclass
class Countermeasure:
    """One possible reaction of a layer to an anomaly.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"quarantine-component"``).
    layer:
        The layer that executes the countermeasure.
    description:
        Human-readable explanation of the reaction.
    effectiveness:
        Predicted probability in [0, 1] that the countermeasure contains the
        problem (adequacy criterion of the coordinator).
    cost:
        Normalized service-degradation cost in [0, 1] (0 = free,
        1 = mission abort).  Among adequate countermeasures the coordinator
        prefers the cheapest.
    action:
        Optional callable executed when the countermeasure is applied; it
        receives the anomaly and the current time.
    """

    name: str
    layer: Layer
    description: str
    effectiveness: float
    cost: float
    action: Optional[Callable[[Anomaly, float], None]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.effectiveness <= 1.0:
            raise ValueError("effectiveness must be in [0, 1]")
        if not 0.0 <= self.cost <= 1.0:
            raise ValueError("cost must be in [0, 1]")

    def execute(self, anomaly: Anomaly, time: float) -> bool:
        """Run the action; returns True if an action was attached and ran."""
        if self.action is None:
            return False
        self.action(anomaly, time)
        return True


@dataclass
class Resolution:
    """Record of how one anomaly was resolved (or not)."""

    anomaly: Anomaly
    time: float
    chosen_layer: Optional[Layer]
    countermeasure: Optional[Countermeasure]
    escalation_path: List[Layer] = field(default_factory=list)
    resolved: bool = False
    executed: bool = False
    note: str = ""

    @property
    def escalation_depth(self) -> int:
        """How many layers beyond the first considered one were consulted."""
        return max(0, len(self.escalation_path) - 1)

    @property
    def cross_layer(self) -> bool:
        """Whether the resolving layer differs from the observing layer."""
        if self.chosen_layer is None:
            return False
        return self.chosen_layer.label != self.anomaly.layer


class CountermeasureCatalog:
    """A per-layer registry of countermeasure factories.

    Layers register either static countermeasures or factories that build
    anomaly-specific countermeasures on demand; the catalogue is the default
    proposal source used by :class:`~repro.core.arbitration.CrossLayerCoordinator`
    when a layer has no bespoke handler.
    """

    def __init__(self) -> None:
        self._static: Dict[Layer, List[Countermeasure]] = {}
        self._factories: Dict[Layer, List[Callable[[Anomaly], Optional[Countermeasure]]]] = {}

    def register(self, countermeasure: Countermeasure) -> Countermeasure:
        self._static.setdefault(countermeasure.layer, []).append(countermeasure)
        return countermeasure

    def register_factory(self, layer: Layer,
                         factory: Callable[[Anomaly], Optional[Countermeasure]]) -> None:
        self._factories.setdefault(layer, []).append(factory)

    def proposals(self, layer: Layer, anomaly: Anomaly) -> List[Countermeasure]:
        """All countermeasures the layer offers for this anomaly."""
        proposals = list(self._static.get(layer, []))
        for factory in self._factories.get(layer, []):
            built = factory(anomaly)
            if built is not None:
                if built.layer != layer:
                    raise ValueError(
                        f"factory for layer {layer.name} produced a countermeasure "
                        f"for layer {built.layer.name}")
                proposals.append(built)
        return proposals

    def layers(self) -> List[Layer]:
        present = set(self._static) | set(self._factories)
        return sorted(present)

    def __len__(self) -> int:
        return sum(len(v) for v in self._static.values()) + sum(
            len(v) for v in self._factories.values())
