"""Graceful degradation tactics driven by the ability graph.

"In case of a reduced ability level it is possible for the system to apply
graceful degradation tactics, e.g. by switching to different software
modules or by performing self-reconfiguration." (Section IV)

The :class:`DegradationManager` holds the catalogue of tactics available for
each ability (redundant modules to switch to, operational restrictions such
as speed limits, and the last-resort safe stop) and turns the current ability
graph state into a :class:`DegradationPlan`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.skills.ability import AbilityGraph, AbilityLevel


class DegradationActionKind(enum.Enum):
    """Kinds of degradation actions the functional level can take."""

    SWITCH_REDUNDANT = "switch_redundant"
    RESTRICT_OPERATION = "restrict_operation"
    RECONFIGURE = "reconfigure"
    SAFE_STOP = "safe_stop"


@dataclass(frozen=True)
class RedundancySwitch:
    """A redundant implementation that can replace a degraded one."""

    ability: str
    primary_implementation: str
    backup_implementation: str
    performance_penalty: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.performance_penalty < 1.0:
            raise ValueError("performance penalty must be in [0, 1)")


@dataclass
class DegradationAction:
    """One concrete action of a degradation plan."""

    kind: DegradationActionKind
    ability: str
    detail: str
    expected_score: float

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.kind.value}({self.ability}): {self.detail}"


@dataclass
class DegradationPlan:
    """Ordered set of actions plus the predicted resulting root ability level."""

    actions: List[DegradationAction] = field(default_factory=list)
    predicted_root_score: float = 1.0
    requires_safe_stop: bool = False

    @property
    def empty(self) -> bool:
        return not self.actions

    def action_kinds(self) -> List[DegradationActionKind]:
        return [action.kind for action in self.actions]


@dataclass(frozen=True)
class OperationalRestriction:
    """A restriction of the driving task that compensates a degraded ability
    (e.g. "reduce maximum speed" when braking ability is partial)."""

    ability: str
    description: str
    compensated_score: float  # ability score considered acceptable after restriction

    def __post_init__(self) -> None:
        if not 0.0 < self.compensated_score <= 1.0:
            raise ValueError("compensated score must be in (0, 1]")


class DegradationManager:
    """Chooses graceful degradation tactics from the ability graph state."""

    def __init__(self, ability_graph: AbilityGraph,
                 safe_stop_threshold: float = 0.3) -> None:
        if not 0.0 <= safe_stop_threshold <= 1.0:
            raise ValueError("safe stop threshold must be in [0, 1]")
        self.ability_graph = ability_graph
        self.safe_stop_threshold = safe_stop_threshold
        self._switches: Dict[str, RedundancySwitch] = {}
        self._restrictions: Dict[str, OperationalRestriction] = {}
        self._switched: Dict[str, str] = {}

    # -- catalogue -----------------------------------------------------------------

    def register_redundancy(self, switch: RedundancySwitch) -> None:
        if switch.ability not in self.ability_graph.skill_graph:
            raise KeyError(f"unknown ability {switch.ability!r}")
        self._switches[switch.ability] = switch

    def register_restriction(self, restriction: OperationalRestriction) -> None:
        if restriction.ability not in self.ability_graph.skill_graph:
            raise KeyError(f"unknown ability {restriction.ability!r}")
        self._restrictions[restriction.ability] = restriction

    def redundancy_for(self, ability: str) -> Optional[RedundancySwitch]:
        return self._switches.get(ability)

    def restriction_for(self, ability: str) -> Optional[OperationalRestriction]:
        return self._restrictions.get(ability)

    def active_switches(self) -> Dict[str, str]:
        """Ability -> backup implementation currently in use."""
        return dict(self._switched)

    # -- planning ------------------------------------------------------------------------

    def plan(self, degradation_threshold: float = 0.9) -> DegradationPlan:
        """Build a degradation plan for the current ability graph state.

        For every intrinsically degraded ability (root cause), prefer
        switching to a registered redundant implementation; otherwise apply a
        registered operational restriction; if neither exists and the
        predicted root score stays below the safe-stop threshold, request a
        safe stop (the objective-layer escalation of Section V).
        """
        plan = DegradationPlan()
        candidates = [a for a in self.ability_graph.root_cause_candidates()
                      if a.score < degradation_threshold]
        compensated: Dict[str, float] = {}
        for ability in candidates:
            switch = self._switches.get(ability.name)
            if switch is not None and self._switched.get(ability.name) != switch.backup_implementation:
                expected = 1.0 - switch.performance_penalty
                plan.actions.append(DegradationAction(
                    kind=DegradationActionKind.SWITCH_REDUNDANT, ability=ability.name,
                    detail=(f"switch from {switch.primary_implementation} to "
                            f"{switch.backup_implementation}"),
                    expected_score=expected))
                compensated[ability.name] = expected
                continue
            restriction = self._restrictions.get(ability.name)
            if restriction is not None:
                plan.actions.append(DegradationAction(
                    kind=DegradationActionKind.RESTRICT_OPERATION, ability=ability.name,
                    detail=restriction.description,
                    expected_score=restriction.compensated_score))
                compensated[ability.name] = max(ability.intrinsic_score,
                                                restriction.compensated_score)
                continue
            # No tactic available: the ability keeps its (intrinsically
            # degraded) state in the prediction.
            compensated[ability.name] = ability.intrinsic_score

        plan.predicted_root_score = self._predict_root(compensated)
        if plan.predicted_root_score < self.safe_stop_threshold:
            plan.requires_safe_stop = True
            plan.actions.append(DegradationAction(
                kind=DegradationActionKind.SAFE_STOP, ability=self.ability_graph.main_skill,
                detail="ability level below safe threshold; transition to safe state",
                expected_score=plan.predicted_root_score))
        return plan

    def _predict_root(self, compensated: Dict[str, float]) -> float:
        """Predict the root score if the compensations were applied, without
        mutating the live graph."""
        original: Dict[str, float] = {}
        for name, score in compensated.items():
            original[name] = self.ability_graph.ability(name).intrinsic_score
            self.ability_graph.ability(name).intrinsic_score = score
        predicted = self.ability_graph.propagate()
        for name, score in original.items():
            self.ability_graph.ability(name).intrinsic_score = score
        self.ability_graph.propagate()
        return predicted

    # -- execution ---------------------------------------------------------------------------

    def apply(self, plan: DegradationPlan, time: float = 0.0) -> List[str]:
        """Apply a plan to the ability graph; returns a log of applied steps.

        Switching to a redundant implementation restores the ability's
        intrinsic score to (1 - penalty); restrictions raise the score to the
        compensated value; the safe stop itself is executed by the vehicle
        layer, so here it is only logged.
        """
        log: List[str] = []
        for action in plan.actions:
            if action.kind == DegradationActionKind.SWITCH_REDUNDANT:
                switch = self._switches[action.ability]
                self._switched[action.ability] = switch.backup_implementation
                self.ability_graph.ability(action.ability).implementation = (
                    switch.backup_implementation)
                self.ability_graph.observe(action.ability, action.expected_score, time=time)
                log.append(f"switched {action.ability} to {switch.backup_implementation}")
            elif action.kind == DegradationActionKind.RESTRICT_OPERATION:
                current = self.ability_graph.ability(action.ability).intrinsic_score
                self.ability_graph.observe(action.ability,
                                           max(current, action.expected_score), time=time)
                log.append(f"restricted operation to compensate {action.ability}")
            elif action.kind == DegradationActionKind.SAFE_STOP:
                log.append("requested safe stop")
            else:  # RECONFIGURE is performed by the MCC, not locally
                log.append(f"requested reconfiguration for {action.ability}")
        return log


# Re-export the action-kind enum under the name used in the public API.
DegradationAction.Kind = DegradationActionKind  # type: ignore[attr-defined]
