"""Viewpoint registry.

The MCC models "particular viewpoints such as safety, availability or
security" as separate layers, each with its own analysis (Section II.A).
A :class:`Viewpoint` names one such aspect and knows which requirement type
it consumes; the :class:`ViewpointRegistry` lets the MCC enumerate and look
up the analyses to run as acceptance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.contracts.model import Contract


@dataclass(frozen=True)
class Viewpoint:
    """A modelling viewpoint (safety, timing, security, resources, ...).

    Attributes
    ----------
    name:
        Identifier; matches ``Requirement.viewpoint`` of the requirements it
        consumes.
    description:
        Human-readable summary of the aspect the viewpoint models.
    mandatory:
        Whether the MCC must run this viewpoint's acceptance test for every
        change (mandatory viewpoints gate deployment even if no component
        declares a matching requirement).
    """

    name: str
    description: str
    mandatory: bool = True

    def relevant_contracts(self, contracts: List[Contract]) -> List[Contract]:
        """Contracts that declare a requirement for this viewpoint."""
        return [c for c in contracts if c.requirement(self.name) is not None]


class ViewpointRegistry:
    """Ordered registry of viewpoints known to the model domain."""

    def __init__(self, viewpoints: Optional[List[Viewpoint]] = None) -> None:
        self._viewpoints: Dict[str, Viewpoint] = {}
        for viewpoint in viewpoints or []:
            self.register(viewpoint)

    def register(self, viewpoint: Viewpoint) -> None:
        if viewpoint.name in self._viewpoints:
            raise ValueError(f"viewpoint {viewpoint.name!r} is already registered")
        self._viewpoints[viewpoint.name] = viewpoint

    def get(self, name: str) -> Viewpoint:
        try:
            return self._viewpoints[name]
        except KeyError as exc:
            raise KeyError(f"unknown viewpoint {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._viewpoints

    def __iter__(self) -> Iterator[Viewpoint]:
        return iter(self._viewpoints.values())

    def __len__(self) -> int:
        return len(self._viewpoints)

    def names(self) -> List[str]:
        return list(self._viewpoints)

    def mandatory(self) -> List[Viewpoint]:
        return [v for v in self._viewpoints.values() if v.mandatory]


def _build_standard_registry() -> ViewpointRegistry:
    return ViewpointRegistry([
        Viewpoint("timing", "Real-time constraints checked by worst-case response-time analysis."),
        Viewpoint("safety", "ASIL integrity, redundancy and fail-operational requirements."),
        Viewpoint("security", "Communication policy and threat exposure."),
        Viewpoint("resources", "Memory, bandwidth and isolation budgets.", mandatory=False),
        Viewpoint("dependency", "Cross-layer dependency analysis (automated FMEA).", mandatory=False),
    ])


#: The viewpoints the paper names explicitly (safety, availability/timing,
#: security) plus the resource and dependency viewpoints that the MCC uses.
STANDARD_VIEWPOINTS: ViewpointRegistry = _build_standard_registry()
