"""Environmental sensor models with data-quality assessment hooks.

The paper argues that self-diagnosis must be "extended towards the data
quality assessment for environmental sensors (e.g. cameras, LiDAR-,
RADAR-sensors)" (Section IV).  Each sensor model here produces range
measurements to the closest lead vehicle together with an explicit quality
score in [0, 1] that reflects the environment (fog, rain), injected faults
and the sensor's intrinsic noise — the signal that the
:class:`~repro.monitoring.monitors.SensorQualityMonitor` and the ability
graph consume.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.random import SeededRNG
from repro.vehicle.environment import Environment, Weather, WeatherCondition


class SensorFault(enum.Enum):
    """Injectable sensor fault modes."""

    NONE = "none"
    STUCK = "stuck"              # repeats the last value
    DROPOUT = "dropout"          # no measurement at all
    NOISE_BURST = "noise_burst"  # noise amplified by an order of magnitude
    BIAS = "bias"                # constant offset added to the measurement
    BLINDED = "blinded"          # quality collapses (e.g. low sun / dirt)


@dataclass
class SensorReading:
    """One measurement cycle of a sensor."""

    time: float
    valid: bool
    range_m: Optional[float]
    range_rate_mps: Optional[float]
    quality: float
    sensor: str

    @property
    def usable(self) -> bool:
        return self.valid and self.quality > 0.0


class Sensor:
    """Base class for range sensors.

    Subclasses define how weather affects the effective detection range and
    the base measurement noise.  Quality is computed as the product of a
    weather factor, a fault factor and a noise-health factor so that the
    monitors can distinguish "degraded by fog" from "internally faulty".
    """

    #: Nominal maximum detection range in metres (overridden by subclasses).
    nominal_range_m: float = 150.0
    #: Standard deviation of the range measurement noise in metres.
    base_noise_m: float = 0.5

    def __init__(self, name: str, rng: Optional[SeededRNG] = None,
                 cycle_time_s: float = 0.05) -> None:
        if cycle_time_s <= 0:
            raise ValueError("cycle time must be positive")
        self.name = name
        self.rng = rng or SeededRNG(0)
        self.cycle_time_s = cycle_time_s
        self.fault = SensorFault.NONE
        self.fault_magnitude = 1.0
        self._last_reading: Optional[SensorReading] = None
        self.readings: List[SensorReading] = []

    # -- weather sensitivity (overridden per sensor technology) -------------------------

    def weather_factor(self, weather: Weather) -> float:
        """Quality factor in [0, 1] induced by the current weather."""
        return 1.0

    def effective_range(self, weather: Weather) -> float:
        return self.nominal_range_m * self.weather_factor(weather)

    # -- fault injection ------------------------------------------------------------------

    def inject_fault(self, fault: SensorFault, magnitude: float = 1.0) -> None:
        self.fault = fault
        self.fault_magnitude = magnitude

    def clear_fault(self) -> None:
        self.fault = SensorFault.NONE
        self.fault_magnitude = 1.0

    # -- measurement -----------------------------------------------------------------------

    def measure(self, time: float, ego_position_m: float, ego_speed_mps: float,
                environment: Environment) -> SensorReading:
        """Produce one measurement of the closest lead vehicle."""
        weather = environment.weather
        lead = environment.closest_lead(ego_position_m)
        weather_quality = self.weather_factor(weather)
        effective_range = self.nominal_range_m * weather_quality

        true_range: Optional[float] = None
        true_rate: Optional[float] = None
        if lead is not None:
            gap = lead.gap_to(ego_position_m)
            if 0.0 <= gap <= effective_range:
                true_range = gap
                true_rate = lead.speed_mps - ego_speed_mps

        reading = self._apply_faults(time, true_range, true_rate, weather_quality)
        self._last_reading = reading
        self.readings.append(reading)
        return reading

    def _apply_faults(self, time: float, true_range: Optional[float],
                      true_rate: Optional[float], weather_quality: float) -> SensorReading:
        fault_quality = 1.0
        noise_scale = 1.0
        if self.fault == SensorFault.DROPOUT:
            return SensorReading(time=time, valid=False, range_m=None, range_rate_mps=None,
                                 quality=0.0, sensor=self.name)
        if self.fault == SensorFault.STUCK:
            last = self._last_reading
            return SensorReading(time=time, valid=last.valid if last else False,
                                 range_m=last.range_m if last else None,
                                 range_rate_mps=last.range_rate_mps if last else None,
                                 quality=0.2, sensor=self.name)
        if self.fault == SensorFault.NOISE_BURST:
            noise_scale = 10.0 * self.fault_magnitude
            fault_quality = 0.5
        elif self.fault == SensorFault.BIAS:
            fault_quality = 0.6
        elif self.fault == SensorFault.BLINDED:
            fault_quality = max(0.0, 0.2 / max(self.fault_magnitude, 1e-9))

        if true_range is None:
            # No target in range: the reading is valid but empty; quality only
            # reflects the sensor's own health.
            quality = weather_quality * fault_quality
            return SensorReading(time=time, valid=True, range_m=None, range_rate_mps=None,
                                 quality=quality, sensor=self.name)

        noise = self.rng.normal(0.0, self.base_noise_m * noise_scale)
        bias = self.fault_magnitude if self.fault == SensorFault.BIAS else 0.0
        measured_range = max(0.0, true_range + noise + bias)
        measured_rate = (true_rate if true_rate is None
                         else true_rate + self.rng.normal(0.0, 0.2 * noise_scale))
        quality = weather_quality * fault_quality
        return SensorReading(time=time, valid=True, range_m=measured_range,
                             range_rate_mps=measured_rate, quality=quality, sensor=self.name)

    # -- quality history ---------------------------------------------------------------------

    def quality_history(self) -> List[float]:
        return [r.quality for r in self.readings]

    @property
    def last_quality(self) -> float:
        return self._last_reading.quality if self._last_reading else 1.0


class RadarSensor(Sensor):
    """77 GHz long-range radar: robust in fog, mildly degraded by heavy rain."""

    nominal_range_m = 200.0
    base_noise_m = 0.8

    def weather_factor(self, weather: Weather) -> float:
        factor = 1.0 - 0.25 * weather.precipitation
        if weather.condition == WeatherCondition.SNOW:
            factor *= 0.85
        return max(0.1, factor)


class CameraSensor(Sensor):
    """Camera: excellent in clear conditions, strongly limited by visibility."""

    nominal_range_m = 120.0
    base_noise_m = 1.5

    def weather_factor(self, weather: Weather) -> float:
        # Quality follows visibility saturating at the nominal range.
        visibility_factor = min(1.0, weather.visibility_m / self.nominal_range_m)
        precipitation_factor = 1.0 - 0.3 * weather.precipitation
        return max(0.0, visibility_factor * precipitation_factor)


class LidarSensor(Sensor):
    """LiDAR: high accuracy, significantly affected by fog and precipitation."""

    nominal_range_m = 150.0
    base_noise_m = 0.2

    def weather_factor(self, weather: Weather) -> float:
        visibility_factor = min(1.0, weather.visibility_m / (1.5 * self.nominal_range_m))
        precipitation_factor = 1.0 - 0.45 * weather.precipitation
        return max(0.05, visibility_factor * precipitation_factor)
