"""Communication-behaviour intrusion detection.

The IDS observes the communication of components (service calls and CAN
traffic) and compares it against per-sender rules derived from the deployed
configuration: which identifiers a sender may use, at which maximum rate,
and which peers it may talk to.  Violations produce
:class:`IntrusionAlert` objects carrying the suspected component — the input
the cross-layer coordinator needs to decide *where* to contain the leak
(Section V: contain the single affected service rather than shutting down
the whole Ethernet layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType


@dataclass
class IdsRule:
    """Expected communication behaviour of one sender.

    Attributes
    ----------
    sender:
        Component or VM name the rule applies to.
    allowed_ids:
        CAN identifiers / message types the sender may emit (empty = any).
    allowed_peers:
        Service peers the sender may address (empty = any).
    max_rate_hz:
        Maximum sustained message rate; ``None`` disables rate checking.
    """

    sender: str
    allowed_ids: Set[int] = field(default_factory=set)
    allowed_peers: Set[str] = field(default_factory=set)
    max_rate_hz: Optional[float] = None


@dataclass
class IntrusionAlert:
    """One detected intrusion indicator."""

    time: float
    sender: str
    reason: str
    observed: Optional[float] = None
    limit: Optional[float] = None

    def to_anomaly(self) -> Anomaly:
        return Anomaly(anomaly_type=AnomalyType.SECURITY_INTRUSION, subject=self.sender,
                       layer="communication", severity=AnomalySeverity.CRITICAL,
                       time=self.time, observed=self.observed, expected=self.limit,
                       details={"reason": self.reason})


class IntrusionDetectionSystem:
    """Rule-based IDS over observed communication events.

    The IDS is stateful: it keeps a sliding window of recent transmissions
    per sender for rate checking, a per-sender violation count, and marks a
    sender as *suspected compromised* after ``suspicion_threshold``
    violations (a single malformed message is treated as a glitch; repeated
    violations indicate an intrusion).
    """

    def __init__(self, rate_window_s: float = 1.0, suspicion_threshold: int = 3) -> None:
        if rate_window_s <= 0:
            raise ValueError("rate window must be positive")
        if suspicion_threshold < 1:
            raise ValueError("suspicion threshold must be at least 1")
        self.rate_window_s = rate_window_s
        self.suspicion_threshold = suspicion_threshold
        self._rules: Dict[str, IdsRule] = {}
        self._recent_times: Dict[str, List[float]] = {}
        self._violations: Dict[str, int] = {}
        #: Pending alerts (cleared when drained into the awareness loop).
        self.alerts: List[IntrusionAlert] = []
        #: Full alert history (never cleared; used for detection-time metrics).
        self.alert_history: List[IntrusionAlert] = []

    # -- configuration -----------------------------------------------------------------

    def add_rule(self, rule: IdsRule) -> None:
        self._rules[rule.sender] = rule

    def rule_for(self, sender: str) -> Optional[IdsRule]:
        return self._rules.get(sender)

    def senders(self) -> List[str]:
        return list(self._rules)

    # -- observation --------------------------------------------------------------------

    def observe_can_frame(self, time: float, sender: str, can_id: int) -> List[IntrusionAlert]:
        """Observe one CAN transmission attributed to ``sender``."""
        alerts: List[IntrusionAlert] = []
        rule = self._rules.get(sender)
        if rule is None:
            alerts.append(self._alert(time, sender, "unknown sender"))
            return alerts
        if rule.allowed_ids and can_id not in rule.allowed_ids:
            alerts.append(self._alert(time, sender,
                                      f"unauthorized CAN id {can_id:#x}", observed=float(can_id)))
        alerts.extend(self._check_rate(time, sender, rule))
        return alerts

    def observe_service_call(self, time: float, sender: str, peer: str) -> List[IntrusionAlert]:
        """Observe one service invocation from ``sender`` to ``peer``."""
        alerts: List[IntrusionAlert] = []
        rule = self._rules.get(sender)
        if rule is None:
            alerts.append(self._alert(time, sender, "unknown sender"))
            return alerts
        if rule.allowed_peers and peer not in rule.allowed_peers:
            alerts.append(self._alert(time, sender, f"unauthorized peer {peer!r}"))
        alerts.extend(self._check_rate(time, sender, rule))
        return alerts

    def _check_rate(self, time: float, sender: str, rule: IdsRule) -> List[IntrusionAlert]:
        times = self._recent_times.setdefault(sender, [])
        times.append(time)
        cutoff = time - self.rate_window_s
        while times and times[0] < cutoff:
            times.pop(0)
        if rule.max_rate_hz is not None:
            rate = len(times) / self.rate_window_s
            if rate > rule.max_rate_hz:
                return [self._alert(time, sender, "rate limit exceeded",
                                    observed=rate, limit=rule.max_rate_hz)]
        return []

    def _alert(self, time: float, sender: str, reason: str,
               observed: Optional[float] = None, limit: Optional[float] = None) -> IntrusionAlert:
        alert = IntrusionAlert(time=time, sender=sender, reason=reason,
                               observed=observed, limit=limit)
        self.alerts.append(alert)
        self.alert_history.append(alert)
        self._violations[sender] = self._violations.get(sender, 0) + 1
        return alert

    # -- assessment ------------------------------------------------------------------------

    def violations_of(self, sender: str) -> int:
        return self._violations.get(sender, 0)

    def suspected_compromised(self) -> List[str]:
        """Senders whose violation count reached the suspicion threshold."""
        return sorted(sender for sender, count in self._violations.items()
                      if count >= self.suspicion_threshold)

    def is_suspected(self, sender: str) -> bool:
        return self.violations_of(sender) >= self.suspicion_threshold

    def first_alert_time(self, sender: str) -> Optional[float]:
        for alert in self.alert_history:
            if alert.sender == sender:
                return alert.time
        return None

    def detection_time(self, sender: str) -> Optional[float]:
        """Time at which the sender crossed the suspicion threshold."""
        count = 0
        for alert in self.alert_history:
            if alert.sender == sender:
                count += 1
                if count >= self.suspicion_threshold:
                    return alert.time
        return None

    def drain_anomalies(self) -> List[Anomaly]:
        """Convert and clear pending alerts into anomalies for the awareness loop."""
        anomalies = [alert.to_anomaly() for alert in self.alerts]
        self.alerts.clear()
        return anomalies

    def reset(self) -> None:
        self.alerts.clear()
        self.alert_history.clear()
        self._violations.clear()
        self._recent_times.clear()
