#!/usr/bin/env python3
"""Cooperation under uncertainty: platooning in fog and weather-aware routing.

Two further Section V examples:

* a fog-impaired vehicle joins a platoon led by a better-equipped vehicle and
  agrees on a common speed despite a malicious member, and
* a self-aware route planner decides between a short alpine pass and a longer
  sheltered detour depending on the forecast severity.

Run with::

    python examples/platoon_and_routing.py
"""

from repro.scenarios.platooning_fog import run_fog_platooning_scenario
from repro.scenarios.weather_routing import run_weather_routing_scenario, sweep_severity


def platooning() -> None:
    print("== platooning in dense fog ==")
    for visibility in (200.0, 100.0, 50.0):
        result = run_fog_platooning_scenario(visibility_m=visibility, num_members=5,
                                             num_malicious=1)
        agreed = f"{result.agreed_speed_mps:.1f}" if result.agreed_speed_mps else "n/a"
        benefit = (f"{result.ego_platoon_benefit_mps:+.1f}"
                   if result.ego_platoon_benefit_mps is not None else "n/a")
        print(f"visibility {visibility:5.0f} m: standalone ego speed "
              f"{result.ego_standalone_speed_mps:5.1f} m/s, platoon speed {agreed} m/s "
              f"(benefit {benefit} m/s, {result.rounds} consensus rounds, "
              f"agreement error {result.agreement_error_mps:.2f} m/s)")
    print("(paper: a fog-impaired vehicle can keep driving by joining a platoon, but "
          "agreement must tolerate untrustworthy members)")


def routing() -> None:
    print("\n== weather-aware route planning (alpine pass vs detour) ==")
    print(f"{'severity':>9s} {'aware route':>34s} {'km':>6s} {'baseline route':>34s} {'km':>6s}")
    for result in sweep_severity([0.0, 0.2, 0.4, 0.6, 0.8]):
        aware = " -> ".join(result.aware_route.nodes)
        base = " -> ".join(result.baseline_route.nodes)
        print(f"{result.severity:9.1f} {aware:>34s} {result.aware_route.length_km:6.0f} "
              f"{base:>34s} {result.baseline_route.length_km:6.0f}")
    crossover = next((r.severity for r in sweep_severity([i / 20 for i in range(21)])
                      if r.aware_takes_detour), None)
    print(f"\nthe self-aware planner abandons the alpine pass from severity "
          f"{crossover} onwards; the weather-agnostic baseline never does")


def main() -> None:
    platooning()
    routing()


if __name__ == "__main__":
    main()
