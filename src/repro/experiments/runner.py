"""Serial and process-parallel execution of experiment specs.

The runner turns an :class:`~repro.experiments.spec.ExperimentSpec` into a
list of structured :class:`RunRecord` objects.  Runs are fully determined by
their :class:`~repro.experiments.spec.RunSpec` (scenario + bound parameters,
seeds included), so the parallel path — a ``multiprocessing.Pool`` over the
expanded runs — produces *byte-identical* metric records to the serial path;
only the wall-time bookkeeping differs, and it is excluded from the
canonical serialization for exactly that reason.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.cache import default_cache
from repro.experiments.registry import SCENARIOS
from repro.experiments.spec import ExperimentSpec, RunSpec


@dataclass
class RunRecord:
    """Structured result of one run.

    ``metrics`` carries the scenario's flattened metric record including the
    ``sim_time_s``/``event_count`` bookkeeping; ``wall_time_s`` and the
    ``cache_hits``/``cache_misses`` deltas of the process-local analysis
    cache are informational — not part of the canonical record, since they
    vary between executions, machines and worker layouts.
    """

    run_id: str
    experiment: str
    scenario: str
    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the run completed without raising."""
        return self.error is None

    def canonical(self) -> Dict[str, Any]:
        """The deterministic part of the record (no wall time)."""
        return {
            "run_id": self.run_id,
            "experiment": self.experiment,
            "scenario": self.scenario,
            "index": self.index,
            "params": self.params,
            "metrics": self.metrics,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable form (canonical part + execution info)."""
        document = self.canonical()
        document["wall_time_s"] = self.wall_time_s
        document["cache_hits"] = self.cache_hits
        document["cache_misses"] = self.cache_misses
        return document


@dataclass
class ExperimentResult:
    """All records of one executed spec, plus execution metadata."""

    spec: ExperimentSpec
    records: List[RunRecord] = field(default_factory=list)
    parallel: bool = False
    workers: int = 1
    wall_time_s: float = 0.0

    def ok(self) -> bool:
        """Whether every run completed without raising."""
        return all(record.ok for record in self.records)

    def metrics(self, key: str) -> List[Any]:
        """The value of one metric across all successful runs (missing keys
        are skipped)."""
        return [record.metrics[key] for record in self.records
                if record.ok and key in record.metrics]

    def canonical_json(self) -> str:
        """Deterministic JSON of all metric records (sorted keys, no wall
        times) — the byte-identical currency for serial/parallel equivalence
        and baseline diffing."""
        return json.dumps([record.canonical() for record in self.records],
                          sort_keys=True, indent=2)

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable form including execution metadata."""
        return {
            "spec": self.spec.to_dict(),
            "parallel": self.parallel,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "records": [record.to_dict() for record in self.records],
        }


def execute_run(run: RunSpec) -> RunRecord:
    """Execute one run in the current process.

    Module-level (not a closure) so it is picklable for the process pool.
    Scenario exceptions are captured into ``record.error`` instead of
    aborting the sweep.

    Runs executing in the same process share the process-local analysis
    cache (:func:`repro.analysis.cache.default_cache`), so a sweep that
    revisits near-identical task sets — grid repetitions, seeds over the
    same campaign shape — answers the repeated busy-window analyses
    incrementally.  The per-run hit/miss deltas are recorded for
    observability (non-canonical: worker layout changes them, results not).
    """
    cache = default_cache()
    hits_before, misses_before = cache.hits, cache.misses
    started = time.perf_counter()
    try:
        metrics = SCENARIOS.get(run.scenario).run_record(run.params)
        error = None
    except Exception as exc:  # noqa: BLE001 - a failed run must not kill the sweep
        metrics = {}
        error = f"{type(exc).__name__}: {exc}"
    return RunRecord(run_id=run.run_id(), experiment=run.experiment,
                     scenario=run.scenario, index=run.index,
                     params=dict(run.params), metrics=metrics,
                     wall_time_s=time.perf_counter() - started,
                     cache_hits=cache.hits - hits_before,
                     cache_misses=cache.misses - misses_before,
                     error=error)


class Runner:
    """Executes experiment specs serially or on a process pool.

    Parameters
    ----------
    parallel:
        Use a ``multiprocessing.Pool`` over the expanded runs.
    workers:
        Pool size; defaults to ``min(cpu_count, number of runs)``.
    """

    def __init__(self, parallel: bool = False, workers: Optional[int] = None) -> None:
        self._validate_workers(workers)
        self.parallel = parallel
        self.workers = workers

    @staticmethod
    def _validate_workers(workers: Optional[int]) -> None:
        """``None`` means auto-size; an explicit count must be >= 1.

        In particular ``workers=0`` is rejected rather than silently
        treated as "auto" — a falsy-``or`` default would conflate the two.
        """
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute every run of ``spec`` and collect the records in
        expansion order (the order is identical for serial and parallel
        execution).

        An empty run grid (an axis bound to zero values) is a clean no-op:
        no pool is sized over it and the result carries zero records.
        """
        self._validate_workers(self.workers)
        runs = spec.expand()
        if not runs:
            return ExperimentResult(spec=spec, records=[], parallel=False,
                                    workers=1, wall_time_s=0.0)
        started = time.perf_counter()
        if self.parallel and len(runs) > 1:
            workers = (self.workers if self.workers is not None
                       else multiprocessing.cpu_count())
            workers = min(workers, len(runs))
            with multiprocessing.Pool(processes=workers) as pool:
                records = pool.map(execute_run, runs)
        else:
            workers = 1
            records = [execute_run(run) for run in runs]
        wall_time = time.perf_counter() - started
        return ExperimentResult(spec=spec, records=records,
                                parallel=self.parallel and len(runs) > 1,
                                workers=workers, wall_time_s=wall_time)

    def run_all(self, specs: List[ExperimentSpec]) -> List[ExperimentResult]:
        """Execute several specs back to back."""
        return [self.run(spec) for spec in specs]
