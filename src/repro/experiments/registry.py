"""Uniform registry over the paper's worked scenarios.

Every scenario in :mod:`repro.scenarios` is registered here behind one
interface: a name, a set of typed parameters with defaults, a run callable,
and a *metric extractor* that flattens the scenario's result dataclass into
a JSON-serializable record.  The experiment spec/runner, the CLI, the
benchmarks and the examples all go through this registry instead of
hand-rolling per-scenario setup code.

Parameters are accepted in JSON-level form (strings and numbers); enum-valued
knobs such as the arbitration policy are coerced by the adapter, so specs can
be written as plain dictionaries or loaded from JSON files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.arbitration import ArbitrationPolicy
from repro.mcc.mapping import MappingStrategy
from repro.scenarios.adversity_campaigns import (
    run_intrusion_campaign_scenario, run_lossy_ota_campaign_scenario,
    run_thermal_campaign_scenario)
from repro.scenarios.distributed_e2e import run_distributed_e2e_scenario
from repro.scenarios.fleet_campaign import run_fleet_campaign_scenario
from repro.scenarios.infield_update import run_infield_update_scenario
from repro.scenarios.intrusion import run_intrusion_scenario
from repro.scenarios.platooning_fog import run_fog_platooning_scenario
from repro.scenarios.thermal import ThermalStrategy, run_thermal_scenario
from repro.scenarios.weather_routing import run_weather_routing_scenario


class ScenarioError(ValueError):
    """Raised for unknown scenarios or invalid scenario parameters."""


@dataclass(frozen=True)
class Parameter:
    """One tunable knob of a scenario."""

    name: str
    default: Any
    description: str = ""
    #: Optional coercion from the JSON-level value to the domain value
    #: (e.g. ``"cross_layer"`` -> :class:`ThermalStrategy`).
    coerce: Optional[Callable[[Any], Any]] = None

    def prepare(self, value: Any) -> Any:
        """Coerce a JSON-level value into the domain value the scenario takes."""
        if self.coerce is None:
            return value
        try:
            return self.coerce(value)
        except (KeyError, ValueError, TypeError) as exc:
            raise ScenarioError(f"parameter {self.name!r}: cannot interpret "
                                f"{value!r} ({exc})") from exc


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: metadata, knobs, run callable, metric extractor."""

    name: str
    summary: str
    run_fn: Callable[..., Any]
    parameters: List[Parameter] = field(default_factory=list)
    #: Name of the parameter that receives the per-run seed (None for
    #: scenarios that are fully deterministic in their inputs).
    seed_param: Optional[str] = None
    #: Flattens the scenario's result object into JSON-serializable metrics.
    extract: Callable[[Any], Dict[str, Any]] = lambda result: {}
    #: Extracts (sim_time_s, event_count) bookkeeping, if meaningful.
    bookkeeping: Callable[[Any, Dict[str, Any]], Dict[str, Any]] = \
        lambda result, params: {}

    def parameter_names(self) -> List[str]:
        """Names of all accepted parameters (including the seed parameter)."""
        return [p.name for p in self.parameters]

    def defaults(self) -> Dict[str, Any]:
        """JSON-level default value of every parameter."""
        return {p.name: p.default for p in self.parameters}

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject parameters the scenario does not know."""
        unknown = set(params) - set(self.parameter_names())
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} got unknown parameters {sorted(unknown)}; "
                f"accepted: {sorted(self.parameter_names())}")

    def run(self, params: Optional[Mapping[str, Any]] = None) -> Any:
        """Run the scenario with JSON-level ``params`` and return the raw
        result object (coercions applied, missing knobs at their defaults)."""
        params = dict(params or {})
        self.validate_params(params)
        kwargs: Dict[str, Any] = {}
        for parameter in self.parameters:
            value = params.get(parameter.name, parameter.default)
            kwargs[parameter.name] = parameter.prepare(value)
        return self.run_fn(**kwargs)

    def run_record(self, params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Run the scenario and return the flattened, JSON-serializable
        metric record (plus sim-time/event-count bookkeeping)."""
        merged = {**self.defaults(), **dict(params or {})}
        result = self.run(params)
        record = dict(self.extract(result))
        record.update(self.bookkeeping(result, merged))
        return record


class ScenarioRegistry:
    """Name -> :class:`Scenario` lookup with registration."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Register a scenario; duplicate names are an error."""
        if scenario.name in self._scenarios:
            raise ScenarioError(f"scenario {scenario.name!r} already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario by name."""
        try:
            return self._scenarios[name]
        except KeyError as exc:
            raise ScenarioError(f"unknown scenario {name!r}; "
                                f"available: {self.names()}") from exc

    def names(self) -> List[str]:
        """Sorted names of all registered scenarios."""
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self):
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)


#: The global registry holding the paper's five worked scenarios.
SCENARIOS = ScenarioRegistry()


def run_scenario(name: str, **params: Any) -> Dict[str, Any]:
    """Run a registered scenario and return its flat metric record."""
    return SCENARIOS.get(name).run_record(params)


def run_scenario_raw(name: str, **params: Any) -> Any:
    """Run a registered scenario and return the raw result object."""
    return SCENARIOS.get(name).run(params)


# ---------------------------------------------------------------------------
# Metric extractors: result dataclass -> flat JSON-serializable dict.
# ---------------------------------------------------------------------------

def _extract_intrusion(result: Any) -> Dict[str, Any]:
    return {
        "policy": result.policy.value,
        "fail_operational": result.fail_operational,
        "safe_stop_requested": result.safe_stop_requested,
        "vehicle_stopped": result.vehicle_stopped,
        "detection_delay_s": result.detection_delay_s,
        "time_to_mitigation_s": result.time_to_mitigation_s,
        "final_speed_mps": result.final_speed_mps,
        "average_speed_after_attack_mps": result.average_speed_after_attack_mps,
        "minimum_gap_m": result.minimum_gap_m,
        "braking_capability_after": result.braking_capability_after,
        "root_ability_after": result.root_ability_after,
        "layers_involved": result.cross_layer_layers_involved,
        "resolutions_by_layer": dict(result.resolutions_by_layer),
    }


def _extract_thermal(result: Any) -> Dict[str, Any]:
    return {
        "strategy": result.strategy.value,
        "peak_temperature_c": result.peak_temperature_c,
        "time_over_critical_s": result.time_over_critical_s,
        "deadline_miss_intervals": result.deadline_miss_intervals,
        "control_quality": result.control_quality,
        "final_speed_factor": result.final_speed_factor,
        "hardware_protected": result.hardware_protected,
        "deadlines_kept": result.deadlines_kept,
    }


def _extract_fog_platooning(result: Any) -> Dict[str, Any]:
    return {
        "visibility_m": result.visibility_m,
        "num_members": result.num_members,
        "num_malicious": result.num_malicious,
        "converged": result.converged,
        "rounds": result.rounds,
        "agreed_speed_mps": result.agreed_speed_mps,
        "ego_standalone_speed_mps": result.ego_standalone_speed_mps,
        "ego_platoon_benefit_mps": result.ego_platoon_benefit_mps,
        "agreement_error_mps": result.agreement_error_mps,
        "malicious_excluded": result.malicious_excluded,
        "platoon_worthwhile": result.platoon_worthwhile,
    }


def _extract_weather_routing(result: Any) -> Dict[str, Any]:
    return {
        "severity": result.severity,
        "aware_route": list(result.aware_route.nodes),
        "aware_route_km": result.aware_route.length_km,
        "aware_takes_detour": result.aware_takes_detour,
        "aware_exposure": result.aware_exposure,
        "baseline_route": list(result.baseline_route.nodes),
        "baseline_route_km": result.baseline_route.length_km,
        "baseline_takes_detour": result.baseline_takes_detour,
        "baseline_exposure": result.baseline_exposure,
        "detour_extra_km": result.detour_extra_km,
        "aware_avoids_exposure": result.aware_avoids_exposure,
    }


def _extract_fleet_campaign(result: Any) -> Dict[str, Any]:
    return {
        "fleet_size": result.fleet_size,
        "heterogeneity": result.heterogeneity,
        "batched": result.batched,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "deviating": result.deviating,
        "refined": result.refined,
        "rolled_back": result.rolled_back,
        "halted": result.halted,
        "halted_wave": result.halted_wave,
        "vehicles_updated": result.vehicles_updated,
        "update_coverage": result.update_coverage,
        "acceptance_rate": result.acceptance_rate,
        "waves": [dict(wave) for wave in result.waves],
    }


def _extract_intrusion_campaign(result: Any) -> Dict[str, Any]:
    return {
        "fleet_size": result.fleet_size,
        "mode": result.mode,
        "discount_suspected": result.discount_suspected,
        "compromised": result.compromised,
        "suspected": result.suspected,
        "true_suspects": result.true_suspects,
        "false_suspects": result.false_suspects,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "deviating": result.deviating,
        "discounted": result.discounted,
        "rolled_back": result.rolled_back,
        "halted": result.halted,
        "halted_wave": result.halted_wave,
        "update_coverage": result.update_coverage,
        "acceptance_rate": result.acceptance_rate,
        "waves": [dict(wave) for wave in result.waves],
    }


def _extract_lossy_ota_campaign(result: Any) -> Dict[str, Any]:
    return {
        "fleet_size": result.fleet_size,
        "drop_rate": result.drop_rate,
        "max_retries": result.max_retries,
        "delivery_attempts": result.delivery_attempts,
        "drops": result.drops,
        "undelivered_events": result.undelivered_events,
        "retried": result.retried,
        "abandoned": result.abandoned,
        "straggler_waves": result.straggler_waves,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "deviating": result.deviating,
        "halted": result.halted,
        "halted_wave": result.halted_wave,
        "update_coverage": result.update_coverage,
        "acceptance_rate": result.acceptance_rate,
        "waves": [dict(wave) for wave in result.waves],
    }


def _extract_thermal_campaign(result: Any) -> Dict[str, Any]:
    return {
        "fleet_size": result.fleet_size,
        "peak_ambient_c": result.peak_ambient_c,
        "throttled_waves": result.throttled_waves,
        "min_speed_factor": result.min_speed_factor,
        "hot_wave_rejections": result.hot_wave_rejections,
        "cool_wave_rejections": result.cool_wave_rejections,
        "verdicts_flipped": result.verdicts_flipped,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "deviating": result.deviating,
        "halted": result.halted,
        "halted_wave": result.halted_wave,
        "update_coverage": result.update_coverage,
        "acceptance_rate": result.acceptance_rate,
        "thermal_trace": [list(row) for row in result.thermal_trace],
        "waves": [dict(wave) for wave in result.waves],
    }


def _extract_distributed_e2e(result: Any) -> Dict[str, Any]:
    return {
        "total_requests": result.total_requests,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "acceptance_rate": result.acceptance_rate,
        "rejected_by_viewpoint": dict(result.rejected_by_viewpoint),
        "rejected_distributed_only": result.rejected_distributed_only,
        "baseline_latency_s": result.baseline_latency_s,
        "final_latency_s": result.final_latency_s,
        "worst_accepted_latency_s": result.worst_accepted_latency_s,
        "chain_deadline_s": result.chain_deadline_s,
        "deadline_held": result.deadline_held,
        "fixpoint_iterations": result.fixpoint_iterations,
        "bus_utilization": result.bus_utilization,
        "final_version": result.final_version,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "baseline_rejected": result.baseline_rejected,
    }


def _extract_infield_update(result: Any) -> Dict[str, Any]:
    return {
        "total_requests": result.total_requests,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "acceptance_rate": result.acceptance_rate,
        "rejected_by_viewpoint": dict(result.rejected_by_viewpoint),
        "final_version": result.final_version,
        "deployed_components": result.deployed_components,
        "unsafe_update_accepted": result.unsafe_update_accepted,
    }


# ---------------------------------------------------------------------------
# Registrations.
# ---------------------------------------------------------------------------

SCENARIOS.register(Scenario(
    name="intrusion",
    summary="Rear-brake security leak handled across layers (E5)",
    run_fn=run_intrusion_scenario,
    parameters=[
        Parameter("policy", "lowest_adequate",
                  "arbitration policy (lowest_adequate | local_only | always_escalate)",
                  coerce=ArbitrationPolicy),
        Parameter("attack_time_s", 5.0, "when the compromise becomes visible"),
        Parameter("duration_s", 40.0, "total simulated driving time"),
        Parameter("seed", 0, "simulation seed", coerce=int),
    ],
    seed_param="seed",
    extract=_extract_intrusion,
    bookkeeping=lambda result, params: {
        "sim_time_s": float(params["duration_s"]),
        "event_count": len(result.events),
    },
))

SCENARIOS.register(Scenario(
    name="thermal",
    summary="Ambient-temperature common-cause fault, four reaction strategies (E6)",
    run_fn=run_thermal_scenario,
    parameters=[
        Parameter("strategy", "cross_layer",
                  "reaction strategy (no_reaction | platform_only | function_only | cross_layer)",
                  coerce=ThermalStrategy),
        Parameter("peak_ambient_c", 80.0, "peak ambient temperature of the ramp"),
        Parameter("duration_s", 600.0, "total simulated time"),
        Parameter("dt_s", 1.0, "thermal simulation step"),
    ],
    extract=_extract_thermal,
    bookkeeping=lambda result, params: {
        "sim_time_s": float(params["duration_s"]),
        "event_count": result.deadline_miss_intervals,
    },
))

SCENARIOS.register(Scenario(
    name="fog_platooning",
    summary="Platoon agreement in dense fog with partially trusted members (E7)",
    run_fn=run_fog_platooning_scenario,
    parameters=[
        Parameter("visibility_m", 60.0, "meteorological visibility of the fog"),
        Parameter("num_members", 4, "total platoon size", coerce=int),
        Parameter("num_malicious", 0, "malicious members during agreement", coerce=int),
        Parameter("ego_fog_capability", 0.1, "ego sensing retained in fog"),
    ],
    extract=_extract_fog_platooning,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.rounds,
    },
))

SCENARIOS.register(Scenario(
    name="weather_routing",
    summary="Alpine pass vs detour under a weather forecast (E8)",
    run_fn=run_weather_routing_scenario,
    parameters=[
        Parameter("severity", 0.5, "forecast severity in [0, 1]"),
        Parameter("risk_aversion", 1.0, "risk weight of the aware planner"),
    ],
    extract=_extract_weather_routing,
    bookkeeping=lambda result, params: {"sim_time_s": None, "event_count": 0},
))

SCENARIOS.register(Scenario(
    name="fleet_update_campaign",
    summary="Staged MCC rollout across a heterogeneous fleet (E10)",
    run_fn=run_fleet_campaign_scenario,
    parameters=[
        Parameter("fleet_size", 50, "number of vehicles in the fleet", coerce=int),
        Parameter("seed", 0, "fleet/feedback generation seed", coerce=int),
        Parameter("heterogeneity", 0.15, "relative spread of the variant perturbations"),
        Parameter("num_variants", 8, "distinct hardware/software builds", coerce=int),
        Parameter("extra_components", 10, "installed apps per variant beyond the core stack",
                  coerce=int),
        Parameter("update_utilization", 0.22, "processor demand of the rolled-out component"),
        Parameter("canary_size", 2, "vehicles in the canary wave (0 disables it)",
                  coerce=int),
        Parameter("wave_fractions", [0.1, 0.3, 1.0],
                  "cumulative release fractions of the post-canary fleet",
                  coerce=lambda value: tuple(float(f) for f in value)),
        Parameter("max_failure_rate", 0.3,
                  "halt threshold on a wave's rejection+deviation rate"),
        Parameter("rollback_on_halt", True, "roll the halting wave back", coerce=bool),
        Parameter("refine_on_deviation", False,
                  "re-integrate observed WCETs of deviating vehicles", coerce=bool),
        Parameter("failure_injection_rate", 0.0,
                  "probability of an injected post-deployment failure per vehicle"),
        Parameter("batch_admission", True,
                  "admit waves through the shared cache + incremental engine",
                  coerce=bool),
        Parameter("deploy", False, "attach an execution-domain RTE per vehicle",
                  coerce=bool),
        Parameter("workers", 1,
                  "sharded-admission pool size (1 = in-process execution)",
                  coerce=int),
        Parameter("cache_path", None,
                  "on-disk analysis-cache snapshot for cross-run warm-starts",
                  coerce=lambda value: None if value is None else str(value)),
        Parameter("batch_kernel", False,
                  "solve cold admission batches with the vectorized lockstep "
                  "busy-window kernel (bit-identical verdicts)",
                  coerce=bool),
        Parameter("shard_planner", "cost",
                  "pooled-wave partition: 'cost' (congruence-co-located, "
                  "cost-balanced chunks) or 'round_robin' (static fallback)"),
        Parameter("steal", True,
                  "completion-driven chunk dispatch (idle workers pull the "
                  "next chunk) instead of a static shard per worker",
                  coerce=bool),
        Parameter("start_method", None,
                  "multiprocessing start method of the shard pool "
                  "(fork | spawn | forkserver | None = platform default)",
                  coerce=lambda value: None if value is None else str(value)),
        Parameter("cache_store", None,
                  "append-only segment-store directory shared by parent and "
                  "workers for mid-wave analysis publication",
                  coerce=lambda value: None if value is None else str(value)),
        Parameter("trace_path", None,
                  "write a structured JSONL event trace of the rollout to "
                  "this path (read-only observation; verdicts unchanged)",
                  coerce=lambda value: None if value is None else str(value)),
        Parameter("trace_deterministic", False,
                  "suppress wall-clock trace fields so equal runs write "
                  "byte-identical traces", coerce=bool),
    ],
    seed_param="seed",
    extract=_extract_fleet_campaign,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.admitted + result.rejected,
    },
))

#: Staging knobs shared by the three adversity campaigns (E14-E16) — the
#: same fleet generation and wave policy surface as E10, minus the engine
#: knobs the adversity scenarios pin (batched admission is always on).
def _adversity_staging_parameters(update_utilization: float,
                                  max_failure_rate: float) -> List[Parameter]:
    return [
        Parameter("fleet_size", 40, "number of vehicles in the fleet", coerce=int),
        Parameter("seed", 0, "fleet/feedback/adversity generation seed", coerce=int),
        Parameter("heterogeneity", 0.1, "relative spread of the variant perturbations"),
        Parameter("num_variants", 6, "distinct hardware/software builds", coerce=int),
        Parameter("extra_components", 6,
                  "installed apps per variant beyond the core stack", coerce=int),
        Parameter("update_utilization", update_utilization,
                  "processor demand of the rolled-out component"),
        Parameter("failure_injection_rate", 0.0,
                  "probability of a genuine post-deployment failure per vehicle"),
        Parameter("canary_size", 2, "vehicles in the canary wave (0 disables it)",
                  coerce=int),
        Parameter("wave_fractions", [0.2, 0.5, 1.0],
                  "cumulative release fractions of the post-canary fleet",
                  coerce=lambda value: tuple(float(f) for f in value)),
        Parameter("max_failure_rate", max_failure_rate,
                  "halt threshold on a wave's effective failure rate"),
        Parameter("workers", 1,
                  "sharded-admission pool size (1 = in-process execution)",
                  coerce=int),
    ]


SCENARIOS.register(Scenario(
    name="intrusion_campaign",
    summary="Fleet campaign under compromised-vehicle feedback, IDS-graded (E14)",
    run_fn=run_intrusion_campaign_scenario,
    parameters=_adversity_staging_parameters(0.18, 0.2) + [
        Parameter("compromise_rate", 0.25,
                  "fraction of the fleet forging its monitor reports"),
        Parameter("mode", "over_report",
                  "'over_report' (forge deviations to force a halt) or "
                  "'under_report' (hide failures below the tolerance band)"),
        Parameter("reports_per_wave", 6,
                  "report copies a compromised over-reporter spams per wave",
                  coerce=int),
        Parameter("suspicion_threshold", 3,
                  "IDS violations before a sender is suspected", coerce=int),
        Parameter("discount_suspected", True,
                  "exclude suspected senders' reports from the halt decision",
                  coerce=bool),
    ],
    seed_param="seed",
    extract=_extract_intrusion_campaign,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.admitted + result.rejected,
    },
))

SCENARIOS.register(Scenario(
    name="lossy_ota_campaign",
    summary="Fleet campaign over a lossy OTA network with retry/straggler waves (E15)",
    run_fn=run_lossy_ota_campaign_scenario,
    parameters=_adversity_staging_parameters(0.18, 0.3) + [
        Parameter("drop_rate", 0.3,
                  "per-attempt probability that a delivery is dropped"),
        Parameter("max_retries", 3,
                  "retries per vehicle before it is abandoned", coerce=int),
    ],
    seed_param="seed",
    extract=_extract_lossy_ota_campaign,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.delivery_attempts,
    },
))

SCENARIOS.register(Scenario(
    name="thermal_campaign",
    summary="Fleet campaign through a heat wave: DVFS-inflated WCET admission (E16)",
    run_fn=run_thermal_campaign_scenario,
    parameters=_adversity_staging_parameters(0.3, 1.0) + [
        Parameter("base_ambient_c", 35.0, "ambient temperature outside the heat wave"),
        Parameter("peak_ambient_c", 90.0, "ambient temperature at the heat-wave peak"),
        Parameter("peak_wave", 2, "wave index of the heat-wave peak", coerce=int),
        Parameter("wave_dt_s", 240.0, "thermal-model seconds integrated per wave"),
        Parameter("thermal_utilization", 0.9,
                  "processor load driving the thermal model"),
    ],
    seed_param="seed",
    extract=_extract_thermal_campaign,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.admitted + result.rejected,
    },
))

SCENARIOS.register(Scenario(
    name="distributed_e2e_update",
    summary="Cross-ECU update admission with end-to-end deadlines (E11)",
    run_fn=run_distributed_e2e_scenario,
    parameters=[
        Parameter("num_updates", 12, "length of the update campaign", coerce=int),
        Parameter("seed", 0, "campaign/background-traffic generation seed", coerce=int),
        Parameter("update_utilization", 0.06, "mean processor demand per added app"),
        Parameter("risky_fraction", 0.25,
                  "fraction of updates that inflate the control WCET"),
        Parameter("bitrate_bps", 500_000.0, "CAN segment bitrate"),
        Parameter("num_background_frames", 4,
                  "unmanaged frame streams sharing the bus", coerce=int),
        Parameter("chain_deadline_s", 0.035,
                  "end-to-end deadline of the sensor->control->actuator chain"),
        Parameter("use_cache", True,
                  "share one AnalysisCache across the campaign's analyses",
                  coerce=bool),
    ],
    seed_param="seed",
    extract=_extract_distributed_e2e,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.total_requests,
    },
))

SCENARIOS.register(Scenario(
    name="infield_update",
    summary="MCC in-field update campaign with risky change requests (E1)",
    run_fn=run_infield_update_scenario,
    parameters=[
        Parameter("num_requests", 30, "length of the update campaign", coerce=int),
        Parameter("seed", 0, "campaign generation seed", coerce=int),
        Parameter("risky_fraction", 0.3, "fraction of deliberately problematic updates"),
        Parameter("num_processors", 3, "processors of the target platform", coerce=int),
        Parameter("mapping_strategy", "first_fit",
                  "component placement heuristic (first_fit | worst_fit | best_fit)",
                  coerce=MappingStrategy),
        Parameter("deploy", True, "deploy accepted configurations to the RTE"),
        Parameter("batch_kernel", False,
                  "run the campaign on a fresh analysis cache whose cold "
                  "batches use the vectorized lockstep busy-window kernel",
                  coerce=bool),
    ],
    seed_param="seed",
    extract=_extract_infield_update,
    bookkeeping=lambda result, params: {
        "sim_time_s": None,
        "event_count": result.total_requests,
    },
))
