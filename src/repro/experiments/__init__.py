"""Experiment orchestration over the paper's worked scenarios.

The scenarios in :mod:`repro.scenarios` are one-shot drivers; this package
adds the evaluation workflow the paper's Section V implies but every
hand-rolled script re-invents:

* :mod:`repro.experiments.registry` — the five scenarios behind one uniform
  interface (typed knobs, JSON-level parameter coercion, flat metric
  records).
* :mod:`repro.experiments.spec` — declarative parameter sweeps
  (:class:`ExperimentSpec`: grid x seeds -> concrete runs) that round-trip
  through JSON.
* :mod:`repro.experiments.runner` — serial or process-parallel execution
  with deterministic per-run seeding; parallel runs produce byte-identical
  metric records to serial runs.
* :mod:`repro.experiments.aggregate` — mean/p95 summaries, text tables and
  baseline diffing.
* :mod:`repro.experiments.bench_history` — tabulation of the benchmark
  suite's machine-readable ``BENCH_*.json`` perf records.
* :mod:`repro.experiments.cli` — ``python -m repro.experiments
  run | list | compare | cache-bench | bench-history``.

Repeated CPA invocations inside acceptance sweeps are memoized by
:class:`repro.analysis.cache.AnalysisCache` (see ``cache-bench``).
"""

from repro.experiments.registry import (
    Parameter,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    SCENARIOS,
    run_scenario,
    run_scenario_raw,
)
from repro.experiments.spec import ExperimentSpec, RunSpec, SpecError, builtin_specs
from repro.experiments.runner import ExperimentResult, Runner, RunRecord, execute_run
from repro.experiments.aggregate import (
    diff_records,
    format_table,
    percentile,
    summarize,
    summarize_result,
)

__all__ = [
    "Parameter",
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "SCENARIOS",
    "run_scenario",
    "run_scenario_raw",
    "ExperimentSpec",
    "RunSpec",
    "SpecError",
    "builtin_specs",
    "ExperimentResult",
    "Runner",
    "RunRecord",
    "execute_run",
    "diff_records",
    "format_table",
    "percentile",
    "summarize",
    "summarize_result",
]
