"""Cross-layer self-awareness — the paper's primary contribution (Section V).

The core package combines the per-layer building blocks (platform
monitoring, communication/security monitoring, safety mechanisms, ability
graphs, driving objectives) into a *coherent vehicle self-awareness*:

* :mod:`repro.core.layers` — the layer model (platform, communication,
  safety, ability, objective) and the handler interface each layer exposes.
* :mod:`repro.core.self_model` — the consistent self-representation
  aggregating metrics and states from all layers.
* :mod:`repro.core.countermeasures` — the catalogue of reactions each layer
  can offer.
* :mod:`repro.core.arbitration` — the cross-layer coordinator that routes a
  detected anomaly to the most appropriate layer, escalates when a layer
  cannot handle it, and guarantees that problems are not forwarded
  ad infinitum.
* :mod:`repro.core.awareness` — the observe–decide–act self-awareness loop.
* :mod:`repro.core.vehicle_system` — a facade wiring a complete self-aware
  vehicle out of the substrates (used by the examples and scenarios).
"""

from repro.core.layers import Layer, LayerHandler, LAYER_ORDER
from repro.core.self_model import SelfModel, SelfModelSnapshot
from repro.core.countermeasures import Countermeasure, CountermeasureCatalog, Resolution
from repro.core.arbitration import ArbitrationPolicy, CrossLayerCoordinator, EscalationRecord
from repro.core.awareness import SelfAwarenessLoop, AwarenessCycleResult
from repro.core.vehicle_system import SelfAwareVehicle, VehicleSystemConfig

__all__ = [
    "Layer",
    "LayerHandler",
    "LAYER_ORDER",
    "SelfModel",
    "SelfModelSnapshot",
    "Countermeasure",
    "CountermeasureCatalog",
    "Resolution",
    "ArbitrationPolicy",
    "CrossLayerCoordinator",
    "EscalationRecord",
    "SelfAwarenessLoop",
    "AwarenessCycleResult",
    "SelfAwareVehicle",
    "VehicleSystemConfig",
]
