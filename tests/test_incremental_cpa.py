"""Property-style equivalence tests for the incremental CPA engine.

The engine's contract is exactness: priority-delta pruning, warm-started
fixpoints and divergence carry-over must produce **bit-identical**
``wcrt``/``schedulable``/``converged`` verdicts to a from-scratch
:class:`~repro.analysis.cpa.ResponseTimeAnalysis`, across randomized
UUniFast task sets and arbitrary single-task mutations.  These tests sweep
well over 200 randomized task sets (fresh sets plus mutation chains) and
fail on the first deviating bit.
"""

from __future__ import annotations

import pytest

from harness import assert_equivalent, make_taskset, rebuild
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG


class TestFreshTaskSetEquivalence:
    """A cold engine on unrelated task sets reproduces the full analysis."""

    @pytest.mark.parametrize("utilization", [0.5, 0.75, 0.9, 1.05])
    def test_randomized_task_sets(self, utilization):
        engine = IncrementalResponseTimeAnalysis()
        for seed in range(25):
            taskset = make_taskset(seed, 8, utilization)
            assert_equivalent(engine.analyse(taskset),
                              ResponseTimeAnalysis(taskset).analyse(),
                              f"seed={seed} u={utilization}")

    def test_speed_factors(self):
        engine = IncrementalResponseTimeAnalysis()
        taskset = make_taskset(7, 10, 0.7)
        for speed in (1.0, 0.8, 0.5, 0.25):
            assert_equivalent(
                engine.analyse(taskset, speed_factor=speed),
                ResponseTimeAnalysis(taskset, speed_factor=speed).analyse(),
                f"speed={speed}")

    def test_event_model_overrides(self):
        engine = IncrementalResponseTimeAnalysis()
        taskset = make_taskset(11, 6, 0.65)
        models = {"t0": EventModel(period=taskset.get("t0").period, jitter=0.002)}
        assert_equivalent(
            engine.analyse(taskset, event_models=models),
            ResponseTimeAnalysis(taskset, event_models=models).analyse(),
            "event models")
        # And again without overrides: the override run must not poison it.
        assert_equivalent(engine.analyse(taskset),
                          ResponseTimeAnalysis(taskset).analyse(),
                          "after event models")


class TestMutationChainEquivalence:
    """Random single-task mutations re-use aggressively yet stay exact."""

    def _mutate(self, rng: SeededRNG, tasks):
        """One random single-task mutation (grow/shrink/add/remove/rewire)."""
        kind = rng.choice(["inflate", "deflate", "period", "add", "remove"])
        index = rng.integer(0, len(tasks) - 1)
        victim = tasks[index]
        if kind == "add" or len(tasks) <= 2:
            period = rng.choice([0.01, 0.05, 0.1])
            new = Task(f"m{rng.integer(0, 10**6)}", period=period,
                       wcet=period * rng.uniform(0.02, 0.3),
                       priority=max(t.priority for t in tasks) + 1)
            return tasks + [new]
        if kind == "remove":
            return tasks[:index] + tasks[index + 1:]
        if kind == "inflate":
            changed = victim.scaled(rng.uniform(1.01, 1.6))
        elif kind == "deflate":
            changed = victim.scaled(rng.uniform(0.5, 0.99))
        else:  # period change (also reshuffles relative priorities implicitly)
            changed = Task(victim.name, period=victim.period * rng.uniform(0.7, 1.4),
                           wcet=victim.wcet, priority=victim.priority)
        return [changed if i == index else t for i, t in enumerate(tasks)]

    def test_mutation_chains_bit_identical(self):
        """>= 200 task sets: 20 chains x (1 base + 10 mutation steps)."""
        engine = IncrementalResponseTimeAnalysis()
        checked = 0
        for seed in range(20):
            utilization = (0.6, 0.8, 0.95)[seed % 3]
            tasks = make_taskset(seed, 9, utilization).tasks()
            rng = SeededRNG(seed + 4000)
            for step in range(11):
                taskset = rebuild(tasks)
                assert_equivalent(engine.analyse(taskset),
                                  ResponseTimeAnalysis(taskset).analyse(),
                                  f"seed={seed} step={step}")
                checked += 1
                tasks = self._mutate(rng, tasks)
        assert checked >= 200
        # The chains must actually exercise the delta machinery.
        assert engine.delta_analyses > 0
        assert engine.tasks_reused > 0
        assert engine.tasks_warm_started > 0

    def test_wcet_inflation_grid(self):
        """The archetypal acceptance sweep: one task's WCET walks a grid."""
        engine = IncrementalResponseTimeAnalysis()
        base = make_taskset(3, 10, 0.8).tasks()
        victim = base[len(base) // 2].name
        for factor in (1.0, 1.1, 1.25, 1.5, 2.0, 4.0):
            tasks = [t.scaled(factor) if t.name == victim else t for t in base]
            taskset = rebuild(tasks)
            assert_equivalent(engine.analyse(taskset),
                              ResponseTimeAnalysis(taskset).analyse(),
                              f"factor={factor}")
        assert engine.tasks_reused > 0

    def test_add_chain_reanalyses_only_new_tasks(self):
        """Adding a lowest-priority task must not re-iterate existing ones."""
        engine = IncrementalResponseTimeAnalysis()
        tasks = make_taskset(5, 8, 0.5).tasks()
        engine.analyse(rebuild(tasks))
        analysed_before = engine.tasks_analysed
        new = Task("added", period=0.2, wcet=0.001,
                   priority=max(t.priority for t in tasks) + 1)
        results = engine.analyse(rebuild(tasks + [new]))
        assert engine.tasks_analysed == analysed_before + 1
        assert engine.tasks_reused == len(tasks)
        full = ResponseTimeAnalysis(rebuild(tasks + [new])).analyse()
        assert_equivalent(results, full, "add chain")


class TestBatchedApi:
    def test_analyze_many_matches_per_set_analysis(self):
        grids = []
        base = make_taskset(9, 8, 0.7).tasks()
        victim = base[2].name
        for factor in (1.0, 1.2, 1.4, 1.8):
            grids.append(rebuild([t.scaled(factor) if t.name == victim else t
                                  for t in base]))
        engine = IncrementalResponseTimeAnalysis()
        batched = engine.analyze_many(grids)
        assert len(batched) == len(grids)
        for taskset, results in zip(grids, batched):
            assert_equivalent(results, ResponseTimeAnalysis(taskset).analyse(),
                              "analyze_many")

    def test_empty_batch_returns_empty_list(self):
        """Edge case pinned for the fleet campaign: an empty wave."""
        engine = IncrementalResponseTimeAnalysis()
        assert engine.analyze_many([]) == []
        assert engine.full_analyses == engine.delta_analyses == 0

    def test_single_element_batch(self):
        """Edge case: a single-vehicle fleet is a one-element batch."""
        engine = IncrementalResponseTimeAnalysis()
        taskset = make_taskset(4, 6, 0.7)
        batched = engine.analyze_many([taskset])
        assert len(batched) == 1
        assert_equivalent(batched[0], ResponseTimeAnalysis(taskset).analyse(),
                          "single-element batch")

    def test_empty_taskset_analyses_to_empty_results(self):
        engine = IncrementalResponseTimeAnalysis()
        assert engine.analyse(TaskSet()) == {}
        assert engine.schedulable(TaskSet())  # vacuously schedulable

    def test_all_unschedulable_batch(self):
        """Edge case: an all-rejected wave — every set over-utilized —
        stays bit-identical to the full analysis."""
        engine = IncrementalResponseTimeAnalysis()
        grids = [make_taskset(seed, 6, 1.4) for seed in range(4)]
        for taskset, results in zip(grids, engine.analyze_many(grids)):
            full = ResponseTimeAnalysis(taskset).analyse()
            assert_equivalent(results, full, "all-unschedulable batch")
            assert not all(r.schedulable for r in results.values())

    def test_alias_and_schedulable(self):
        engine = IncrementalResponseTimeAnalysis()
        taskset = make_taskset(2, 6, 0.6)
        assert engine.analyse_many([taskset])[0].keys() == {t.name for t in taskset}
        assert engine.schedulable(taskset) == ResponseTimeAnalysis(taskset).schedulable()
        overloaded = make_taskset(2, 6, 1.3)
        assert engine.schedulable(overloaded) == \
            ResponseTimeAnalysis(overloaded).schedulable()


class TestEngineHousekeeping:
    def test_history_is_bounded(self):
        engine = IncrementalResponseTimeAnalysis(history_limit=4)
        for seed in range(10):
            engine.analyse(make_taskset(seed, 5, 0.5))
        assert len(engine._history) <= 4

    def test_clear_resets_state(self):
        engine = IncrementalResponseTimeAnalysis()
        engine.analyse(make_taskset(0, 5, 0.5))
        engine.clear()
        assert engine.tasks_analysed == 0
        assert engine.reuse_rate == 0.0
        assert len(engine._history) == 0

    def test_rejects_nonpositive_history(self):
        with pytest.raises(ValueError):
            IncrementalResponseTimeAnalysis(history_limit=0)

    def test_interference_memo_is_exact(self):
        """Memoized interference values cannot change results across sets
        that share priority-level prefixes."""
        engine = IncrementalResponseTimeAnalysis()
        a = make_taskset(13, 8, 0.7)
        tasks = a.tasks()
        b = rebuild(tasks[:-1] + [tasks[-1].scaled(1.3)])
        for taskset in (a, b, a):  # revisit a after b populated the memo
            assert_equivalent(engine.analyse(taskset),
                              ResponseTimeAnalysis(taskset).analyse(),
                              "memo sharing")
