"""Viewpoint acceptance tests run by the MCC.

"Viewpoint-specific analyses can be implemented as separate entities in the
MCC ... This process is assisted by formal analyses that a) can guide the
(mapping) decisions and b) work as acceptance tests." (Section II.A)

Each acceptance test wraps one of the analyses from :mod:`repro.analysis`
behind a uniform interface so the integration process can run them all and
collect a per-viewpoint verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.analysis.cache import AnalysisCache
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.analysis.safety import SafetyAnalysis
from repro.analysis.threat import ThreatModel
from repro.contracts.model import Contract
from repro.platform.resources import Platform
from repro.platform.tasks import Task, TaskSet


@dataclass
class AcceptanceResult:
    """The verdict of one acceptance test."""

    viewpoint: str
    passed: bool
    findings: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.passed


class AcceptanceTest(Protocol):
    """Interface of an MCC acceptance test."""

    viewpoint: str

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate a candidate configuration."""
        ...  # pragma: no cover - protocol


def tasksets_from_mapping(contracts: List[Contract], mapping: Dict[str, str],
                          priorities: Dict[str, int]) -> Dict[str, TaskSet]:
    """Build per-processor task sets from a candidate configuration.

    This is exactly the derivation the timing acceptance test performs, so
    callers that want to *prefetch* analyses (e.g. batched fleet-wave
    admission) can compute the same task sets — and therefore the same cache
    fingerprints — ahead of the acceptance run.
    """
    tasksets: Dict[str, TaskSet] = {}
    for contract in contracts:
        timing = contract.timing
        if timing is None:
            continue
        processor = mapping.get(contract.component)
        if processor is None:
            continue
        task_name = f"{contract.component}.task"
        task = Task.from_requirement(task_name, timing,
                                     priority=priorities.get(task_name, 0),
                                     component=contract.component,
                                     criticality=contract.asil.name)
        tasksets.setdefault(processor, TaskSet()).add(task)
    return tasksets


class TimingAcceptanceTest:
    """Worst-case response-time analysis of every processor.

    When given an :class:`~repro.analysis.cache.AnalysisCache`, the per-
    processor busy-window analyses are memoized on the task-set fingerprint:
    in a change campaign only the processor whose task set actually changed
    is re-analysed, the others are answered from the cache.  Without a
    cache, a private :class:`IncrementalResponseTimeAnalysis` engine still
    carries busy-window state across change requests, so the changed
    processor itself is only re-analysed below the priority of its delta.
    """

    viewpoint = "timing"

    def __init__(self, speed_factor: float = 1.0,
                 cache: Optional[AnalysisCache] = None) -> None:
        self.speed_factor = speed_factor
        self.cache = cache
        self._engine = IncrementalResponseTimeAnalysis() if cache is None else None

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the timing viewpoint of a candidate configuration."""
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        tasksets = tasksets_from_mapping(contracts, mapping, priorities)
        for processor_name, taskset in sorted(tasksets.items()):
            analysis = ResponseTimeAnalysis(taskset, speed_factor=self.speed_factor)
            metrics[f"{processor_name}.utilization"] = analysis.utilization()
            if self.cache is not None:
                results = self.cache.analyse(taskset, speed_factor=self.speed_factor)
            else:
                results = self._engine.analyse(taskset, speed_factor=self.speed_factor)
            for task_name, result in results.items():
                if result.wcrt is not None:
                    metrics[f"{task_name}.wcrt"] = result.wcrt
                if not result.schedulable:
                    wcrt = f"{result.wcrt:.4f}s" if result.wcrt is not None else "unbounded"
                    findings.append(
                        f"{task_name} on {processor_name}: WCRT {wcrt} exceeds "
                        f"deadline {result.task.deadline:.4f}s")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


class SafetyAcceptanceTest:
    """Safety viewpoint: ASIL consistency, redundancy and mapping independence."""

    viewpoint = "safety"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the safety viewpoint of a candidate configuration."""
        analysis = SafetyAnalysis(contracts, mapping)
        findings = analysis.analyse()
        blocking = [str(f) for f in findings if f.blocking]
        informational = [str(f) for f in findings if not f.blocking]
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not blocking,
                                findings=blocking + informational,
                                metrics={"blocking_findings": float(len(blocking)),
                                         "informational_findings": float(len(informational))})


class SecurityAcceptanceTest:
    """Security viewpoint: threat-model analysis over the service topology."""

    viewpoint = "security"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the security viewpoint of a candidate configuration."""
        model = ThreatModel()
        model.add_components(contracts)
        providers: Dict[str, List[str]] = {}
        for contract in contracts:
            for provision in contract.provides:
                providers.setdefault(provision.service, []).append(contract.component)
        for contract in contracts:
            for requirement in contract.requires:
                for provider in providers.get(requirement.service, []):
                    model.add_session(contract.component, provider)
        assessment = model.analyse()
        findings = [f"component {name} is under-protected for its exposure"
                    for name in assessment.under_protected]
        for path in assessment.attack_paths[:10]:
            findings.append(
                f"attack path {' -> '.join(path.path)} (exposure {path.exposure:.2f})")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=assessment.acceptable,
                                findings=findings,
                                metrics={"attack_paths": float(len(assessment.attack_paths)),
                                         "under_protected": float(len(assessment.under_protected))})


class ResourceAcceptanceTest:
    """Resource viewpoint: memory and network bandwidth budgets fit."""

    viewpoint = "resources"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the resource viewpoint of a candidate configuration."""
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        memory_demand: Dict[str, float] = {}
        can_demand = 0.0
        for contract in contracts:
            resources = contract.resources
            if resources is None:
                continue
            processor = mapping.get(contract.component)
            if processor is not None:
                memory_demand[processor] = memory_demand.get(processor, 0.0) + resources.memory_kib
            can_demand += resources.can_bandwidth_bps
        for processor_name, demand in sorted(memory_demand.items()):
            available = platform.processor(processor_name).memory_kib
            metrics[f"{processor_name}.memory_demand_kib"] = demand
            if demand > available:
                findings.append(f"{processor_name}: memory demand {demand:.0f} KiB exceeds "
                                f"{available:.0f} KiB")
        total_can = sum(n.bandwidth_bps for n in platform.networks() if n.kind == "can")
        metrics["can_demand_bps"] = can_demand
        if total_can and can_demand > 0.7 * total_can:
            findings.append(
                f"CAN bandwidth demand {can_demand:.0f} bps exceeds 70% of capacity "
                f"{total_can:.0f} bps")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


def default_acceptance_tests(cache: Optional[AnalysisCache] = None) -> List[AcceptanceTest]:
    """The standard battery of acceptance tests the MCC runs per change.

    Pass an :class:`AnalysisCache` to memoize the timing viewpoint across
    change requests — repeated acceptance sweeps (e.g. re-validating the
    same campaigns, or ``python -m repro.experiments cache-bench``) share
    one cache this way.
    """
    return [TimingAcceptanceTest(cache=cache), SafetyAcceptanceTest(),
            SecurityAcceptanceTest(), ResourceAcceptanceTest()]
