"""Run-time environment (RTE) of the execution domain.

The RTE hosts the application components on top of a microkernel-like kernel
abstraction: components only interact through explicitly granted service
sessions (capabilities), and the MCC deploys configurations atomically.  The
RTE is also the attachment point for the application/platform monitors
(Section II.B, Fig. 1) and the enforcement hooks used by the security layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.contracts.model import Contract
from repro.platform.components import (
    Component,
    ComponentError,
    ComponentRegistry,
    ServiceSession,
)
from repro.platform.resources import Platform, ProcessingResource, ResourceError
from repro.platform.tasks import Task
from repro.sim.trace import TraceRecorder


class CapabilityError(PermissionError):
    """Raised when a component uses a service without an active session."""


@dataclass
class RteConfiguration:
    """A deployable system configuration produced by the MCC.

    Attributes
    ----------
    version:
        Monotonically increasing configuration version.
    contracts:
        The contracts of all components in the configuration.
    mapping:
        Component name -> processor name.
    priorities:
        Task name -> fixed priority.
    sessions:
        Explicit client/provider/service triples to wire.
    """

    version: int
    contracts: List[Contract] = field(default_factory=list)
    mapping: Dict[str, str] = field(default_factory=dict)
    priorities: Dict[str, int] = field(default_factory=dict)
    sessions: List[Dict[str, str]] = field(default_factory=list)

    def component_names(self) -> List[str]:
        return [contract.component for contract in self.contracts]


class RuntimeEnvironment:
    """The execution-domain runtime hosting components on a platform."""

    def __init__(self, platform: Platform, recorder: Optional[TraceRecorder] = None) -> None:
        self.platform = platform
        self.registry = ComponentRegistry()
        self.recorder = recorder or TraceRecorder()
        self.configuration: Optional[RteConfiguration] = None
        self._deployed_tasks: Dict[str, str] = {}  # task name -> processor name

    # -- deployment -----------------------------------------------------------

    def deploy(self, configuration: RteConfiguration) -> None:
        """Apply a configuration: instantiate components, map their tasks to
        processors, and wire the service sessions.

        Deployment is all-or-nothing at the model level: the MCC only hands
        over configurations that passed its acceptance tests, so a failure
        here indicates an inconsistency between model and execution domain
        and raises immediately.
        """
        self._undeploy_all()
        self.configuration = configuration
        for contract in configuration.contracts:
            component = Component(contract)
            self.registry.add(component)
            processor_name = configuration.mapping.get(contract.component)
            if processor_name is None:
                raise ComponentError(
                    f"configuration v{configuration.version} has no mapping for "
                    f"component {contract.component!r}")
            processor = self.platform.processor(processor_name)
            self._deploy_tasks(component, processor, configuration)
            resources = contract.resources
            if resources is not None and resources.memory_kib > 0:
                processor.allocate_memory(contract.component, resources.memory_kib)
            component.start()
        self._wire_sessions(configuration)
        self.recorder.record(0.0, "rte.deploy", "rte",
                             version=configuration.version,
                             components=len(configuration.contracts))

    def _deploy_tasks(self, component: Component, processor: ProcessingResource,
                      configuration: RteConfiguration) -> None:
        timing = component.contract.timing
        if timing is None:
            return
        task_name = f"{component.name}.task"
        priority = configuration.priorities.get(task_name, configuration.priorities.get(component.name, 0))
        task = Task.from_requirement(task_name, timing, priority=priority,
                                     component=component.name,
                                     criticality=component.contract.asil.name)
        processor.host(task)
        self._deployed_tasks[task_name] = processor.name

    def _wire_sessions(self, configuration: RteConfiguration) -> None:
        if configuration.sessions:
            for entry in configuration.sessions:
                self.registry.connect(entry["client"], entry["service"],
                                      entry.get("provider"))
        else:
            self.registry.autowire()

    def _undeploy_all(self) -> None:
        for component in list(self.registry.components()):
            self._remove_component(component.name)
        self.configuration = None

    def _remove_component(self, name: str) -> None:
        component = self.registry.get(name)
        task_name = f"{name}.task"
        processor_name = self._deployed_tasks.pop(task_name, None)
        if processor_name is not None:
            processor = self.platform.processor(processor_name)
            if task_name in processor.taskset:
                processor.evict(task_name)
            processor.release_memory(name)
        self.registry.remove(name)
        _ = component  # component fully stopped by registry.remove

    # -- runtime operations ------------------------------------------------------

    def component(self, name: str) -> Component:
        return self.registry.get(name)

    def components(self) -> List[Component]:
        return self.registry.components()

    def processor_of(self, component_name: str) -> Optional[ProcessingResource]:
        task_name = f"{component_name}.task"
        processor_name = self._deployed_tasks.get(task_name)
        return self.platform.processor(processor_name) if processor_name else None

    def use_service(self, client: str, service: str, time: float = 0.0) -> ServiceSession:
        """A client invokes a service: requires an active session (capability).

        Raises :class:`CapabilityError` if no active session exists — this is
        the least-privilege enforcement point the access-control layer relies
        on.
        """
        client_component = self.registry.get(client)
        if not client_component.running:
            raise CapabilityError(f"component {client} is not running")
        for session in client_component.sessions:
            if session.client == client and session.service == service and session.active:
                provider = self.registry.get(session.provider)
                if not provider.running:
                    raise CapabilityError(
                        f"provider {session.provider} of service {service!r} is not running")
                self.recorder.record(time, "rte.service_call", client,
                                     service=service, provider=session.provider)
                return session
        raise CapabilityError(f"component {client} holds no capability for service {service!r}")

    def quarantine(self, component_name: str, time: float = 0.0) -> int:
        """Quarantine a component (security containment): stop it, revoke all
        its sessions.  Returns the number of revoked sessions."""
        component = self.registry.get(component_name)
        revoked = self.registry.revoke_sessions(component_name)
        component.quarantine()
        self.recorder.record(time, "rte.quarantine", component_name, revoked_sessions=revoked)
        return revoked

    def restart(self, component_name: str, time: float = 0.0) -> None:
        """Restart a stopped component (safety-layer recovery mechanism)."""
        component = self.registry.get(component_name)
        if component.state.value == "quarantined":
            raise ComponentError(
                f"component {component_name} is quarantined; re-integration via the MCC required")
        component.health = 1.0
        component.start()
        self.recorder.record(time, "rte.restart", component_name)
        # Re-wire sessions that were revoked when the component stopped.
        for requirement in component.contract.requires:
            has_active = any(s.service == requirement.service and s.active
                             for s in component.sessions if s.client == component.name)
            if not has_active:
                providers = self.registry.providers_of(requirement.service)
                if len(providers) == 1:
                    self.registry.connect(component.name, requirement.service, providers[0].name)

    def snapshot(self) -> Dict[str, str]:
        """Component name -> lifecycle state (used by the self-model)."""
        return {component.name: component.state.value for component in self.registry}
