"""Worst-case response-time analysis for CAN (non-preemptive fixed priority).

The CPU-side busy-window analysis in :mod:`repro.analysis.cpa` bounds what
happens *on* an ECU; in a distributed update scenario the MCC also has to
bound what happens *between* ECUs.  This module provides the classical
response-time analysis for Controller Area Network (Tindell/Davis): frames
are non-preemptive jobs whose priority is the arbitration identifier, whose
"execution time" is the bit-accurate transmission time derived from
:func:`repro.can.frame.frame_bit_length` and the bus bitrate, and whose
blocking term is the longest lower-priority frame that may already occupy
the bus when a frame is queued.

The analysis deliberately produces the same
:class:`~repro.analysis.cpa.ResponseTimeResult` shape as the CPU analysis
(the ``task`` field carries a synthetic :class:`~repro.platform.tasks.Task`
whose WCET is the transmission time), so the system-level fixpoint in
:mod:`repro.analysis.compositional.system` can treat processors and buses
uniformly.

The bound is validated against the event-driven bus simulation
(:mod:`repro.can.bus`) by the differential property test in
``tests/test_can_rta_differential.py``: simulated frame latencies never
exceed the analytic WCRT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.cpa import _EPS, EventModel, ResponseTimeResult
from repro.can.frame import (MAX_EXTENDED_ID, MAX_PAYLOAD_BYTES,
                             MAX_STANDARD_ID, frame_bit_length)
from repro.platform.tasks import Task


class CanAnalysisError(ValueError):
    """Raised for invalid frame sets or analysis parameters."""


@dataclass(frozen=True)
class FrameSpec:
    """The analysable parameters of one periodic CAN frame stream.

    Attributes
    ----------
    name:
        Unique stream name (used as the result key and in event links).
    can_id:
        Arbitration identifier; lower wins, exactly as on the bus.
    period:
        Activation period (sporadic: minimum inter-arrival) in seconds.
    dlc:
        Payload length in bytes (0-8); the worst-case stuffed bit length
        follows from it via :func:`~repro.can.frame.frame_bit_length`.
    extended:
        29-bit identifier if True.
    jitter:
        Queuing jitter bound of the stream at the sender, in seconds.
    deadline:
        Relative deadline of the frame's delivery; defaults to the period.
    sender:
        Optional name of the sending component/ECU (bookkeeping only).
    """

    name: str
    can_id: int
    period: float
    dlc: int = 8
    extended: bool = False
    jitter: float = 0.0
    deadline: Optional[float] = None
    sender: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CanAnalysisError("frame stream needs a name")
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise CanAnalysisError(
                f"frame {self.name}: CAN id {self.can_id:#x} out of range")
        if not 0 <= self.dlc <= MAX_PAYLOAD_BYTES:
            raise CanAnalysisError(
                f"frame {self.name}: invalid DLC {self.dlc} "
                f"(classical CAN carries 0-{MAX_PAYLOAD_BYTES} bytes)")
        if self.period <= 0:
            raise CanAnalysisError(f"frame {self.name}: period must be positive")
        if self.jitter < 0:
            raise CanAnalysisError(f"frame {self.name}: jitter must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise CanAnalysisError(f"frame {self.name}: deadline must be positive")

    @property
    def bit_length(self) -> int:
        """Worst-case stuffed frame length in bits (including IFS)."""
        return frame_bit_length(self.dlc, extended=self.extended)

    def transmission_time(self, bitrate_bps: float) -> float:
        """Time the frame occupies the bus at the given bitrate."""
        return self.bit_length / bitrate_bps

    def arbitration_key(self) -> Tuple[int, int]:
        """Bus arbitration order (mirrors :meth:`CanFrame.arbitration_key`)."""
        return (self.can_id, 1 if self.extended else 0)


class CanResponseTimeAnalysis:
    """Non-preemptive fixed-priority WCRT analysis of one CAN segment.

    Parameters
    ----------
    frames:
        Frame streams sharing the bus.  Arbitration keys must be unique
        (identical identifiers from two nodes are a protocol violation).
    bitrate_bps:
        Nominal bus bitrate.
    event_models:
        Optional per-stream :class:`EventModel` overrides — this is how the
        system-level fixpoint injects propagated activation jitter.
    max_iterations:
        Safety bound on each queueing-delay fixpoint.
    memo:
        Optional mapping shared across analyses; whole-segment results are
        memoized on the exact parameter tuple (see :meth:`analysis_key`), so
        re-analysing an unchanged bus during an update sweep or a system
        fixpoint is a dictionary lookup.
    """

    def __init__(self, frames: List[FrameSpec], bitrate_bps: float,
                 event_models: Optional[Mapping[str, EventModel]] = None,
                 max_iterations: int = 10_000,
                 memo: Optional[Dict] = None) -> None:
        if bitrate_bps <= 0:
            raise CanAnalysisError("bitrate must be positive")
        seen_names = set()
        seen_keys = set()
        for frame in frames:
            if frame.name in seen_names:
                raise CanAnalysisError(f"duplicate frame stream name {frame.name!r}")
            key = frame.arbitration_key()
            if key in seen_keys:
                raise CanAnalysisError(
                    f"duplicate arbitration id {frame.can_id:#x}: identical "
                    "identifiers from two streams are a protocol violation")
            seen_names.add(frame.name)
            seen_keys.add(key)
        #: Streams in arbitration order (highest priority first).
        self.frames = sorted(frames, key=FrameSpec.arbitration_key)
        self.bitrate_bps = bitrate_bps
        self.max_iterations = max_iterations
        self._event_models = dict(event_models or {})
        self._memo = memo

    # -- bookkeeping -------------------------------------------------------

    def _model_params(self, frame: FrameSpec) -> Tuple[float, float]:
        override = self._event_models.get(frame.name)
        if override is not None:
            return override.period, override.jitter
        return frame.period, frame.jitter

    def transmission_time(self, name: str) -> float:
        """Transmission time of the named stream's frames."""
        for frame in self.frames:
            if frame.name == name:
                return frame.transmission_time(self.bitrate_bps)
        raise CanAnalysisError(f"unknown frame stream {name!r}")

    def utilization(self) -> float:
        """Bus utilization of the analysed streams (worst-case bit lengths)."""
        return sum(frame.transmission_time(self.bitrate_bps)
                   / self._model_params(frame)[0]
                   for frame in self.frames)

    def analysis_key(self) -> Tuple:
        """Exact identity of everything the segment analysis depends on."""
        return (round(self.bitrate_bps, 6), tuple(
            (f.name, f.can_id, f.extended, f.dlc, f.period, f.jitter, f.deadline)
            + self._model_params(f)
            for f in self.frames))

    # -- single-stream analysis --------------------------------------------

    def response_time(self, frame: FrameSpec) -> ResponseTimeResult:
        """WCRT of one frame stream (queueing + transmission).

        Multiple-activation busy-window formulation of the non-preemptive
        analysis: the queueing delay of instance ``q`` solves

            w = B + (q - 1) * C + sum_hp ceil((w + J_j + tau_bit) / T_j) * C_j

        where ``B`` is the longest lower-priority frame (non-preemptive
        blocking) and ``tau_bit`` accounts for a higher-priority frame that
        is queued in the same bit time the arbitration decision falls.
        The response of instance ``q`` is ``w + C`` measured from the
        stream's periodic reference, i.e. including the release jitter.
        """
        bitrate = self.bitrate_bps
        tau_bit = 1.0 / bitrate
        wcet = frame.transmission_time(bitrate)
        own_key = frame.arbitration_key()
        own_period, own_jitter = self._model_params(frame)
        deadline = frame.deadline if frame.deadline is not None else frame.period

        blocking = 0.0
        hp_params: List[Tuple[float, float, float]] = []
        for other in self.frames:
            if other.name == frame.name:
                continue
            if other.arbitration_key() < own_key:
                period, jitter = self._model_params(other)
                hp_params.append((period, jitter, other.transmission_time(bitrate)))
            else:
                blocking = max(blocking, other.transmission_time(bitrate))

        task = Task(name=frame.name, period=own_period, wcet=wcet,
                    deadline=deadline, priority=frame.can_id, jitter=own_jitter,
                    component=frame.sender, criticality="QM")

        ceil = math.ceil
        busy_window_limit = max(deadline, own_period) * 64
        worst_response = 0.0
        iterations_total = 0
        q = 1
        busy_window = 0.0
        completions: List[float] = []
        while True:
            queueing = blocking + (q - 1) * wcet
            fixpoint_reached = False
            for _ in range(self.max_iterations):
                interference = sum(
                    int(ceil((queueing + jitter + tau_bit) / period - _EPS)) * hp_wcet
                    for period, jitter, hp_wcet in hp_params)
                new_queueing = blocking + (q - 1) * wcet + interference
                if abs(new_queueing - queueing) <= _EPS:
                    queueing = new_queueing
                    fixpoint_reached = True
                    break
                queueing = new_queueing
                iterations_total += 1
                if queueing > busy_window_limit:
                    return ResponseTimeResult(task=task, wcrt=None, converged=False,
                                              schedulable=False, busy_window=queueing,
                                              iterations=iterations_total)
            if not fixpoint_reached:
                # The iteration budget ran out below the divergence bound;
                # the candidate queueing delay is a lower bound only, so no
                # sound WCRT can be claimed.
                return ResponseTimeResult(task=task, wcrt=None, converged=False,
                                          schedulable=False, busy_window=queueing,
                                          iterations=iterations_total)
            completion = queueing + wcet
            release = max(0.0, (q - 1) * own_period - own_jitter) if q > 1 else 0.0
            response = completion - release + own_jitter
            worst_response = max(worst_response, response)
            busy_window = completion
            completions.append(completion)
            if completion <= max(0.0, q * own_period - own_jitter) + _EPS:
                break
            q += 1
            if blocking + q * wcet > busy_window_limit:
                return ResponseTimeResult(task=task, wcrt=None, converged=False,
                                          schedulable=False, busy_window=busy_window,
                                          iterations=iterations_total)

        schedulable = worst_response <= deadline + _EPS
        return ResponseTimeResult(task=task, wcrt=worst_response, converged=True,
                                  schedulable=schedulable, busy_window=busy_window,
                                  iterations=iterations_total,
                                  completions=tuple(completions))

    # -- whole segment -----------------------------------------------------

    def analyse(self) -> Dict[str, ResponseTimeResult]:
        """Analyse every stream; returns a mapping stream name -> result.

        When a shared ``memo`` was given, the whole-segment result is
        memoized on :meth:`analysis_key`; callers receive a fresh dict, the
        :class:`ResponseTimeResult` values are shared and read-only.
        """
        memo = self._memo
        key = None
        if memo is not None:
            key = self.analysis_key()
            cached = memo.get(key)
            if cached is not None:
                return dict(cached)
        results = {frame.name: self.response_time(frame) for frame in self.frames}
        if memo is not None:
            memo[key] = results
        return dict(results)

    def schedulable(self) -> bool:
        """Whether every frame stream meets its deadline."""
        return all(result.schedulable for result in self.analyse().values())
