"""Scenario: staged update campaign across a heterogeneous fleet (E10).

The in-field integration process of Section II admits one change request on
one vehicle; at production scale the OEM pushes the *same logical update* to
a whole fleet.  This scenario generates a variant-clustered fleet
(:mod:`repro.fleet.vehicle`), rolls one new component out in staged waves
(:mod:`repro.fleet.campaign`) — canary first, then percentage waves, then the
full fleet — and reports admission, deviation-feedback and rollback metrics.

Admission is batched by default: one shared analysis cache plus the
incremental CPA engine serve every vehicle's timing acceptance test, so a
wave of same-variant vehicles is analysed once instead of per vehicle.
Verdicts are independent of the batching mode (the cache is
content-addressed and the engine exact); ``batch_admission=False`` exists as
the measured baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.contracts.language import ContractParser
from repro.contracts.model import Contract
from repro.fleet.campaign import Campaign, CampaignResult, WavePolicy
from repro.fleet.vehicle import FleetSpec, FleetVehicle, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest


@dataclass
class FleetCampaignResult:
    """Metrics of one fleet update campaign."""

    fleet_size: int
    heterogeneity: float
    batched: bool
    admitted: int
    rejected: int
    deviating: int
    refined: int
    rolled_back: int
    halted: bool
    halted_wave: Optional[int]
    vehicles_updated: int
    update_coverage: float
    acceptance_rate: float
    cache_hits: int
    cache_misses: int
    engine_reuse_rate: float
    waves: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-shard execution telemetry of pooled waves (informational —
    #: varies with the worker layout, excluded from canonical records).
    shard_telemetry: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """Mirrors :attr:`repro.fleet.campaign.CampaignResult.completed`:
        a degenerate campaign that executed no wave completed nothing."""
        return bool(self.waves) and not self.halted


def build_update_contract(wcet_factor: float, utilization: float = 0.22,
                          period: float = 0.05,
                          component: str = "nav_assist") -> Contract:
    """The rolled-out component's contract, scaled to one variant's build."""
    parser = ContractParser()
    return parser.parse({
        "component": component,
        "timing": {"period": period,
                   "wcet": min(utilization * period * wcet_factor, 0.9 * period)},
        "safety": {"asil": "B"},
        "security": {"level": "MEDIUM"},
        "provides": [f"service_{component}"],
    })


def run_fleet_campaign_scenario(fleet_size: int = 50, seed: int = 0,
                                heterogeneity: float = 0.15,
                                num_variants: int = 8,
                                extra_components: int = 10,
                                update_utilization: float = 0.22,
                                canary_size: int = 2,
                                wave_fractions: tuple = (0.1, 0.3, 1.0),
                                max_failure_rate: float = 0.3,
                                rollback_on_halt: bool = True,
                                refine_on_deviation: bool = False,
                                failure_injection_rate: float = 0.0,
                                batch_admission: bool = True,
                                deploy: bool = False,
                                workers: int = 1,
                                cache_path: Optional[str] = None,
                                batch_kernel: bool = False,
                                shard_planner: str = "cost",
                                steal: bool = True,
                                start_method: Optional[str] = None,
                                cache_store: Optional[str] = None,
                                trace_path: Optional[str] = None,
                                trace_deterministic: bool = False
                                ) -> FleetCampaignResult:
    """Run one staged fleet campaign end-to-end.

    The fleet, the per-variant update contracts and the simulated monitor
    feedback are all derived from ``seed``, so the result is a pure function
    of the parameters — batched, sequential and sharded (``workers > 1``)
    admission included; ``cache_path`` warm-starts the analysis cache from a
    previous run's persisted snapshot without changing any verdict, and
    ``batch_kernel`` (requires ``batch_admission``) solves the admission
    waves' cold analyses with the vectorized lockstep kernel — bit-identical
    verdicts, lower prefetch wall time.

    The sharded-engine knobs pass straight through to
    :class:`~repro.fleet.campaign.Campaign`: ``shard_planner`` /``steal``
    select the cost-model work-stealing dispatch (default) or the static
    round-robin baseline, ``start_method`` forces a ``multiprocessing``
    start method, and ``cache_store`` shares an append-only segment store
    between the parent and all workers — all four move wall time only,
    never verdicts.

    ``trace_path`` attaches a :class:`~repro.observability.CampaignTracer`
    writing a structured JSONL event trace of the whole rollout
    (``trace_deterministic`` suppresses its wall-clock fields).  The tracer
    is strictly read-only: traced and untraced runs return field-for-field
    identical results.
    """
    spec = FleetSpec(size=fleet_size, seed=seed, heterogeneity=heterogeneity,
                     num_variants=num_variants, extra_components=extra_components,
                     deploy=deploy)
    cache = AnalysisCache(batch_kernel=batch_kernel) if batch_admission else None
    if batch_kernel and not batch_admission:
        raise ValueError("batch_kernel requires batch_admission")
    vehicles = generate_fleet(spec, analysis_cache=cache)

    update_contracts: Dict[int, Contract] = {}

    def update_factory(vehicle: FleetVehicle) -> ChangeRequest:
        variant = vehicle.variant.index
        contract = update_contracts.get(variant)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor,
                                             utilization=update_utilization)
            update_contracts[variant] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    policy = WavePolicy(canary_size=canary_size,
                        wave_fractions=tuple(float(f) for f in wave_fractions),
                        max_failure_rate=max_failure_rate,
                        rollback_on_halt=rollback_on_halt,
                        refine_on_deviation=refine_on_deviation)
    tracer = None
    if trace_path is not None:
        from repro.observability.tracer import CampaignTracer
        tracer = CampaignTracer(path=str(trace_path),
                                deterministic=trace_deterministic)
    campaign = Campaign(vehicles, update_factory, policy=policy,
                        analysis_cache=cache, batch_admission=batch_admission,
                        failure_injection_rate=failure_injection_rate,
                        feedback_seed=seed, workers=workers,
                        cache_path=cache_path, batch_kernel=batch_kernel,
                        shard_planner=shard_planner, steal=steal,
                        start_method=start_method, cache_store=cache_store,
                        tracer=tracer)
    outcome: CampaignResult = campaign.run()
    return FleetCampaignResult(
        fleet_size=outcome.fleet_size,
        heterogeneity=heterogeneity,
        batched=outcome.batched,
        admitted=outcome.admitted,
        rejected=outcome.rejected,
        deviating=outcome.deviating,
        refined=outcome.refined,
        rolled_back=outcome.rolled_back,
        halted=outcome.halted,
        halted_wave=outcome.halted_wave,
        vehicles_updated=outcome.vehicles_updated,
        update_coverage=outcome.update_coverage,
        acceptance_rate=outcome.acceptance_rate,
        cache_hits=outcome.cache_hits,
        cache_misses=outcome.cache_misses,
        engine_reuse_rate=outcome.engine_reuse_rate,
        waves=[record.to_dict() for record in outcome.waves],
        shard_telemetry=[dict(row) for row in outcome.shard_telemetry])
