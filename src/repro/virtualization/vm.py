"""Virtual machines hosting execution domains.

A VM bundles a share of the processing resources (vCPU budget), a private
memory partition and the set of components deployed into it.  VMs are the
isolation boundary the paper relies on: "Modifications made on one virtual
machine (VM) will not affect other VMs."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class VmError(RuntimeError):
    """Raised for invalid VM configuration or lifecycle operations."""


class VmState(enum.Enum):
    """VM lifecycle states."""

    DEFINED = "defined"
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"


@dataclass
class VirtualMachine:
    """A guest virtual machine.

    Attributes
    ----------
    name:
        Unique VM identifier.
    cpu_share:
        Fraction of one physical core reserved for this VM (0, 1].
    memory_kib:
        Private memory partition size.
    criticality:
        Highest ASIL of the components intended to run inside the VM; the
        hypervisor uses it to sanity-check device assignments.
    """

    name: str
    cpu_share: float
    memory_kib: float
    criticality: str = "QM"
    state: VmState = VmState.DEFINED
    components: List[str] = field(default_factory=list)
    devices: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.cpu_share <= 1.0:
            raise VmError(f"VM {self.name}: cpu_share must be in (0, 1]")
        if self.memory_kib <= 0:
            raise VmError(f"VM {self.name}: memory_kib must be positive")

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if self.state == VmState.RUNNING:
            return
        self.state = VmState.RUNNING

    def pause(self) -> None:
        if self.state != VmState.RUNNING:
            raise VmError(f"VM {self.name} is not running")
        self.state = VmState.PAUSED

    def resume(self) -> None:
        if self.state != VmState.PAUSED:
            raise VmError(f"VM {self.name} is not paused")
        self.state = VmState.RUNNING

    def stop(self) -> None:
        self.state = VmState.STOPPED

    @property
    def running(self) -> bool:
        return self.state == VmState.RUNNING

    # -- contents -----------------------------------------------------------------

    def host_component(self, component_name: str) -> None:
        if component_name in self.components:
            raise VmError(f"component {component_name!r} already hosted in VM {self.name}")
        self.components.append(component_name)

    def evict_component(self, component_name: str) -> None:
        if component_name not in self.components:
            raise VmError(f"component {component_name!r} not hosted in VM {self.name}")
        self.components.remove(component_name)

    def attach_device(self, device_name: str) -> None:
        if device_name in self.devices:
            raise VmError(f"device {device_name!r} already attached to VM {self.name}")
        self.devices.append(device_name)

    def detach_device(self, device_name: str) -> None:
        if device_name not in self.devices:
            raise VmError(f"device {device_name!r} not attached to VM {self.name}")
        self.devices.remove(device_name)
