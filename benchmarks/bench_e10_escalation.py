"""E10 (Section V): bounded escalation in the cross-layer coordinator.

Regenerates the "no forwarding ad infinitum" property quantitatively: a
randomized stream of anomalies across all layers and severities is decided by
the coordinator; the series reports the escalation-depth distribution,
resolution rate and the share of cross-layer resolutions per policy.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core.arbitration import ArbitrationPolicy, CrossLayerCoordinator
from repro.core.countermeasures import Countermeasure, CountermeasureCatalog
from repro.core.layers import LAYER_ORDER, Layer
from repro.core.self_model import SelfModel
from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.sim.random import SeededRNG


def _catalog() -> CountermeasureCatalog:
    catalog = CountermeasureCatalog()
    catalog.register(Countermeasure("dvfs", Layer.PLATFORM, "throttle", 0.6, 0.2))
    catalog.register(Countermeasure("contain", Layer.COMMUNICATION, "quarantine", 0.7, 0.3))
    catalog.register(Countermeasure("redundancy", Layer.SAFETY, "switch to backup", 0.8, 0.4))
    catalog.register(Countermeasure("degrade", Layer.ABILITY, "restrict operation", 0.85, 0.5))
    catalog.register(Countermeasure("safe-stop", Layer.OBJECTIVE, "stop the vehicle", 1.0, 1.0))
    return catalog


def _anomaly_stream(count: int, seed: int):
    rng = SeededRNG(seed)
    layers = [layer.label for layer in LAYER_ORDER]
    types = list(AnomalyType)
    severities = list(AnomalySeverity)
    stream = []
    for index in range(count):
        stream.append(Anomaly(
            anomaly_type=rng.choice(types),
            subject=f"element{index % 17}",
            layer=rng.choice(layers),
            severity=rng.choice(severities),
            time=float(index)))
    return stream


@pytest.mark.benchmark(group="e10-escalation")
def test_e10_escalation_depth_distribution(benchmark):
    anomalies = _anomaly_stream(500, seed=21)
    snapshot = SelfModel().snapshot(0.0)

    def decide_all():
        coordinator = CrossLayerCoordinator(catalog=_catalog())
        for anomaly in anomalies:
            coordinator.decide(anomaly, snapshot)
        return coordinator

    coordinator = benchmark(decide_all)
    depths = coordinator.escalation_depths()
    histogram = {depth: depths.count(depth) for depth in sorted(set(depths))}
    rows = [{"escalation_depth": depth, "anomalies": count,
             "share": count / len(depths)} for depth, count in histogram.items()]
    print_table("E10: escalation-depth distribution (500 random anomalies)", rows)
    print(f"\nresolution rate: {coordinator.resolution_rate():.2%}, "
          f"cross-layer share: {coordinator.cross_layer_rate():.2%}, "
          f"max depth: {coordinator.max_escalation_depth()}")
    # Shape: escalation is bounded by the number of layers, most anomalies are
    # resolved, and the bulk is handled within one or two hops.
    assert coordinator.max_escalation_depth() <= len(LAYER_ORDER) - 1
    assert coordinator.resolution_rate() >= 0.9
    assert histogram.get(0, 0) > 0


@pytest.mark.benchmark(group="e10-escalation")
def test_e10_policy_comparison(benchmark):
    anomalies = _anomaly_stream(300, seed=5)
    snapshot = SelfModel().snapshot(0.0)

    def run_all():
        results = {}
        for policy in ArbitrationPolicy:
            coordinator = CrossLayerCoordinator(catalog=_catalog(), policy=policy)
            for anomaly in anomalies:
                coordinator.decide(anomaly, snapshot)
            costs = [r.countermeasure.cost for r in coordinator.resolutions
                     if r.countermeasure is not None]
            results[policy.value] = {
                "resolution_rate": coordinator.resolution_rate(),
                "cross_layer_share": coordinator.cross_layer_rate(),
                "mean_cost": sum(costs) / len(costs) if costs else 0.0,
                "objective_layer_share": (
                    coordinator.resolutions_by_layer().get(Layer.OBJECTIVE, 0)
                    / len(coordinator.resolutions)),
            }
        return results

    results = benchmark(run_all)
    rows = [{"policy": name, **values} for name, values in results.items()]
    print_table("E10: arbitration-policy comparison (300 random anomalies)", rows)
    lowest = results[ArbitrationPolicy.LOWEST_ADEQUATE.value]
    escalate = results[ArbitrationPolicy.ALWAYS_ESCALATE.value]
    local = results[ArbitrationPolicy.LOCAL_ONLY.value]
    # The cross-layer policy resolves at least as much as local-only while
    # paying far less service cost than escalating everything to a safe stop.
    assert lowest["resolution_rate"] >= local["resolution_rate"]
    assert lowest["mean_cost"] < escalate["mean_cost"]
    assert escalate["objective_layer_share"] == 1.0
