"""Tests for the model-domain analyses (dependency, threat, safety)."""

from __future__ import annotations

import pytest

from repro.analysis.dependency import Dependency, DependencyAnalysis, DependencyGraph, DependencyKind
from repro.analysis.safety import SafetyAnalysis
from repro.analysis.threat import ThreatModel
from repro.contracts.model import (
    Contract,
    SafetyRequirement,
    SecurityRequirement,
)


def _vehicle_dependency_graph() -> DependencyGraph:
    """A small cross-layer graph: ability -> components -> platform -> environment."""
    graph = DependencyGraph()
    graph.add_element("acc_driving", "ability")
    graph.add_element("decelerate", "ability")
    graph.add_element("brake_controller", "software")
    graph.add_element("acc_controller", "software")
    graph.add_element("cpu0", "platform")
    graph.add_element("cpu1", "platform")
    graph.add_element("ambient-temperature", "environment")
    graph.depends_on("acc_driving", "decelerate", DependencyKind.DATA)
    graph.depends_on("decelerate", "brake_controller", DependencyKind.MAPPING)
    graph.depends_on("acc_driving", "acc_controller", DependencyKind.MAPPING)
    graph.depends_on("brake_controller", "cpu0", DependencyKind.MAPPING)
    graph.depends_on("acc_controller", "cpu0", DependencyKind.MAPPING, strength=0.8)
    graph.depends_on("cpu0", "ambient-temperature", DependencyKind.ENVIRONMENT, strength=0.5)
    graph.depends_on("cpu1", "ambient-temperature", DependencyKind.ENVIRONMENT, strength=0.5)
    return graph


class TestDependencyGraph:
    def test_layers_and_elements(self):
        graph = _vehicle_dependency_graph()
        assert set(graph.layers()) == {"ability", "software", "platform", "environment"}
        assert "brake_controller" in graph.elements_on("software")
        assert graph.layer_of("cpu0") == "platform"

    def test_unknown_element_rejected(self):
        graph = DependencyGraph()
        graph.add_element("a", "x")
        with pytest.raises(KeyError):
            graph.depends_on("a", "missing", DependencyKind.DATA)
        with pytest.raises(KeyError):
            graph.layer_of("missing")

    def test_conflicting_layer_rejected(self):
        graph = DependencyGraph()
        graph.add_element("a", "x")
        with pytest.raises(ValueError):
            graph.add_element("a", "y")

    def test_invalid_strength(self):
        with pytest.raises(ValueError):
            Dependency("a", "b", DependencyKind.DATA, strength=0.0)

    def test_closures(self):
        graph = _vehicle_dependency_graph()
        assert "acc_driving" in graph.dependents_closure("cpu0")
        assert "ambient-temperature" in graph.dependencies_closure("acc_driving")

    def test_cross_layer_edges(self):
        graph = _vehicle_dependency_graph()
        cross = graph.cross_layer_edges()
        assert ("decelerate", "brake_controller") in cross
        assert ("acc_driving", "decelerate") not in cross

    def test_no_cycle(self):
        assert not _vehicle_dependency_graph().has_cycle()


class TestDependencyAnalysis:
    def test_failure_effects_reach_ability_layer(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        effects = analysis.failure_effects("cpu0")
        affected = {e.affected_element for e in effects}
        assert {"brake_controller", "acc_controller", "decelerate", "acc_driving"} <= affected
        assert "ability" in analysis.affected_layers("cpu0")

    def test_severity_attenuates_along_path(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        effects = {e.affected_element: e for e in analysis.failure_effects("ambient-temperature")}
        assert effects["cpu0"].severity == pytest.approx(0.5)
        assert effects["acc_controller"].severity == pytest.approx(0.4)

    def test_min_severity_filters(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        effects = analysis.failure_effects("ambient-temperature", min_severity=0.45)
        assert all(e.severity >= 0.45 for e in effects)

    def test_common_cause_elements(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        assert "cpu0" in analysis.common_cause_elements("ambient-temperature")
        assert "cpu1" in analysis.common_cause_elements("ambient-temperature")

    def test_change_impact_maps_layers(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        impact = analysis.change_impact(["brake_controller"])
        assert "ability" in impact and "software" in impact
        assert "decelerate" in impact["ability"]

    def test_single_points_of_failure(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        spofs = analysis.single_points_of_failure(["acc_driving", "decelerate"])
        assert "brake_controller" in spofs
        assert "cpu1" not in spofs

    def test_unknown_element_raises(self):
        analysis = DependencyAnalysis(_vehicle_dependency_graph())
        with pytest.raises(KeyError):
            analysis.failure_effects("missing")


def _threat_contracts():
    gateway = Contract("gateway")
    gateway.add_requirement(SecurityRequirement(level="HIGH", external_interface=True))
    gateway.add_provided_service("remote")
    planner = Contract("planner")
    planner.add_requirement(SecurityRequirement(level="MEDIUM"))
    planner.add_requirement(SafetyRequirement(asil="C"))
    planner.add_required_service("remote")
    planner.add_provided_service("trajectory")
    brake = Contract("brake")
    brake.add_requirement(SecurityRequirement(level="LOW"))
    brake.add_requirement(SafetyRequirement(asil="D"))
    brake.add_required_service("trajectory")
    return gateway, planner, brake


class TestThreatModel:
    def _model(self):
        gateway, planner, brake = _threat_contracts()
        model = ThreatModel()
        model.add_components([gateway, planner, brake])
        model.add_session("planner", "gateway")
        model.add_session("brake", "planner")
        return model

    def test_entry_points(self):
        assert self._model().entry_points() == ["gateway"]

    def test_attack_paths_reach_critical_assets(self):
        assessment = self._model().analyse()
        targets = {p.target for p in assessment.attack_paths}
        assert {"planner", "brake"} <= targets
        brake_paths = assessment.paths_to("brake")
        assert brake_paths and brake_paths[0].hops == 2

    def test_exposure_decays_with_hops(self):
        assessment = self._model().analyse()
        planner_exposure = max(p.exposure for p in assessment.paths_to("planner"))
        brake_exposure = max(p.exposure for p in assessment.paths_to("brake"))
        assert planner_exposure > brake_exposure

    def test_under_protected_detection(self):
        assessment = self._model().analyse()
        # brake declares LOW but sits two hops from the surface, which requires LOW;
        # planner declares MEDIUM one hop away (requires MEDIUM) - both fine.
        assert "planner" not in assessment.under_protected
        # Now weaken the planner.
        gateway, planner, brake = _threat_contracts()
        planner.requirements = [r for r in planner.requirements if r.viewpoint != "security"]
        planner.add_requirement(SecurityRequirement(level="NONE"))
        model = ThreatModel()
        model.add_components([gateway, planner, brake])
        model.add_session("planner", "gateway")
        assessment = model.analyse()
        assert "planner" in assessment.under_protected
        assert not assessment.acceptable

    def test_unreachable_assets_reported(self):
        gateway, planner, brake = _threat_contracts()
        model = ThreatModel()
        model.add_components([gateway, planner, brake])
        assessment = model.analyse()
        assert set(assessment.unreachable_assets) == {"planner", "brake"}

    def test_blast_radius_and_containment(self):
        model = self._model()
        radius = model.blast_radius("gateway")
        assert {"planner", "brake"} <= radius
        candidates = model.containment_candidates("gateway")
        assert candidates[0][0] == "planner"
        assert candidates[0][1] >= 1

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            self._model().blast_radius("nope")
        with pytest.raises(KeyError):
            self._model().add_channel("gateway", "nope")


class TestSafetyAnalysis:
    def _contracts(self):
        high = Contract("braking")
        high.add_requirement(SafetyRequirement(asil="D", fail_operational=True,
                                               redundancy_group="brake"))
        high.add_required_service("wheel_speed")
        backup = Contract("braking_backup")
        backup.add_requirement(SafetyRequirement(asil="D", redundancy_group="brake"))
        low = Contract("wheel_sensor")
        low.add_requirement(SafetyRequirement(asil="A"))
        low.add_provided_service("wheel_speed")
        return [high, backup, low]

    def test_asil_inheritance_violation_detected(self):
        findings = SafetyAnalysis(self._contracts()).check_asil_decomposition()
        assert any(f.kind == "asil-inheritance" for f in findings)

    def test_missing_provider_detected(self):
        contracts = self._contracts()
        contracts.pop()  # remove the wheel sensor
        findings = SafetyAnalysis(contracts).check_asil_decomposition()
        assert any(f.kind == "missing-provider" for f in findings)

    def test_fail_operational_needs_redundancy(self):
        lonely = Contract("steering")
        lonely.add_requirement(SafetyRequirement(asil="D", fail_operational=True))
        findings = SafetyAnalysis([lonely]).check_fail_operational_redundancy()
        assert any(f.kind == "missing-redundancy" for f in findings)
        # With a redundancy peer the finding disappears.
        findings = SafetyAnalysis(self._contracts()).check_fail_operational_redundancy()
        assert findings == []

    def test_mixed_criticality_colocation_is_informational(self):
        contracts = self._contracts()
        mapping = {"braking": "cpu0", "wheel_sensor": "cpu0", "braking_backup": "cpu1"}
        findings = SafetyAnalysis(contracts, mapping).check_mixed_criticality_colocation()
        assert findings and not findings[0].blocking

    def test_redundancy_colocation_is_blocking(self):
        contracts = self._contracts()
        mapping = {"braking": "cpu0", "braking_backup": "cpu0"}
        findings = SafetyAnalysis(contracts, mapping).check_redundancy_mapping_independence()
        assert findings and findings[0].blocking

    def test_acceptable_configuration(self):
        safe = Contract("comp")
        safe.add_requirement(SafetyRequirement(asil="B"))
        analysis = SafetyAnalysis([safe], {"comp": "cpu0"})
        assert analysis.acceptable()
        assert analysis.analyse() == []
