"""Tests for skill graphs, ability graphs and graceful degradation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skills.ability import AbilityGraph, AbilityLevel, PropagationPolicy
from repro.skills.acc_example import ACC_MAIN_SKILL, build_acc_ability_graph, build_acc_skill_graph
from repro.skills.degradation import (
    DegradationActionKind,
    DegradationManager,
    OperationalRestriction,
    RedundancySwitch,
)
from repro.skills.graph import NodeKind, SkillGraph, SkillGraphError


def _small_graph() -> SkillGraph:
    graph = SkillGraph("drive")
    graph.add_skill("drive")
    graph.add_skill("perceive")
    graph.add_skill("actuate")
    graph.add_data_source("sensor")
    graph.add_data_sink("brake")
    graph.add_dependency("drive", "perceive")
    graph.add_dependency("drive", "actuate")
    graph.add_dependency("perceive", "sensor")
    graph.add_dependency("actuate", "brake")
    return graph


class TestSkillGraph:
    def test_valid_small_graph(self):
        graph = _small_graph()
        assert graph.is_valid()
        assert len(graph) == 5
        assert {n.name for n in graph.skills()} == {"drive", "perceive", "actuate"}

    def test_cycle_rejected(self):
        graph = _small_graph()
        with pytest.raises(SkillGraphError):
            graph.add_dependency("perceive", "drive")

    def test_self_dependency_rejected(self):
        graph = _small_graph()
        with pytest.raises(SkillGraphError):
            graph.add_dependency("drive", "drive")

    def test_leaf_nodes_cannot_depend(self):
        graph = _small_graph()
        with pytest.raises(SkillGraphError):
            graph.add_dependency("sensor", "brake")

    def test_duplicate_node_rejected(self):
        graph = _small_graph()
        with pytest.raises(SkillGraphError):
            graph.add_skill("drive")

    def test_validation_finds_unrefined_skill(self):
        graph = SkillGraph("drive")
        graph.add_skill("drive")
        problems = graph.validate()
        assert any("no dependencies" in p for p in problems)

    def test_validation_finds_unreachable_node(self):
        graph = _small_graph()
        graph.add_skill("orphan")
        graph.add_data_source("orphan_src")
        graph.add_dependency("orphan", "orphan_src")
        problems = graph.validate()
        assert any("not reachable" in p for p in problems)

    def test_paths_from_main(self):
        paths = _small_graph().paths_from_main()
        assert ["drive", "perceive", "sensor"] in paths
        assert ["drive", "actuate", "brake"] in paths

    def test_topological_order_children_first(self):
        graph = _small_graph()
        order = graph.topological_order()
        assert order.index("sensor") < order.index("perceive") < order.index("drive")

    def test_dependents_and_dependencies(self):
        graph = _small_graph()
        assert graph.dependents_of("sensor") == ["perceive"]
        assert graph.dependencies_of("drive") == ["actuate", "perceive"]
        assert graph.transitive_dependencies("drive") == {"perceive", "actuate", "sensor", "brake"}
        assert graph.transitive_dependents("sensor") == {"perceive", "drive"}


class TestAccExampleGraph:
    def test_structure_matches_paper(self):
        graph = build_acc_skill_graph()
        assert graph.is_valid()
        assert graph.main_skill == ACC_MAIN_SKILL
        assert {n.name for n in graph.data_sources()} == {"radar_sensor", "camera_sensor", "hmi"}
        assert {n.name for n in graph.data_sinks()} == {"powertrain", "braking_system"}
        # The explicit dependencies called out in the text:
        assert set(graph.dependencies_of("acc_driving")) == {
            "control_distance", "control_speed", "keep_vehicle_controllable"}
        assert "select_target_object" in graph.dependencies_of("control_distance")
        assert "estimate_driver_intent" in graph.dependencies_of("keep_vehicle_controllable")
        assert "braking_system" in graph.dependencies_of("decelerate")
        assert graph.dependencies_of("accelerate_decelerate") == ["powertrain"]
        assert graph.dependencies_of("estimate_driver_intent") == ["hmi"]

    def test_every_path_ends_at_source_or_sink(self):
        graph = build_acc_skill_graph()
        for path in graph.paths_from_main():
            assert graph.node(path[0]).name == ACC_MAIN_SKILL
            assert graph.node(path[-1]).is_leaf_kind


class TestAbilityGraph:
    def test_nominal_scores_are_one(self):
        graph = build_acc_ability_graph()
        assert graph.root_score() == 1.0
        assert graph.root_level() == AbilityLevel.FULLY_AVAILABLE

    def test_leaf_degradation_propagates_to_root_with_min_policy(self):
        graph = build_acc_ability_graph()
        graph.observe("radar_sensor", 0.4)
        assert graph.root_score() == pytest.approx(0.4)
        assert graph.score("perceive_track_objects") == pytest.approx(0.4)
        assert graph.score("estimate_driver_intent") == 1.0

    def test_weighted_policy_softens_single_degradation(self):
        weighted = build_acc_ability_graph(policy=PropagationPolicy.WEIGHTED)
        weighted.observe("radar_sensor", 0.4)
        min_graph = build_acc_ability_graph()
        min_graph.observe("radar_sensor", 0.4)
        assert weighted.root_score() > min_graph.root_score()

    def test_weighted_policy_zero_dependency_forces_zero(self):
        weighted = build_acc_ability_graph(policy=PropagationPolicy.WEIGHTED)
        weighted.fail("radar_sensor")
        assert weighted.score("perceive_track_objects") == 0.0

    def test_restore_recovers_root(self):
        graph = build_acc_ability_graph()
        graph.fail("camera_sensor")
        assert graph.root_score() == 0.0
        graph.restore("camera_sensor")
        assert graph.root_score() == 1.0

    def test_fail_implementation_affects_mapped_abilities(self):
        graph = build_acc_ability_graph()
        affected = graph.fail_implementation("brake_controller")
        assert affected == ["decelerate"]
        assert graph.score("keep_vehicle_controllable") == 0.0

    def test_root_cause_candidates_isolate_origin(self):
        graph = build_acc_ability_graph()
        graph.observe("radar_sensor", 0.3)
        candidates = graph.root_cause_candidates()
        assert [c.name for c in candidates] == ["radar_sensor"]

    def test_anomalies_report_degradations(self):
        graph = build_acc_ability_graph()
        graph.observe("camera_sensor", 0.2)
        anomalies = graph.anomalies(time=3.0)
        subjects = {a.subject for a in anomalies}
        assert "camera_sensor" in subjects and "acc_driving" in subjects
        assert all(a.layer == "ability" for a in anomalies)

    def test_invalid_scores_rejected(self):
        graph = build_acc_ability_graph()
        with pytest.raises(ValueError):
            graph.observe("radar_sensor", 1.5)
        with pytest.raises(SkillGraphError):
            graph.observe("not_a_node", 0.5)

    def test_invalid_skill_graph_rejected(self):
        incomplete = SkillGraph("drive")
        incomplete.add_skill("drive")
        with pytest.raises(SkillGraphError):
            AbilityGraph(incomplete)

    def test_ability_levels_from_score(self):
        assert AbilityLevel.from_score(0.95) == AbilityLevel.FULLY_AVAILABLE
        assert AbilityLevel.from_score(0.7) == AbilityLevel.DEGRADED
        assert AbilityLevel.from_score(0.4) == AbilityLevel.SEVERELY_DEGRADED
        assert AbilityLevel.from_score(0.1) == AbilityLevel.UNAVAILABLE

    @given(scores=st.dictionaries(
        st.sampled_from(["radar_sensor", "camera_sensor", "hmi", "powertrain",
                         "braking_system"]),
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_root_never_exceeds_worst_leaf(self, scores):
        """Property: with MIN propagation, the root score never exceeds the
        score of any degraded leaf (weakest-link semantics)."""
        graph = build_acc_ability_graph()
        for node, score in scores.items():
            graph.observe(node, score)
        assert graph.root_score() <= min(scores.values()) + 1e-9

    @given(score=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_scores_stay_in_unit_interval(self, score):
        graph = build_acc_ability_graph(policy=PropagationPolicy.WEIGHTED)
        graph.observe("radar_sensor", score)
        graph.observe("camera_sensor", 1.0 - score)
        for ability in graph.abilities():
            assert 0.0 <= ability.score <= 1.0


class TestDegradationManager:
    def test_redundancy_switch_preferred(self):
        graph = build_acc_ability_graph()
        manager = DegradationManager(graph)
        manager.register_redundancy(RedundancySwitch(
            "perceive_track_objects", "object_tracker", "radar_only_tracker",
            performance_penalty=0.2))
        graph.observe("perceive_track_objects", 0.2)
        plan = manager.plan()
        assert DegradationActionKind.SWITCH_REDUNDANT in plan.action_kinds()
        log = manager.apply(plan)
        assert any("switched" in entry for entry in log)
        assert graph.score("perceive_track_objects") == pytest.approx(0.8)
        assert manager.active_switches()["perceive_track_objects"] == "radar_only_tracker"

    def test_restriction_used_when_no_redundancy(self):
        graph = build_acc_ability_graph()
        manager = DegradationManager(graph)
        manager.register_restriction(OperationalRestriction(
            "braking_system", "reduce maximum speed", compensated_score=0.6))
        graph.observe("braking_system", 0.3)
        plan = manager.plan()
        assert DegradationActionKind.RESTRICT_OPERATION in plan.action_kinds()
        assert not plan.requires_safe_stop
        manager.apply(plan)
        assert graph.score("braking_system") == pytest.approx(0.6)

    def test_safe_stop_when_nothing_compensates(self):
        graph = build_acc_ability_graph()
        manager = DegradationManager(graph, safe_stop_threshold=0.3)
        graph.fail("radar_sensor")
        graph.fail("camera_sensor")
        plan = manager.plan()
        assert plan.requires_safe_stop
        assert DegradationActionKind.SAFE_STOP in plan.action_kinds()

    def test_plan_prediction_does_not_mutate_graph(self):
        graph = build_acc_ability_graph()
        manager = DegradationManager(graph)
        manager.register_restriction(OperationalRestriction(
            "braking_system", "reduce speed", compensated_score=0.7))
        graph.observe("braking_system", 0.2)
        before = graph.snapshot()
        manager.plan()
        assert graph.snapshot() == before

    def test_empty_plan_when_healthy(self):
        manager = DegradationManager(build_acc_ability_graph())
        assert manager.plan().empty

    def test_unknown_ability_registration_rejected(self):
        manager = DegradationManager(build_acc_ability_graph())
        with pytest.raises(KeyError):
            manager.register_restriction(OperationalRestriction("nope", "x", 0.5))
        with pytest.raises(KeyError):
            manager.register_redundancy(RedundancySwitch("nope", "a", "b"))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RedundancySwitch("a", "p", "b", performance_penalty=1.0)
        with pytest.raises(ValueError):
            OperationalRestriction("a", "desc", compensated_score=0.0)
        with pytest.raises(ValueError):
            DegradationManager(build_acc_ability_graph(), safe_stop_threshold=1.5)
