"""Scenario: distributed end-to-end admission under in-field updates (E11).

The paper's integration story targets *distributed* automotive systems —
ECUs communicating over CAN.  This scenario exercises the compositional
analysis subsystem on the canonical distributed control function:

    sensor (ECU1) --[sensor_data frame]--> control (ECU2)
                  --[actuator_cmd frame]--> actuator (ECU1)

A cause-effect deadline spans the whole chain.  The MCC admits a stream of
in-field updates — well-behaved apps that load the ECUs plus risky control
re-deployments that inflate the control WCET — through the default
viewpoint battery *extended by* a
:class:`~repro.mcc.acceptance.DistributedTimingAcceptanceTest`.  The
interesting verdicts are the ones the per-processor timing test cannot
produce: candidates whose every ECU stays locally schedulable but whose
propagated jitter pushes the chain past its end-to-end deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.analysis.compositional import FrameSpec
from repro.contracts.language import ContractParser
from repro.contracts.model import Contract
from repro.mcc.acceptance import (DistributedChainSpec,
                                  DistributedTimingAcceptanceTest, MessageSpec,
                                  default_acceptance_tests)
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.mcc.controller import MultiChangeController
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.sim.random import SeededRNG

#: The end-to-end chain the scenario admits against.
CHAIN_NAME = "sense-control-actuate"


@dataclass
class DistributedE2EResult:
    """Metrics of one distributed update-admission campaign."""

    total_requests: int
    accepted: int
    rejected: int
    rejected_by_viewpoint: Dict[str, int] = field(default_factory=dict)
    #: Rejections only the system-level analysis could produce: the
    #: distributed-timing viewpoint failed while the per-processor timing
    #: viewpoint passed.
    rejected_distributed_only: int = 0
    baseline_latency_s: Optional[float] = None
    final_latency_s: Optional[float] = None
    worst_accepted_latency_s: Optional[float] = None
    chain_deadline_s: float = 0.0
    fixpoint_iterations: int = 0
    bus_utilization: float = 0.0
    final_version: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: True when the sensor/control/actuator baseline itself was rejected
    #: (extreme knob values, e.g. a bus saturated by background traffic);
    #: the campaign then never ran and all other metrics are degenerate.
    baseline_rejected: bool = False

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.total_requests if self.total_requests else 0.0

    @property
    def deadline_held(self) -> bool:
        """Whether every *adopted* configuration kept the chain deadline."""
        return (self.worst_accepted_latency_s is not None
                and self.worst_accepted_latency_s <= self.chain_deadline_s)


def build_distributed_platform(bitrate_bps: float = 500_000.0,
                               ecu_capacity: float = 0.85) -> Platform:
    """Two ECUs joined by one CAN segment.

    The capacities are sized so the first-fit mapper *distributes* the
    baseline: sensor and actuator fit ECU1, the control task spills to ECU2
    — which is what makes the chain cross the bus.
    """
    platform = Platform(name="distributed-platform")
    platform.add_processor(ProcessingResource("ecu1", capacity=ecu_capacity))
    platform.add_processor(ProcessingResource("ecu2", capacity=ecu_capacity))
    platform.add_network(NetworkResource("can0", bandwidth_bps=bitrate_bps))
    return platform


def baseline_contracts() -> List[Contract]:
    """Sensor/control/actuator components of the distributed function."""
    parser = ContractParser()
    documents = [
        {"component": "sensor", "timing": {"period": 0.02, "wcet": 0.009},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "provides": ["samples"]},
        {"component": "control", "timing": {"period": 0.02, "wcet": 0.010},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "requires": [{"service": "samples"}], "provides": ["commands"]},
        {"component": "actuator", "timing": {"period": 0.02, "wcet": 0.002},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "requires": [{"service": "commands"}]},
    ]
    return parser.parse_many(documents)


def chain_messages() -> List[MessageSpec]:
    """The two CAN hops of the cause-effect chain."""
    return [
        MessageSpec("sensor_data", sender="sensor", receiver="control",
                    can_id=0x100, dlc=8),
        MessageSpec("actuator_cmd", sender="control", receiver="actuator",
                    can_id=0x110, dlc=4),
    ]


def background_traffic(count: int, seed: int) -> List[FrameSpec]:
    """Unmanaged bus traffic (diagnostics, body electronics) the chain
    shares the segment with; roughly half of it out-arbitrates the chain
    frames."""
    rng = SeededRNG(seed)
    frames: List[FrameSpec] = []
    for index in range(count):
        high_priority = index % 2 == 0
        can_id = (0x060 + index) if high_priority else (0x200 + index)
        frames.append(FrameSpec(
            name=f"bg{index:02d}", can_id=can_id,
            period=rng.choice([0.005, 0.01, 0.02, 0.05]),
            dlc=rng.choice([2, 4, 8])))
    return frames


def generate_update_requests(count: int, seed: int, update_utilization: float,
                             risky_fraction: float) -> List[ChangeRequest]:
    """The in-field campaign: app additions plus risky control inflations.

    App additions load whichever ECU the mapper picks (raising local
    interference and, through jitter propagation, the chain latency);
    risky requests re-deploy the ``control`` component with an inflated
    WCET — individually admissible per ECU, but eventually fatal for the
    end-to-end deadline.
    """
    rng = SeededRNG(seed)
    parser = ContractParser()
    requests: List[ChangeRequest] = []
    control_wcet = 0.010
    for index in range(count):
        if rng.uniform() < risky_fraction:
            control_wcet *= rng.uniform(1.15, 1.4)
            document = {
                "component": "control",
                "timing": {"period": 0.02, "wcet": min(control_wcet, 0.018)},
                "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
                "requires": [{"service": "samples"}], "provides": ["commands"]}
            requests.append(ChangeRequest(kind=ChangeKind.UPDATE_COMPONENT,
                                          component="control",
                                          contract=parser.parse(document)))
            continue
        name = f"app{index:03d}"
        period = rng.choice([0.01, 0.02, 0.05])
        utilization = update_utilization * rng.uniform(0.6, 1.4)
        document = {
            "component": name,
            "timing": {"period": period,
                       "wcet": max(1e-6, min(utilization, 0.9) * period)},
            "safety": {"asil": rng.choice(["QM", "A", "B"])},
            "security": {"level": "MEDIUM"},
            "provides": [f"service_{name}"]}
        requests.append(ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                      component=name,
                                      contract=parser.parse(document)))
    return requests


def run_distributed_e2e_scenario(num_updates: int = 12, seed: int = 0,
                                 update_utilization: float = 0.06,
                                 risky_fraction: float = 0.25,
                                 bitrate_bps: float = 500_000.0,
                                 num_background_frames: int = 4,
                                 chain_deadline_s: float = 0.035,
                                 use_cache: bool = True
                                 ) -> DistributedE2EResult:
    """Run one distributed update-admission campaign (E11).

    Deploys the sensor/control/actuator baseline across two ECUs, then
    admits ``num_updates`` change requests through the MCC whose battery
    includes the system-level :class:`DistributedTimingAcceptanceTest`.
    """
    cache = AnalysisCache() if use_cache else None
    platform = build_distributed_platform(bitrate_bps=bitrate_bps)
    distributed = DistributedTimingAcceptanceTest(
        messages=chain_messages(),
        chains=[DistributedChainSpec(
            CHAIN_NAME,
            stages=("sensor", "sensor_data", "control", "actuator_cmd", "actuator"),
            deadline=chain_deadline_s)],
        background_frames={"can0": background_traffic(num_background_frames,
                                                      seed=seed + 17)},
        cache=cache)
    tests = default_acceptance_tests(cache=cache) + [distributed]
    mcc = MultiChangeController(platform, acceptance_tests=tests)
    for contract in baseline_contracts():
        report = mcc.add_component(contract)
        if not report.accepted:
            # Extreme knob values (e.g. background traffic saturating the
            # bus) can make the baseline itself inadmissible; that is a
            # legitimate sweep outcome, not a crash.
            return DistributedE2EResult(
                total_requests=0, accepted=0, rejected=0,
                chain_deadline_s=chain_deadline_s, baseline_rejected=True,
                cache_hits=cache.hits if cache is not None else 0,
                cache_misses=cache.misses if cache is not None else 0)
    baseline_latency = distributed.last_chain_latencies.get(CHAIN_NAME)

    requests = generate_update_requests(num_updates, seed=seed,
                                        update_utilization=update_utilization,
                                        risky_fraction=risky_fraction)
    rejected_by_viewpoint: Dict[str, int] = {}
    rejected_distributed_only = 0
    accepted = 0
    final_latency = baseline_latency
    worst_latency = baseline_latency
    # Metrics of the last *adopted* configuration (a rejected final candidate
    # must not leak its system model into the campaign record).
    adopted_result = distributed.last_result
    adopted_metrics = dict(distributed.last_metrics)
    for request in requests:
        report = mcc.request_change(request)
        if report.accepted:
            accepted += 1
            adopted_result = distributed.last_result
            adopted_metrics = dict(distributed.last_metrics)
            latency = distributed.last_chain_latencies.get(CHAIN_NAME)
            if latency is not None:
                final_latency = latency
                worst_latency = (latency if worst_latency is None
                                 else max(worst_latency, latency))
            continue
        for viewpoint in report.failed_viewpoints():
            rejected_by_viewpoint[viewpoint] = rejected_by_viewpoint.get(viewpoint, 0) + 1
        if not report.acceptance_results and report.findings:
            # Rejected before the acceptance phase (mapping/contract stage).
            bucket = ("mapping" if any("no processor can host" in finding
                                       for finding in report.findings)
                      else "functional")
            rejected_by_viewpoint[bucket] = rejected_by_viewpoint.get(bucket, 0) + 1
        failed = set(report.failed_viewpoints())
        if (distributed.viewpoint in failed
                and report.acceptance_results.get("timing", False)):
            rejected_distributed_only += 1

    result = adopted_result
    metrics = adopted_metrics
    return DistributedE2EResult(
        total_requests=len(requests),
        accepted=accepted,
        rejected=len(requests) - accepted,
        rejected_by_viewpoint=rejected_by_viewpoint,
        rejected_distributed_only=rejected_distributed_only,
        baseline_latency_s=baseline_latency,
        final_latency_s=final_latency,
        worst_accepted_latency_s=worst_latency,
        chain_deadline_s=chain_deadline_s,
        fixpoint_iterations=result.iterations if result is not None else 0,
        bus_utilization=metrics.get("can0.utilization", 0.0),
        final_version=mcc.version,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0)
