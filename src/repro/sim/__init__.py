"""Discrete-event simulation substrate.

Every time-driven subsystem in this reproduction (platform scheduling, CAN
bus, vehicle dynamics, monitoring loops) runs on top of the small
discrete-event kernel defined here.  The kernel is deliberately simple: an
event calendar ordered by (time, priority, sequence number), a simulation
clock, and a trace recorder that downstream analyses and benchmarks consume.
"""

from repro.sim.kernel import Event, EventQueue, Simulator, Process
from repro.sim.trace import Trace, TraceRecord, TraceRecorder
from repro.sim.random import SeededRNG, derive_seed

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "Trace",
    "TraceRecord",
    "TraceRecorder",
    "SeededRNG",
    "derive_seed",
]
