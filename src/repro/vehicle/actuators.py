"""Actuator models: powertrain and brake systems (the ACC data sinks).

Actuators accept normalized commands, expose their health/availability (the
ability scores of the ``powertrain`` and ``braking_system`` data sinks) and
support fault injection.  The brake actuator distinguishes the front and rear
circuits so the rear-brake intrusion example of Section V can disable only
the compromised circuit, and the powertrain actuator offers drive-train
braking as the compensating capability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.vehicle.dynamics import LongitudinalDynamics


class ActuatorFault(enum.Enum):
    """Injectable actuator fault modes."""

    NONE = "none"
    DEGRADED = "degraded"      # only part of the nominal authority available
    UNAVAILABLE = "unavailable"  # no authority at all
    COMPROMISED = "compromised"  # under attacker control (must be shut off)


class Actuator:
    """Base actuator with health tracking and fault injection."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fault = ActuatorFault.NONE
        self.degradation = 0.0  # fraction of authority lost in DEGRADED mode
        self.command_history: List[float] = []
        self.enabled = True

    def inject_fault(self, fault: ActuatorFault, degradation: float = 0.5) -> None:
        if not 0.0 <= degradation <= 1.0:
            raise ValueError("degradation must be in [0, 1]")
        self.fault = fault
        self.degradation = degradation

    def clear_fault(self) -> None:
        self.fault = ActuatorFault.NONE
        self.degradation = 0.0

    def shut_off(self) -> None:
        """Disable the actuator entirely (containment of a compromised unit)."""
        self.enabled = False

    def restore(self) -> None:
        self.enabled = True
        self.clear_fault()

    @property
    def availability(self) -> float:
        """Fraction of nominal authority currently available in [0, 1]."""
        if not self.enabled or self.fault == ActuatorFault.UNAVAILABLE:
            return 0.0
        if self.fault == ActuatorFault.COMPROMISED:
            # A compromised actuator cannot be trusted even if physically able.
            return 0.0
        if self.fault == ActuatorFault.DEGRADED:
            return max(0.0, 1.0 - self.degradation)
        return 1.0

    def ability_score(self) -> float:
        """Score for the corresponding data-sink node of the ability graph."""
        return self.availability

    def _effective_command(self, command: float) -> float:
        command = min(max(command, 0.0), 1.0)
        return command * self.availability


class PowertrainActuator(Actuator):
    """Powertrain (drive) actuator, including drive-train braking capability."""

    def __init__(self, name: str = "powertrain_actuator") -> None:
        super().__init__(name)
        self.drivetrain_braking_enabled = True

    def apply(self, dynamics: LongitudinalDynamics, drive_command: float) -> float:
        """Translate a normalized drive command into the command handed to the
        dynamics model; returns the effective command."""
        effective = self._effective_command(drive_command)
        self.command_history.append(effective)
        return effective

    def set_drivetrain_braking(self, enabled: bool,
                               dynamics: Optional[LongitudinalDynamics] = None) -> None:
        """Enable/disable the drive-train braking contribution (the
        compensation used when the rear brake circuit is shut off)."""
        self.drivetrain_braking_enabled = enabled
        if dynamics is not None:
            dynamics.set_brake_circuit_availability(
                drivetrain=self.availability if enabled else 0.0)


class BrakeActuator(Actuator):
    """Friction brake actuator with separate front and rear circuits."""

    def __init__(self, name: str = "brake_actuator") -> None:
        super().__init__(name)
        self.front_circuit_available = True
        self.rear_circuit_available = True

    def disable_circuit(self, circuit: str,
                        dynamics: Optional[LongitudinalDynamics] = None) -> None:
        """Disable one brake circuit ("front" or "rear")."""
        if circuit == "front":
            self.front_circuit_available = False
        elif circuit == "rear":
            self.rear_circuit_available = False
        else:
            raise ValueError(f"unknown brake circuit {circuit!r}")
        self._sync_dynamics(dynamics)

    def enable_circuit(self, circuit: str,
                       dynamics: Optional[LongitudinalDynamics] = None) -> None:
        if circuit == "front":
            self.front_circuit_available = True
        elif circuit == "rear":
            self.rear_circuit_available = True
        else:
            raise ValueError(f"unknown brake circuit {circuit!r}")
        self._sync_dynamics(dynamics)

    def _sync_dynamics(self, dynamics: Optional[LongitudinalDynamics]) -> None:
        if dynamics is None:
            return
        overall = self.availability
        dynamics.set_brake_circuit_availability(
            front=overall if self.front_circuit_available else 0.0,
            rear=overall if self.rear_circuit_available else 0.0)

    def apply(self, dynamics: LongitudinalDynamics, brake_command: float) -> float:
        effective = self._effective_command(brake_command)
        self.command_history.append(effective)
        return effective

    def ability_score(self) -> float:
        """Braking-system ability reflects circuits and general availability."""
        circuit_factor = (0.5 * (1.0 if self.front_circuit_available else 0.0)
                          + 0.5 * (1.0 if self.rear_circuit_available else 0.0))
        return self.availability * circuit_factor
