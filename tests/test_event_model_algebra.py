"""Property tests for the periodic-with-jitter event-model algebra.

``eta_plus`` (max activations per window) and ``delta_min`` (min distance
over n activations) are pseudo-inverses; the system-level fixpoint leans on
their consistency and on jitter monotonicity (wider jitter can only mean
more activations per window and shorter minimum distances), so both are
pinned here over randomized models.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cpa import EventModel

periods = st.floats(min_value=1e-3, max_value=10.0,
                    allow_nan=False, allow_infinity=False)
jitters = st.floats(min_value=0.0, max_value=20.0,
                    allow_nan=False, allow_infinity=False)
windows = st.floats(min_value=0.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=1, max_value=200)


class TestPseudoInverseConsistency:
    @settings(max_examples=200, deadline=None)
    @given(period=periods, jitter=jitters, n=counts)
    def test_window_spanning_delta_min_contains_n_events(self, period, jitter, n):
        """A window strictly longer than delta_min(n) holds >= n activations."""
        model = EventModel(period=period, jitter=jitter)
        window = model.delta_min(n) + period / 2
        assert model.eta_plus(window) >= n

    @settings(max_examples=200, deadline=None)
    @given(period=periods, jitter=jitters, dt=windows)
    def test_events_of_a_window_fit_into_it(self, period, jitter, dt):
        """The eta_plus(dt) activations of a window span at most dt."""
        model = EventModel(period=period, jitter=jitter)
        count = model.eta_plus(dt)
        if count >= 1:
            assert model.delta_min(count) <= dt + 1e-9 * max(1.0, dt)

    @settings(max_examples=200, deadline=None)
    @given(period=periods, jitter=jitters, n=counts)
    def test_delta_min_is_superadditively_monotone(self, period, jitter, n):
        model = EventModel(period=period, jitter=jitter)
        assert model.delta_min(n + 1) >= model.delta_min(n)
        assert model.delta_min(1) == 0.0

    @settings(max_examples=200, deadline=None)
    @given(period=periods, jitter=jitters, dt=windows)
    def test_eta_plus_is_monotone_in_the_window(self, period, jitter, dt):
        model = EventModel(period=period, jitter=jitter)
        assert model.eta_plus(dt) <= model.eta_plus(dt + period)
        assert model.eta_plus(0.0) == 0


class TestJitterPropagationMonotonicity:
    """The fixpoint only ever widens jitter; both curves must respond
    monotonically or the iteration could oscillate."""

    @settings(max_examples=200, deadline=None)
    @given(period=periods, jitter=jitters, extra=jitters, dt=windows, n=counts)
    def test_wider_jitter_never_decreases_eta_nor_increases_delta(
            self, period, jitter, extra, dt, n):
        narrow = EventModel(period=period, jitter=jitter)
        wide = narrow.with_jitter(jitter + extra)
        assert wide.eta_plus(dt) >= narrow.eta_plus(dt)
        assert wide.delta_min(n) <= narrow.delta_min(n)

    @settings(max_examples=100, deadline=None)
    @given(period=periods, jitter=jitters, extra=jitters)
    def test_with_jitter_preserves_the_period(self, period, jitter, extra):
        model = EventModel(period=period, jitter=jitter)
        assert model.with_jitter(extra).period == period
        assert model.with_jitter(extra).jitter == extra

    def test_zero_jitter_is_strictly_periodic(self):
        model = EventModel(period=2.0)
        assert [model.eta_plus(dt) for dt in (0.5, 2.0, 4.0, 6.0)] == [1, 1, 2, 3]
        assert model.delta_min(3) == pytest.approx(4.0)

    def test_jitter_compresses_consecutive_activations(self):
        model = EventModel(period=2.0, jitter=3.0)
        # Two activations may arrive back-to-back, three within one period.
        assert model.delta_min(2) == 0.0
        assert model.delta_min(3) == pytest.approx(1.0)
        assert model.eta_plus(1.0) == 2
