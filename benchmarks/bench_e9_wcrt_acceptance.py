"""E9 (Section II.A): worst-case response-time analysis as the MCC's timing
acceptance test.

Regenerates the behaviour of the timing viewpoint over synthetic task sets
(UUniFast workloads): acceptance rate versus utilization, the soundness gap
between the analytical bound and simulated response times, and the analysis
runtime that determines how quickly the MCC can evaluate an update.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table
from repro.analysis.cache import AnalysisCache
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.platform.scheduler import FixedPriorityScheduler
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG


def _taskset(seed: int, n: int, utilization: float) -> TaskSet:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.5)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
    taskset.assign_deadline_monotonic_priorities()
    return taskset


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_acceptance_rate_vs_utilization(benchmark):
    utilizations = [0.5, 0.7, 0.8, 0.9, 0.95]
    samples = 40

    def sweep():
        rates = []
        for utilization in utilizations:
            accepted = sum(
                1 for seed in range(samples)
                if ResponseTimeAnalysis(_taskset(seed, 8, utilization)).schedulable())
            rates.append(accepted / samples)
        return rates

    rates = benchmark(sweep)
    rows = [{"utilization": u, "acceptance_rate": r} for u, r in zip(utilizations, rates)]
    print_table("E9: timing acceptance rate vs task-set utilization (8 tasks, 40 sets)", rows)
    assert rates == sorted(rates, reverse=True)
    assert rates[0] == 1.0
    assert rates[-1] < 1.0


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_bound_vs_simulation_gap(benchmark):
    """The analytical WCRT dominates the simulated worst case; report the gap."""

    def evaluate():
        gaps = []
        for seed in range(10):
            taskset = _taskset(seed, 6, 0.7)
            analysis = ResponseTimeAnalysis(taskset).analyse()
            horizon = min(2.0, 30 * max(t.period for t in taskset))
            stats = FixedPriorityScheduler(taskset).run(horizon)
            for name, result in analysis.items():
                observed = stats.worst_response_times.get(name)
                if observed is not None and result.wcrt is not None:
                    gaps.append(result.wcrt / observed)
        return gaps

    ratios = benchmark(evaluate)
    rows = [{"metric": "bound / simulated worst case",
             "min": min(ratios), "mean": sum(ratios) / len(ratios), "max": max(ratios)}]
    print_table("E9: soundness gap of the WCRT bound", rows)
    assert min(ratios) >= 1.0 - 1e-9


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_analysis_runtime_scaling(benchmark):
    """Runtime of the analysis itself for a 40-task set (the MCC-side cost)."""
    taskset = _taskset(123, 40, 0.75)

    def analyse():
        return ResponseTimeAnalysis(taskset).schedulable()

    verdict = benchmark(analyse)
    assert verdict in (True, False)


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_cached_acceptance_sweep(benchmark):
    """Repeated acceptance sweep through the memoization cache.

    The same task sets are re-validated 10 times (the pattern of grid
    repetitions and per-change re-analysis of unchanged processors); the
    cache answers all but the first validation of each set, and the measured
    speedup over the uncached path must clear 1.5x.
    """
    tasksets = [_taskset(seed, 12, utilization)
                for seed in range(3) for utilization in (0.6, 0.75, 0.9)]
    repeats = 10

    def uncached_sweep():
        return [ResponseTimeAnalysis(taskset).schedulable()
                for _ in range(repeats) for taskset in tasksets]

    def cached_sweep():
        cache = AnalysisCache()
        verdicts = [cache.schedulable(taskset)
                    for _ in range(repeats) for taskset in tasksets]
        return cache, verdicts

    # min-of-3 on both sides so a single scheduler stall on a loaded CI
    # runner cannot flip the speedup assertion.
    uncached_verdicts = uncached_sweep()
    uncached_times = []
    for _ in range(3):
        started = time.perf_counter()
        uncached_sweep()
        uncached_times.append(time.perf_counter() - started)
    uncached_s = min(uncached_times)

    (cache, cached_verdicts) = benchmark(cached_sweep)
    cached_times = []
    for _ in range(3):
        started = time.perf_counter()
        cached_sweep()
        cached_times.append(time.perf_counter() - started)
    cached_s = min(cached_times)

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    print_table("E9: CPA memoization on a repeated acceptance sweep", [{
        "task_sets": len(tasksets), "repeats": repeats,
        "uncached_s": uncached_s, "cached_s": cached_s, "speedup": speedup,
        "hits": cache.hits, "misses": cache.misses, "hit_rate": cache.hit_rate,
    }])
    assert cached_verdicts == uncached_verdicts
    assert cache.misses == len(tasksets)
    assert cache.hits == len(tasksets) * (repeats - 1)
    assert speedup > 1.5
