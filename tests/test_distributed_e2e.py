"""Tests for the E11 distributed end-to-end update-admission scenario."""

from __future__ import annotations

import pytest

from repro.experiments.registry import SCENARIOS, run_scenario
from repro.experiments.spec import builtin_specs
from repro.scenarios.distributed_e2e import (CHAIN_NAME,
                                             build_distributed_platform,
                                             baseline_contracts,
                                             generate_update_requests,
                                             run_distributed_e2e_scenario)


class TestScenario:
    def test_baseline_is_distributed_and_measured(self):
        result = run_distributed_e2e_scenario(num_updates=0)
        assert result.total_requests == 0
        assert result.baseline_latency_s is not None
        assert 0 < result.baseline_latency_s < result.chain_deadline_s
        assert result.fixpoint_iterations > 1
        assert result.bus_utilization > 0

    def test_campaign_produces_distributed_only_rejections(self):
        """The scenario's raison d'etre: candidates every local analysis
        accepts are rejected by the system-level viewpoint."""
        result = run_distributed_e2e_scenario(seed=1)
        assert result.rejected_distributed_only > 0
        assert result.rejected_by_viewpoint.get("distributed-timing", 0) > 0

    def test_every_adopted_configuration_keeps_the_deadline(self):
        for seed in range(3):
            result = run_distributed_e2e_scenario(seed=seed)
            assert result.deadline_held
            assert result.worst_accepted_latency_s <= result.chain_deadline_s

    def test_deterministic_per_seed(self):
        first = run_distributed_e2e_scenario(seed=3)
        second = run_distributed_e2e_scenario(seed=3)
        assert first == second

    def test_cache_is_exercised_but_verdict_invisible(self):
        cached = run_distributed_e2e_scenario(seed=2, use_cache=True)
        uncached = run_distributed_e2e_scenario(seed=2, use_cache=False)
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0
        assert (cached.accepted, cached.rejected, cached.final_latency_s) == \
            (uncached.accepted, uncached.rejected, uncached.final_latency_s)

    def test_relaxed_deadline_admits_more(self):
        tight = run_distributed_e2e_scenario(seed=1, chain_deadline_s=0.03)
        relaxed = run_distributed_e2e_scenario(seed=1, chain_deadline_s=0.06)
        assert relaxed.accepted >= tight.accepted
        assert relaxed.rejected_distributed_only <= tight.rejected_distributed_only

    def test_saturating_background_traffic_is_a_result_not_a_crash(self):
        """Regression: a bus saturated by the sweepable background-traffic
        knob used to raise RuntimeError and kill the whole sweep."""
        result = run_distributed_e2e_scenario(num_updates=2,
                                              num_background_frames=30)
        assert result.baseline_rejected
        assert result.total_requests == 0
        clean = run_distributed_e2e_scenario(num_updates=2)
        assert not clean.baseline_rejected

    def test_update_generator_mixes_apps_and_control_inflations(self):
        requests = generate_update_requests(30, seed=0, update_utilization=0.06,
                                            risky_fraction=0.3)
        components = [request.component for request in requests]
        assert "control" in components
        assert any(component.startswith("app") for component in components)

    def test_platform_shape(self):
        platform = build_distributed_platform()
        assert [p.name for p in platform.processors()] == ["ecu1", "ecu2"]
        assert platform.network("can0").bandwidth_bps == 500_000.0
        assert len(baseline_contracts()) == 3


class TestRegistryIntegration:
    def test_registered_with_seed_param(self):
        scenario = SCENARIOS.get("distributed_e2e_update")
        assert scenario.seed_param == "seed"
        assert "chain_deadline_s" in scenario.parameter_names()

    def test_run_record_is_flat_and_json_ready(self):
        record = run_scenario("distributed_e2e_update", num_updates=4, seed=5)
        assert record["total_requests"] == 4
        assert record["accepted"] + record["rejected"] == 4
        assert 0.0 <= record["acceptance_rate"] <= 1.0
        assert record["chain_deadline_s"] == pytest.approx(0.035)
        assert record["event_count"] == 4
        assert isinstance(record["rejected_by_viewpoint"], dict)
        assert CHAIN_NAME  # the chain the latencies in the record refer to

    def test_builtin_suite_includes_the_e11_pair(self):
        specs = {spec.name: spec for spec in builtin_specs()}
        assert "distributed-e2e" in specs
        spec = specs["distributed-e2e"]
        assert spec.scenario == "distributed_e2e_update"
        assert spec.num_runs() == 2
