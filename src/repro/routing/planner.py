"""Risk-aware route planner.

The planner scores candidate routes by expected travel time (degradation
slows the vehicle down) plus a risk penalty for exposure to conditions the
vehicle cannot handle.  Vehicle capability enters through a
``fog_capability`` / ``snow_capability`` profile derived from the ability
graph (a vehicle with degraded sensors pays a much larger penalty for a
foggy pass) — this is the "self-aware vehicle plans alternative routes which
avoid weather-related degradation" behaviour of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.routing.road_network import RoadNetwork, RoadSegment, RouteError
from repro.routing.weather_forecast import (
    DEGRADATION_SPEED_FACTOR,
    WeatherForecast,
)
from repro.vehicle.environment import WeatherCondition


@dataclass
class PlannerConfig:
    """Planner tuning parameters.

    ``risk_aversion`` scales the penalty for expected exposure to conditions
    the vehicle handles poorly; 0 reproduces a conventional shortest-time
    planner (the non-self-aware baseline in E8).
    """

    risk_aversion: float = 1.0
    max_route_alternatives: int = 64
    unhandled_condition_penalty_h: float = 2.0

    def __post_init__(self) -> None:
        if self.risk_aversion < 0:
            raise ValueError("risk aversion must be non-negative")
        if self.max_route_alternatives < 1:
            raise ValueError("need at least one route alternative")


@dataclass
class Route:
    """A scored route."""

    nodes: List[str]
    length_km: float
    expected_travel_time_h: float
    risk_penalty_h: float
    exposure: float  # expected fraction of the distance under adverse weather

    @property
    def cost(self) -> float:
        return self.expected_travel_time_h + self.risk_penalty_h

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (f"{' -> '.join(self.nodes)} ({self.length_km:.0f} km, "
                f"E[T]={self.expected_travel_time_h:.2f} h, risk={self.risk_penalty_h:.2f} h)")


class RiskAwarePlanner:
    """Plan routes that trade distance against weather-related degradation.

    Parameters
    ----------
    network:
        The road network.
    capabilities:
        Vehicle capability per weather condition in [0, 1]; 1.0 means the
        vehicle handles the condition as well as clear weather, 0.0 means it
        cannot operate in it at all.  Typically derived from the ability
        graph (e.g. fog capability follows the radar/camera ability scores).
    """

    def __init__(self, network: RoadNetwork,
                 capabilities: Optional[Dict[WeatherCondition, float]] = None,
                 config: Optional[PlannerConfig] = None) -> None:
        self.network = network
        self.config = config or PlannerConfig()
        self.capabilities = {
            WeatherCondition.CLEAR: 1.0,
            WeatherCondition.RAIN: 0.9,
            WeatherCondition.DENSE_FOG: 0.5,
            WeatherCondition.SNOW: 0.6,
        }
        if capabilities:
            for condition, value in capabilities.items():
                if not 0.0 <= value <= 1.0:
                    raise ValueError("capabilities must be in [0, 1]")
                self.capabilities[condition] = value

    # -- scoring ----------------------------------------------------------------------------

    def segment_expected_time_h(self, segment: RoadSegment,
                                forecast: WeatherForecast) -> float:
        """Expected travel time over the segment given the forecast and the
        vehicle's capability profile."""
        distribution = forecast.for_segment(segment)
        expected_time = 0.0
        for condition, probability in distribution.probabilities.items():
            speed_factor = DEGRADATION_SPEED_FACTOR[condition]
            capability = self.capabilities.get(condition, 1.0)
            if capability <= 0.0:
                # The vehicle cannot traverse the segment under this condition;
                # charge the configured penalty instead of an infinite time so
                # the comparison stays finite (it will practically never win).
                expected_time += probability * self.config.unhandled_condition_penalty_h
                continue
            effective_speed = segment.nominal_speed_kmh * speed_factor * capability
            expected_time += probability * (segment.length_km / max(effective_speed, 1.0))
        return expected_time

    def segment_risk_penalty_h(self, segment: RoadSegment, forecast: WeatherForecast) -> float:
        """Risk penalty: expected time spent in conditions the vehicle handles
        poorly, weighted by (1 - capability) and the risk aversion."""
        distribution = forecast.for_segment(segment)
        penalty = 0.0
        for condition, probability in distribution.probabilities.items():
            capability = self.capabilities.get(condition, 1.0)
            if condition == WeatherCondition.CLEAR or capability >= 1.0:
                continue
            nominal_time = segment.length_km / segment.nominal_speed_kmh
            penalty += probability * (1.0 - capability) * nominal_time
        return self.config.risk_aversion * penalty

    def score_route(self, nodes: List[str], forecast: WeatherForecast) -> Route:
        segments = self.network.segments_on(nodes)
        if not segments:
            raise RouteError("route has no segments")
        expected_time = sum(self.segment_expected_time_h(s, forecast) for s in segments)
        risk_penalty = sum(self.segment_risk_penalty_h(s, forecast) for s in segments)
        length = sum(s.length_km for s in segments)
        exposure = (sum(forecast.adverse_probability(s) * s.length_km for s in segments) / length
                    if length > 0 else 0.0)
        return Route(nodes=list(nodes), length_km=length,
                     expected_travel_time_h=expected_time,
                     risk_penalty_h=risk_penalty, exposure=exposure)

    # -- planning -----------------------------------------------------------------------------

    def alternatives(self, origin: str, destination: str,
                     forecast: WeatherForecast) -> List[Route]:
        """All simple routes (bounded by configuration), scored and sorted by cost."""
        paths = self.network.all_simple_routes(origin, destination)
        if not paths:
            raise RouteError(f"no route from {origin!r} to {destination!r}")
        paths = paths[: self.config.max_route_alternatives]
        routes = [self.score_route(path, forecast) for path in paths]
        return sorted(routes, key=lambda r: (r.cost, r.length_km))

    def plan(self, origin: str, destination: str, forecast: WeatherForecast) -> Route:
        """The minimum-cost route under the forecast."""
        return self.alternatives(origin, destination, forecast)[0]


def build_alpine_network() -> RoadNetwork:
    """The synthetic alpine scenario network used by E8 and the examples.

    Two principal options connect ``south`` and ``north``: a short route over
    an exposed alpine ``pass`` and a longer detour through the ``valley``
    (plus a medium "hill" variant), mirroring the paper's "alpine pass in
    winter vs longer detour" example.
    """
    network = RoadNetwork()
    # Short but exposed: south -> pass_foot -> pass_summit -> north  (~150 km)
    network.add_segment(RoadSegment("south", "pass_foot", 40.0, 100.0, "valley",
                                    name="approach"))
    network.add_segment(RoadSegment("pass_foot", "pass_summit", 35.0, 60.0, "pass",
                                    name="alpine pass south ramp"))
    network.add_segment(RoadSegment("pass_summit", "north", 45.0, 70.0, "pass",
                                    name="alpine pass north ramp"))
    # Medium: south -> hill_town -> north over hills (~220 km)
    network.add_segment(RoadSegment("south", "hill_town", 110.0, 90.0, "hill",
                                    name="hill road west"))
    network.add_segment(RoadSegment("hill_town", "north", 95.0, 90.0, "hill",
                                    name="hill road north"))
    # Long but sheltered valley detour (~320 km of motorway)
    network.add_segment(RoadSegment("south", "valley_junction", 120.0, 120.0, "valley",
                                    name="valley motorway south"))
    network.add_segment(RoadSegment("valley_junction", "valley_city", 110.0, 120.0, "valley",
                                    name="valley motorway middle"))
    network.add_segment(RoadSegment("valley_city", "north", 90.0, 110.0, "valley",
                                    name="valley motorway north"))
    return network
