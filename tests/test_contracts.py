"""Tests for the contracting language (repro.contracts)."""

from __future__ import annotations

import pytest

from repro.contracts.language import ContractParser, ContractSerializer, ContractSyntaxError
from repro.contracts.model import (
    AsilLevel,
    Contract,
    ContractViolation,
    RealTimeRequirement,
    ResourceRequirement,
    SafetyRequirement,
    SecurityLevel,
    SecurityRequirement,
)
from repro.contracts.viewpoints import STANDARD_VIEWPOINTS, Viewpoint, ViewpointRegistry


class TestAsilLevel:
    def test_ordering(self):
        assert AsilLevel.QM < AsilLevel.A < AsilLevel.B < AsilLevel.C < AsilLevel.D

    @pytest.mark.parametrize("value,expected", [
        ("D", AsilLevel.D), ("asil-b", AsilLevel.B), ("ASIL_C", AsilLevel.C),
        ("qm", AsilLevel.QM), (2, AsilLevel.B), (AsilLevel.A, AsilLevel.A),
    ])
    def test_parse_accepts_common_spellings(self, value, expected):
        assert AsilLevel.parse(value) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            AsilLevel.parse("E")
        with pytest.raises(ValueError):
            AsilLevel.parse("")


class TestSecurityLevel:
    def test_parse(self):
        assert SecurityLevel.parse("high") == SecurityLevel.HIGH
        assert SecurityLevel.parse(0) == SecurityLevel.NONE
        with pytest.raises(ValueError):
            SecurityLevel.parse("extreme")


class TestRealTimeRequirement:
    def test_deadline_defaults_to_period(self):
        req = RealTimeRequirement(period=0.01, wcet=0.002)
        assert req.deadline == 0.01
        assert req.utilization == pytest.approx(0.2)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ContractViolation):
            RealTimeRequirement(period=0.0, wcet=0.001)
        with pytest.raises(ContractViolation):
            RealTimeRequirement(period=0.01, wcet=0.0)
        with pytest.raises(ContractViolation):
            RealTimeRequirement(period=0.01, wcet=0.002, deadline=-1.0)
        with pytest.raises(ContractViolation):
            RealTimeRequirement(period=0.01, wcet=0.002, jitter=-0.1)

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ContractViolation):
            RealTimeRequirement(period=0.01, wcet=0.008, deadline=0.005)


class TestContract:
    def test_viewpoint_accessors(self):
        contract = Contract("comp")
        contract.add_requirement(RealTimeRequirement(period=0.01, wcet=0.001))
        contract.add_requirement(SafetyRequirement(asil="C", fail_operational=True))
        contract.add_requirement(SecurityRequirement(level="HIGH"))
        contract.add_requirement(ResourceRequirement(memory_kib=128))
        assert contract.timing.period == 0.01
        assert contract.safety.asil == AsilLevel.C
        assert contract.security.level == SecurityLevel.HIGH
        assert contract.resources.memory_kib == 128
        assert contract.asil == AsilLevel.C

    def test_asil_defaults_to_qm(self):
        assert Contract("comp").asil == AsilLevel.QM

    def test_empty_name_rejected(self):
        with pytest.raises(ContractViolation):
            Contract("")

    def test_service_helpers(self):
        contract = Contract("comp")
        contract.add_provided_service("svc_a").add_required_service("svc_b", max_latency=0.01)
        assert contract.provided_services() == ["svc_a"]
        assert contract.required_services() == ["svc_b"]
        assert contract.requires[0].max_latency == 0.01

    def test_validate_flags_provide_and_require_overlap(self):
        contract = Contract("comp")
        contract.add_provided_service("svc").add_required_service("svc")
        assert any("provides and requires" in problem for problem in contract.validate())

    def test_validate_flags_duplicate_provision(self):
        contract = Contract("comp")
        contract.add_provided_service("svc").add_provided_service("svc")
        assert contract.validate()

    def test_validate_flags_duplicate_viewpoint(self):
        contract = Contract("comp")
        contract.add_requirement(SafetyRequirement(asil="A"))
        contract.add_requirement(SafetyRequirement(asil="B"))
        assert any("multiple safety" in problem for problem in contract.validate())

    def test_validate_accepts_well_formed_contract(self, acc_contracts):
        for contract in acc_contracts:
            assert contract.validate() == []

    def test_negative_resources_rejected(self):
        with pytest.raises(ContractViolation):
            ResourceRequirement(memory_kib=-1)


class TestContractParser:
    def test_parse_full_document(self, parser):
        contract = parser.parse({
            "component": "acc",
            "timing": {"period": 0.01, "wcet": 0.002, "jitter": 0.001},
            "safety": {"asil": "C", "fail_operational": True, "redundancy_group": "ctl"},
            "security": {"level": "MEDIUM", "allowed_peers": ["tracker"],
                         "external_interface": False},
            "resources": {"memory_kib": 256, "can_bandwidth_bps": 1000},
            "requires": [{"service": "objects", "max_latency": 0.02}],
            "provides": [{"service": "setpoints", "max_clients": 2}],
            "metadata": {"skill": "acc_driving"},
        })
        assert contract.component == "acc"
        assert contract.timing.jitter == 0.001
        assert contract.safety.redundancy_group == "ctl"
        assert contract.security.allowed_peers == ["tracker"]
        assert contract.provides[0].max_clients == 2
        assert contract.metadata["skill"] == "acc_driving"

    def test_parse_json_string(self, parser):
        contract = parser.parse('{"component": "x", "provides": ["svc"]}')
        assert contract.provided_services() == ["svc"]

    def test_string_service_shorthand(self, parser):
        contract = parser.parse({"component": "x", "requires": ["a"], "provides": ["b"]})
        assert contract.required_services() == ["a"]
        assert contract.provided_services() == ["b"]

    def test_missing_component_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse({"timing": {"period": 1, "wcet": 0.1}})

    def test_unknown_field_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse({"component": "x", "frobnication": {}})

    def test_invalid_json_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse("{not json")

    def test_timing_missing_field_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse({"component": "x", "timing": {"period": 0.01}})

    def test_invalid_requirement_values_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse({"component": "x", "timing": {"period": -1, "wcet": 0.1}})

    def test_non_dict_requirement_rejected(self, parser):
        with pytest.raises(ContractSyntaxError):
            parser.parse({"component": "x", "safety": "ASIL-D"})

    def test_parse_many(self, parser):
        contracts = parser.parse_many([{"component": "a"}, {"component": "b"}])
        assert [c.component for c in contracts] == ["a", "b"]

    def test_round_trip_through_serializer(self, parser):
        serializer = ContractSerializer()
        original = parser.parse({
            "component": "acc",
            "timing": {"period": 0.01, "wcet": 0.002},
            "safety": {"asil": "B"},
            "requires": [{"service": "objects"}],
            "provides": [{"service": "setpoints"}],
        })
        round_tripped = parser.parse(serializer.to_dict(original))
        assert round_tripped.component == original.component
        assert round_tripped.timing.period == original.timing.period
        assert round_tripped.safety.asil == original.safety.asil
        assert round_tripped.required_services() == original.required_services()

    def test_to_json_produces_valid_json(self, parser):
        serializer = ContractSerializer()
        contract = parser.parse({"component": "x", "timing": {"period": 1.0, "wcet": 0.1}})
        assert '"component"' in serializer.to_json(contract)


class TestViewpoints:
    def test_standard_registry_contains_paper_viewpoints(self):
        for name in ("timing", "safety", "security"):
            assert name in STANDARD_VIEWPOINTS

    def test_mandatory_selection(self):
        mandatory = {v.name for v in STANDARD_VIEWPOINTS.mandatory()}
        assert {"timing", "safety", "security"} <= mandatory
        assert "resources" not in mandatory

    def test_duplicate_registration_rejected(self):
        registry = ViewpointRegistry([Viewpoint("x", "desc")])
        with pytest.raises(ValueError):
            registry.register(Viewpoint("x", "other"))

    def test_unknown_viewpoint_lookup_raises(self):
        with pytest.raises(KeyError):
            STANDARD_VIEWPOINTS.get("does-not-exist")

    def test_relevant_contracts(self, acc_contracts):
        timing = STANDARD_VIEWPOINTS.get("timing")
        assert len(timing.relevant_contracts(acc_contracts)) == len(acc_contracts)
        dependency = STANDARD_VIEWPOINTS.get("dependency")
        assert dependency.relevant_contracts(acc_contracts) == []
