"""Execution-domain substrate (Section II.B of the paper).

Models the microkernel-based run-time environment the CCC architecture
builds on: software components and micro-servers connected through explicit
service sessions, tasks with real-time parameters, processing resources, a
fixed-priority preemptive scheduling simulator, and the RTE configuration
object that the MCC deploys and that monitors attach to.
"""

from repro.platform.tasks import Task, TaskState, Job, TaskSet
from repro.platform.resources import (
    ProcessingResource,
    NetworkResource,
    MemoryPool,
    ResourceError,
    Platform,
)
from repro.platform.components import (
    Component,
    MicroServer,
    ServiceSession,
    ComponentRegistry,
    ComponentError,
)
from repro.platform.scheduler import FixedPriorityScheduler, SchedulerStats, ResourceScheduler
from repro.platform.rte import RuntimeEnvironment, RteConfiguration, CapabilityError
from repro.platform.thermal import ThermalModel, DvfsGovernor, OperatingPoint

__all__ = [
    "Task",
    "TaskState",
    "Job",
    "TaskSet",
    "ProcessingResource",
    "NetworkResource",
    "MemoryPool",
    "ResourceError",
    "Platform",
    "Component",
    "MicroServer",
    "ServiceSession",
    "ComponentRegistry",
    "ComponentError",
    "FixedPriorityScheduler",
    "SchedulerStats",
    "ResourceScheduler",
    "RuntimeEnvironment",
    "RteConfiguration",
    "CapabilityError",
    "ThermalModel",
    "DvfsGovernor",
    "OperatingPoint",
]
