"""Determinism of the security primitives the adversity layer builds on.

The E14 feedback grading replays monitor reports through the
:class:`~repro.security.ids.IntrusionDetectionSystem` and the E5 scenario
drives declarative attacks through the :class:`AttackInjector`; both must be
pure functions of their inputs.  Seeded hypothesis harnesses pin

* the **emission order** of ``AttackInjector.frames_at``/``calls_at``
  (attack-insertion order, each attack cycling its identifier/peer list)
  against an independently computed expectation, and
* the IDS **rate-window alert times** and ``detection_time`` against an
  independent sliding-window reference.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.attacks import (AttackInjector, ComponentCompromiseAttack,
                                    FloodingAttack, MessageInjectionAttack)
from repro.security.ids import IdsRule, IntrusionDetectionSystem
from repro.sim.random import SeededRNG, derive_seed


def build_injection_attacks(seed, count):
    """A seeded mix of frame-emitting attacks (deterministic in ``seed``)."""
    attacks = []
    for index in range(count):
        rng = SeededRNG(derive_seed(seed, "attack", index))
        start = rng.uniform(0.0, 5.0)
        duration = rng.uniform(1.0, 10.0)
        if rng.uniform() < 0.5:
            ids = tuple(0x100 + rng.integer(0, 64) for _ in range(
                1 + rng.integer(0, 3)))
            attacks.append(MessageInjectionAttack(
                name=f"inject{index}", compromised_component=f"comp{index}",
                start_time=start, duration=duration, spoofed_ids=ids,
                frames_per_cycle=1 + rng.integer(0, 5)))
        else:
            attacks.append(FloodingAttack(
                name=f"flood{index}", compromised_component=f"comp{index}",
                start_time=start, duration=duration,
                can_id=0x010 + rng.integer(0, 8),
                frames_per_cycle=1 + rng.integer(0, 20)))
    return attacks


class TestAttackInjectorOrdering:
    """Emission order is attack-insertion order with per-attack cycling —
    never a function of dict/set iteration or timing."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=6),
           probe=st.floats(min_value=0.0, max_value=16.0,
                           allow_nan=False, allow_infinity=False))
    def test_frames_at_matches_insertion_order_reference(self, seed, count,
                                                         probe):
        attacks = build_injection_attacks(seed, count)
        injector = AttackInjector()
        for attack in attacks:
            injector.add(attack)

        expected = []
        for attack in attacks:  # the reference: insertion order...
            if not attack.start_time <= probe < attack.start_time + attack.duration:
                continue
            if isinstance(attack, MessageInjectionAttack):
                for position in range(attack.frames_per_cycle):
                    # ...each attack cycling its own spoofed-id list.
                    expected.append((attack.spoofed_ids[
                        position % len(attack.spoofed_ids)],
                        attack.compromised_component))
            else:
                expected.extend([(attack.can_id, attack.compromised_component)]
                                * attack.frames_per_cycle)

        frames = injector.frames_at(probe)
        assert [(frame.can_id, frame.source) for frame in frames] == expected
        assert injector.injected_frames == len(expected)
        # The probe is side-effect-free apart from the counter: asking again
        # yields the identical sequence.
        assert [(frame.can_id, frame.source)
                for frame in injector.frames_at(probe)] == expected

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=5),
           probe=st.floats(min_value=0.0, max_value=16.0,
                           allow_nan=False, allow_infinity=False))
    def test_calls_at_cycles_target_peers_in_order(self, seed, count, probe):
        attacks = []
        for index in range(count):
            rng = SeededRNG(derive_seed(seed, "lateral", index))
            peers = tuple(f"svc{rng.integer(0, 9)}"
                          for _ in range(1 + rng.integer(0, 3)))
            attacks.append(ComponentCompromiseAttack(
                name=f"move{index}", compromised_component=f"comp{index}",
                start_time=rng.uniform(0.0, 5.0),
                duration=rng.uniform(1.0, 10.0), target_peers=peers,
                calls_per_cycle=1 + rng.integer(0, 5)))
        injector = AttackInjector()
        for attack in attacks:
            injector.add(attack)

        expected = []
        for attack in attacks:
            if not attack.active_at(probe):
                continue
            for position in range(attack.calls_per_cycle):
                expected.append((attack.compromised_component,
                                 attack.target_peers[
                                     position % len(attack.target_peers)]))

        assert injector.calls_at(probe) == expected
        assert injector.injected_calls == len(expected)

    def test_insertion_order_not_start_time_order(self):
        """Two attacks active at once emit in the order they were added,
        even when the later-added one starts earlier."""
        late = MessageInjectionAttack(name="late", compromised_component="b",
                                      start_time=2.0, spoofed_ids=(0x222,))
        early = MessageInjectionAttack(name="early", compromised_component="a",
                                       start_time=0.0, spoofed_ids=(0x111,))
        injector = AttackInjector()
        injector.add(late)
        injector.add(early)
        assert [frame.can_id for frame in injector.frames_at(3.0)] \
            == [0x222, 0x111]


def reference_rate_alerts(times, window_s, max_rate_hz):
    """Independent sliding-window model of the IDS rate rule: the alert
    times are the observations whose trailing ``window_s`` population
    exceeds ``max_rate_hz * window_s``."""
    window = []
    alerts = []
    for time in times:
        window.append(time)
        window = [t for t in window if not t < time - window_s]
        if len(window) / window_s > max_rate_hz:
            alerts.append(time)
    return alerts


class TestIdsRateWindowDeterminism:
    """Alert times and detection time are a pure function of the observed
    timestamps — pinned against the independent reference."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           count=st.integers(min_value=1, max_value=40),
           max_rate_hz=st.sampled_from([1.0, 2.0, 5.0]),
           threshold=st.integers(min_value=1, max_value=4))
    def test_alert_times_match_reference(self, seed, count, max_rate_hz,
                                         threshold):
        rng = SeededRNG(derive_seed(seed, "ids-times"))
        times, clock = [], 0.0
        for _ in range(count):
            clock += rng.uniform(0.01, 1.5)
            times.append(clock)

        ids = IntrusionDetectionSystem(suspicion_threshold=threshold)
        ids.add_rule(IdsRule(sender="monitor-a",
                             allowed_peers={"backend"},
                             max_rate_hz=max_rate_hz))
        for time in times:
            ids.observe_service_call(time, "monitor-a", "backend")

        expected = reference_rate_alerts(times, ids.rate_window_s,
                                         max_rate_hz)
        assert [alert.time for alert in ids.alert_history] == expected
        assert ids.violations_of("monitor-a") == len(expected)
        assert ids.is_suspected("monitor-a") == (len(expected) >= threshold)
        if expected:
            assert ids.first_alert_time("monitor-a") == expected[0]
        if len(expected) >= threshold:
            assert ids.detection_time("monitor-a") \
                == expected[threshold - 1]
        else:
            assert ids.detection_time("monitor-a") is None

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_replaying_the_same_times_is_idempotent_across_instances(self,
                                                                     seed):
        rng = SeededRNG(seed)
        times, clock = [], 0.0
        for _ in range(25):
            clock += rng.uniform(0.01, 0.6)
            times.append(clock)

        def run():
            ids = IntrusionDetectionSystem(suspicion_threshold=3)
            ids.add_rule(IdsRule(sender="s", max_rate_hz=2.0))
            for time in times:
                ids.observe_can_frame(time, "s", 0x10)
            return ([(a.time, a.reason) for a in ids.alert_history],
                    ids.detection_time("s"), ids.suspected_compromised())

        assert run() == run()

    def test_burst_detection_time_is_the_threshold_crossing_alert(self):
        """The exact shape the E14 grader relies on: a burst of six reports
        spaced ``window/(4*6)`` apart trips the 2 Hz rule on the third
        report and crosses a threshold of 3 on the fifth."""
        ids = IntrusionDetectionSystem(suspicion_threshold=3)
        ids.add_rule(IdsRule(sender="forger", allowed_peers={"backend"},
                             max_rate_hz=2.0))
        spacing = ids.rate_window_s / 24.0
        times = [10.0 + copy * spacing for copy in range(6)]
        for time in times:
            ids.observe_service_call(time, "forger", "backend")
        assert [alert.time for alert in ids.alert_history] == times[2:]
        assert ids.first_alert_time("forger") == times[2]
        assert ids.detection_time("forger") == times[4]
        assert ids.is_suspected("forger")
