"""E3 (Section III): FPGA resource break-even of the virtualized CAN controller.

Regenerates the claim that the virtualized controller "breaks even with
multiple stand-alone controllers at [a small number of] VMs": an analytical
LUT/FF cost model is swept over the number of VMs and compared against
replicating stand-alone controllers.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.can.resources import FpgaResourceModel, break_even_vms


@pytest.mark.benchmark(group="e3-can-resources")
def test_e3_resource_break_even(benchmark):
    model = FpgaResourceModel()

    def sweep():
        return model.sweep(10), break_even_vms(model)

    rows, break_even = benchmark(sweep)
    print_table("E3: FPGA resources, virtualized vs stand-alone replication", rows)
    print(f"\nbreak-even at {break_even} VMs (paper: small number of VMs)")
    # Shape: more expensive for a single VM, break-even at a small VM count,
    # clearly cheaper at 8+ VMs.
    assert rows[0]["ratio"] > 1.0
    assert 2 <= break_even <= 5
    assert rows[7]["ratio"] < 0.8


@pytest.mark.benchmark(group="e3-can-resources")
def test_e3_per_vf_cost_sensitivity(benchmark):
    """Sensitivity: the break-even point moves with the per-VF logic cost but
    stays finite as long as a VF is cheaper than a full controller."""
    from repro.can.resources import ResourceEstimate

    scales = [0.5, 1.0, 1.5, 2.0]

    def sweep():
        results = []
        for scale in scales:
            model = FpgaResourceModel(per_vf=ResourceEstimate(int(420 * scale), int(330 * scale)))
            results.append(break_even_vms(model))
        return results

    break_evens = benchmark(sweep)
    rows = [{"per_vf_cost_scale": s, "break_even_vms": b} for s, b in zip(scales, break_evens)]
    print_table("E3 sensitivity: break-even vs per-VF logic cost", rows)
    assert break_evens == sorted(break_evens)
    assert all(b <= 10 for b in break_evens)
