"""Scenario: automated in-field integration of function updates (E1).

The CCC architecture "combines a conventional lab-based design of individual
functions with an automated integration process which ensures that updates
are applied to an already deployed system only if the system can still
adhere to the required safety and security constraints" (Section II).

The scenario deploys a baseline configuration, then feeds the MCC a stream
of synthetic change requests — benign additions, risky updates that inflate
WCETs, components with missing protection, and removals — and measures
acceptance behaviour and integration effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cache import AnalysisCache, default_cache
from repro.contracts.language import ContractParser
from repro.contracts.model import Contract
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.mcc.controller import MultiChangeController
from repro.mcc.mapping import MappingStrategy
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.platform.rte import RuntimeEnvironment
from repro.sim.random import SeededRNG


@dataclass
class InFieldUpdateResult:
    """Metrics of one in-field update campaign."""

    total_requests: int
    accepted: int
    rejected: int
    rejected_by_viewpoint: Dict[str, int] = field(default_factory=dict)
    final_version: int = 0
    deployed_components: int = 0
    unsafe_update_accepted: bool = False

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.total_requests if self.total_requests else 0.0


def build_baseline_platform(num_processors: int = 3,
                            capacity: float = 0.85) -> Platform:
    """The shared mixed-criticality platform the updates target."""
    platform = Platform(name="ccc-platform")
    for index in range(num_processors):
        platform.add_processor(ProcessingResource(f"cpu{index}", capacity=capacity))
    platform.add_network(NetworkResource("can0", bandwidth_bps=500_000.0))
    return platform


def baseline_contracts() -> List[Contract]:
    """A small deployed baseline: perception, control and actuation components."""
    parser = ContractParser()
    documents = [
        {"component": "perception", "timing": {"period": 0.05, "wcet": 0.010},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "provides": ["object_list"]},
        {"component": "planner", "timing": {"period": 0.1, "wcet": 0.020},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "requires": [{"service": "object_list"}], "provides": ["trajectory"]},
        {"component": "actuation", "timing": {"period": 0.01, "wcet": 0.002},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "requires": [{"service": "trajectory"}], "provides": ["actuator_commands"]},
    ]
    return parser.parse_many(documents)


def generate_change_requests(count: int, seed: int = 0,
                             risky_fraction: float = 0.3) -> List[ChangeRequest]:
    """Generate a synthetic update campaign.

    A ``risky_fraction`` of the requests is deliberately problematic: they
    either demand more processor time than the platform can absorb, lack the
    security level their exposure requires, or have dangling service
    requirements — the kinds of updates the MCC exists to keep out.
    """
    rng = SeededRNG(seed)
    parser = ContractParser()
    requests: List[ChangeRequest] = []
    for index in range(count):
        name = f"app{index:03d}"
        risky = rng.uniform() < risky_fraction
        period = rng.choice([0.01, 0.02, 0.05, 0.1])
        if risky:
            flavour = rng.choice(["overload", "insecure", "dangling"])
        else:
            flavour = "benign"
        if flavour == "overload":
            wcet = period * rng.uniform(0.85, 0.98)
        else:
            wcet = period * rng.uniform(0.05, 0.25)
        document: Dict = {
            "component": name,
            "timing": {"period": period, "wcet": wcet},
            "safety": {"asil": rng.choice(["QM", "A", "B"])},
            "security": {"level": "MEDIUM"},
            "provides": [f"service_{name}"],
        }
        if flavour == "insecure":
            document["security"] = {"level": "NONE", "external_interface": True}
            document["safety"] = {"asil": "C"}
        if flavour == "dangling":
            document["requires"] = [{"service": f"missing_service_{index}"}]
        contract = parser.parse(document)
        requests.append(ChangeRequest(kind=ChangeKind.ADD_COMPONENT, component=name,
                                      contract=contract))
    return requests


def run_infield_update_scenario(num_requests: int = 30, seed: int = 0,
                                risky_fraction: float = 0.3,
                                num_processors: int = 3,
                                mapping_strategy: MappingStrategy = MappingStrategy.FIRST_FIT,
                                deploy: bool = True,
                                analysis_cache: Optional["AnalysisCache"] = None,
                                use_analysis_cache: bool = True,
                                batch_kernel: bool = False
                                ) -> InFieldUpdateResult:
    """Run one in-field update campaign through the MCC.

    Pass an :class:`~repro.analysis.cache.AnalysisCache` to memoize the
    timing acceptance test across the campaign's change requests (and across
    campaigns, when the same cache is shared by a sweep).  When no cache is
    given the process-local :func:`~repro.analysis.cache.default_cache` is
    used — WCRT results are content-addressed, so sharing it across
    campaigns cannot change any verdict, it only removes re-derivations.
    ``use_analysis_cache=False`` opts out entirely (benchmark baselines).
    ``batch_kernel`` runs the campaign on a fresh cache whose cold miss
    batches go through the vectorized lockstep busy-window kernel
    (bit-identical verdicts; requires ``use_analysis_cache``).
    """
    if batch_kernel and not use_analysis_cache:
        raise ValueError("batch_kernel requires use_analysis_cache")
    if analysis_cache is None and use_analysis_cache:
        analysis_cache = (AnalysisCache(batch_kernel=True) if batch_kernel
                          else default_cache())
    elif analysis_cache is not None and batch_kernel:
        analysis_cache.engine.batch_kernel = True
    platform = build_baseline_platform(num_processors=num_processors)
    rte = RuntimeEnvironment(platform) if deploy else None
    mcc = MultiChangeController(platform, rte=rte, mapping_strategy=mapping_strategy,
                                analysis_cache=analysis_cache)
    for contract in baseline_contracts():
        report = mcc.add_component(contract)
        if not report.accepted:  # pragma: no cover - baseline accepted by construction
            raise RuntimeError(f"baseline rejected: {report.summary()}")
    baseline_requests = len(mcc.reports)

    requests = generate_change_requests(num_requests, seed=seed,
                                        risky_fraction=risky_fraction)
    rejected_by_viewpoint: Dict[str, int] = {}
    unsafe_accepted = False
    for request in requests:
        report = mcc.request_change(request)
        if not report.accepted:
            for viewpoint in report.failed_viewpoints():
                rejected_by_viewpoint[viewpoint] = rejected_by_viewpoint.get(viewpoint, 0) + 1
            if not report.acceptance_results and report.findings:
                bucket = ("mapping" if any("no processor can host" in finding
                                           for finding in report.findings)
                          else "functional")
                rejected_by_viewpoint[bucket] = rejected_by_viewpoint.get(bucket, 0) + 1
        else:
            contract = request.contract
            if contract is not None and contract.security is not None:
                if contract.security.external_interface and contract.security.level.name == "NONE":
                    unsafe_accepted = True

    update_reports = mcc.reports[baseline_requests:]
    accepted = sum(1 for r in update_reports if r.accepted)
    return InFieldUpdateResult(
        total_requests=len(requests),
        accepted=accepted,
        rejected=len(requests) - accepted,
        rejected_by_viewpoint=rejected_by_viewpoint,
        final_version=mcc.version,
        deployed_components=len(rte.components()) if rte is not None else len(mcc.model),
        unsafe_update_accepted=unsafe_accepted)
