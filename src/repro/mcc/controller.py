"""The Multi-Change Controller.

The MCC "takes full control over the system and platform configuration":
it holds the deployed system model, processes change requests through the
integration process, deploys accepted configurations to the execution
domain, and consumes run-time feedback (metrics, deviations) from the
monitors to refine its models or trigger self-reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.cache import AnalysisCache
from repro.contracts.model import Contract, RealTimeRequirement
from repro.mcc.acceptance import AcceptanceTest
from repro.mcc.configuration import ChangeKind, ChangeRequest, IntegrationReport, SystemModel
from repro.mcc.integration import IntegrationProcess
from repro.mcc.mapping import MappingStrategy
from repro.monitoring.deviation import DeviationDetector, ExpectedBehaviour
from repro.monitoring.metrics import MetricRegistry
from repro.platform.resources import Platform
from repro.platform.rte import RteConfiguration, RuntimeEnvironment


@dataclass(frozen=True)
class MccSnapshot:
    """An adopted MCC state that :meth:`MultiChangeController.rollback` can
    restore: the system model, the configuration deployed for it and the
    expectations derived from its contracts."""

    model: SystemModel
    deployed_configuration: Optional[RteConfiguration]
    expectations: Tuple[ExpectedBehaviour, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "expectations", tuple(self.expectations))


class MultiChangeController:
    """Model-domain controller of the CCC architecture.

    Parameters
    ----------
    platform:
        The target platform model.
    rte:
        Optional execution-domain runtime; if given, accepted configurations
        are deployed immediately.
    acceptance_tests:
        Override the default battery of viewpoint acceptance tests.
    analysis_cache:
        Optional :class:`~repro.analysis.cache.AnalysisCache` that memoizes
        the timing viewpoint across change requests (ignored when explicit
        ``acceptance_tests`` are given).
    """

    def __init__(self, platform: Platform, rte: Optional[RuntimeEnvironment] = None,
                 acceptance_tests: Optional[List[AcceptanceTest]] = None,
                 mapping_strategy: MappingStrategy = MappingStrategy.FIRST_FIT,
                 analysis_cache: Optional["AnalysisCache"] = None) -> None:
        self.platform = platform
        self.rte = rte
        self.model = SystemModel()
        self.process = IntegrationProcess(platform, acceptance_tests=acceptance_tests,
                                          mapping_strategy=mapping_strategy,
                                          analysis_cache=analysis_cache)
        self.reports: List[IntegrationReport] = []
        self.deployed_configuration: Optional[RteConfiguration] = None
        #: Model-domain expectations derived from the contracts (fed to the
        #: deviation detector of the execution domain).
        self.expectations: List[ExpectedBehaviour] = []

    # -- change handling -----------------------------------------------------------------

    def request_change(self, request: ChangeRequest) -> IntegrationReport:
        """Process one change request end-to-end.

        The change is applied to a candidate model, integrated, and — only if
        every acceptance test passes — adopted and deployed.
        """
        candidate = self.model.candidate()
        try:
            candidate.apply_change(request)
        except (ValueError, KeyError) as exc:
            report = IntegrationReport(request_id=request.request_id, accepted=False)
            report.findings.append(str(exc))
            self.reports.append(report)
            return report

        report = self.process.integrate(candidate, request)
        if report.accepted:
            candidate.version = self.model.version + 1
            self.model = candidate
            configuration = self.process.synthesize_configuration(candidate, candidate.version)
            self.deployed_configuration = configuration
            report.configuration_version = configuration.version
            self._refresh_expectations()
            if self.rte is not None:
                self.rte.deploy(configuration)
        self.reports.append(report)
        return report

    def request_changes(self, requests: List[ChangeRequest]) -> List[IntegrationReport]:
        return [self.request_change(request) for request in requests]

    def replay_change(self, request: ChangeRequest, precedent: IntegrationReport,
                      mapping: Dict[str, str],
                      priorities: Dict[str, int]) -> IntegrationReport:
        """Adopt or reject ``request`` by replaying a precedent integration.

        Fleet-scale admission dedupe: when another controller with an
        *identical* model, platform shape and request already ran the full
        integration, its verdict and mapping decision apply verbatim —
        integration is deterministic in exactly those inputs.  The caller
        (e.g. :class:`repro.fleet.campaign.Campaign`) is responsible for that
        equivalence; this method re-applies the change and the decided
        mapping without re-running the analyses, then adopts/deploys as
        :meth:`request_change` would.

        The returned report carries this request's id with the precedent's
        verdict, per-viewpoint results and findings (copied, never aliased).
        """
        candidate = self.model.candidate()
        try:
            candidate.apply_change(request)
        except (ValueError, KeyError) as exc:
            report = IntegrationReport(request_id=request.request_id, accepted=False)
            report.findings.append(str(exc))
            self.reports.append(report)
            return report

        report = IntegrationReport(request_id=request.request_id,
                                   accepted=precedent.accepted,
                                   acceptance_results=dict(precedent.acceptance_results),
                                   findings=list(precedent.findings))
        report.add_step("replay", "verdict replayed from an equivalent integration",
                        precedent_request_id=precedent.request_id)
        if report.accepted:
            candidate.mapping = dict(mapping)
            candidate.priorities = dict(priorities)
            candidate.version = self.model.version + 1
            self.model = candidate
            configuration = self.process.synthesize_configuration(candidate, candidate.version)
            self.deployed_configuration = configuration
            report.configuration_version = configuration.version
            self._refresh_expectations()
            if self.rte is not None:
                self.rte.deploy(configuration)
        self.reports.append(report)
        return report

    def add_component(self, contract: Contract) -> IntegrationReport:
        return self.request_change(ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                                 component=contract.component,
                                                 contract=contract))

    def update_component(self, contract: Contract) -> IntegrationReport:
        return self.request_change(ChangeRequest(kind=ChangeKind.UPDATE_COMPONENT,
                                                 component=contract.component,
                                                 contract=contract))

    def remove_component(self, component: str) -> IntegrationReport:
        return self.request_change(ChangeRequest(kind=ChangeKind.REMOVE_COMPONENT,
                                                 component=component))

    def attach_analysis_cache(self, cache: "AnalysisCache") -> int:
        """Rewire every cache-capable acceptance test to ``cache``.

        Shard workers of the parallel campaign engine use this after
        unpickling a vehicle: pickled caches deliberately travel empty (see
        :meth:`repro.analysis.cache.AnalysisCache.__getstate__`), so the
        worker builds one warm-started local cache and points the vehicle's
        tests at it.  Covers tests holding a cache directly (``cache``
        attribute, e.g. :class:`~repro.mcc.acceptance.TimingAcceptanceTest`)
        and tests delegating to an analysis engine with a cache (e.g.
        :class:`~repro.mcc.acceptance.DistributedTimingAcceptanceTest`).
        Verdicts are cache-independent; only wall time changes.  Returns the
        number of tests rewired.
        """
        rewired = 0
        for test in self.process.acceptance_tests:
            if hasattr(test, "cache"):
                test.cache = cache
                rewired += 1
            analysis = getattr(test, "analysis", None)
            if analysis is not None and hasattr(analysis, "cache"):
                analysis.cache = cache
                rewired += 1
        return rewired

    # -- checkpointing --------------------------------------------------------------------

    def snapshot(self) -> "MccSnapshot":
        """Capture the adopted state (model, configuration, expectations).

        Adoption never mutates a previously adopted :class:`SystemModel`
        (integration operates on candidates and swaps the reference), so the
        snapshot is a cheap bundle of references plus a copied expectation
        list.  Used by staged rollout engines to undo a bad wave.

        Snapshots are *portable*: they reference only model-domain state
        (contracts, mapping, configuration, expectations — no platform,
        process or cache handles), so a pickled snapshot restored in another
        process or a later run rolls a controller back to byte-equivalent
        behaviour.  Campaign checkpoints rely on exactly this.
        """
        return MccSnapshot(model=self.model,
                           deployed_configuration=self.deployed_configuration,
                           expectations=list(self.expectations))

    def rollback(self, snapshot: "MccSnapshot") -> None:
        """Restore a previously captured snapshot and redeploy it.

        The integration report history is kept (it is an append-only audit
        log); only the adopted model, the deployed configuration and the
        derived expectations are rewound.  When an execution domain is
        attached and the snapshot carried a configuration, that configuration
        is deployed again.
        """
        self.model = snapshot.model
        self.deployed_configuration = snapshot.deployed_configuration
        self.expectations = list(snapshot.expectations)
        if self.rte is not None and snapshot.deployed_configuration is not None:
            self.rte.deploy(snapshot.deployed_configuration)

    # -- status ---------------------------------------------------------------------------

    @property
    def version(self) -> int:
        return self.model.version

    def accepted_reports(self) -> List[IntegrationReport]:
        return [r for r in self.reports if r.accepted]

    def rejected_reports(self) -> List[IntegrationReport]:
        return [r for r in self.reports if not r.accepted]

    def acceptance_rate(self) -> float:
        if not self.reports:
            return 0.0
        return len(self.accepted_reports()) / len(self.reports)

    # -- feedback from the execution domain -------------------------------------------------

    def _refresh_expectations(self) -> None:
        """Derive model expectations (execution-time budgets) from contracts."""
        self.expectations = []
        for contract in self.model.contracts():
            timing = contract.timing
            if timing is None:
                continue
            self.expectations.append(ExpectedBehaviour(
                source=f"{contract.component}.task", metric="execution_time",
                nominal=timing.wcet, tolerance=0.1, layer="platform"))

    def configure_deviation_detector(self, registry: MetricRegistry,
                                     two_sided: bool = False) -> DeviationDetector:
        """Build a deviation detector loaded with the current expectations.

        With ``two_sided=True`` every expectation is converted to a two-sided
        tolerance band (without mutating the stored expectations): a value
        collapsing *below* the band is then flagged too, which closes the
        under-reporting channel a compromised vehicle would otherwise use to
        hide failures behind an implausibly small execution time.
        """
        detector = DeviationDetector(registry)
        for expectation in self.expectations:
            if two_sided and not expectation.two_sided:
                expectation = replace(expectation, two_sided=True)
            detector.expect(expectation)
        return detector

    def incorporate_observed_wcets(self, observed: Dict[str, float],
                                   margin: float = 1.2) -> List[IntegrationReport]:
        """Model refinement from run-time metrics: if observed execution times
        exceed the contracted WCET, update the affected contracts (with a
        safety margin) and re-integrate them.

        Returns the integration reports of the triggered updates (empty if
        all observations are within the contracted budgets).
        """
        if margin < 1.0:
            raise ValueError("margin must be at least 1.0")
        reports: List[IntegrationReport] = []
        for task_name, observed_wcet in observed.items():
            component = task_name.removesuffix(".task")
            if component not in self.model:
                continue
            contract = self.model.contract(component)
            timing = contract.timing
            if timing is None or observed_wcet <= timing.wcet:
                continue
            new_wcet = min(observed_wcet * margin, timing.deadline or timing.period)
            updated = Contract(component=contract.component,
                               requirements=[r for r in contract.requirements
                                             if r.viewpoint != "timing"],
                               requires=list(contract.requires),
                               provides=list(contract.provides),
                               metadata=dict(contract.metadata))
            updated.add_requirement(RealTimeRequirement(
                period=timing.period, wcet=new_wcet, deadline=timing.deadline,
                jitter=timing.jitter))
            reports.append(self.update_component(updated))
        return reports
