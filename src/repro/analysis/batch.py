"""Vectorized batch busy-window kernel for congruent task-set grids.

Fleet-scale admission (the E10/E11 campaigns) solves thousands of
*structurally congruent* task sets — per-vehicle perturbations of a shared
baseline that agree on task count and priority structure while differing
only in WCET/period/jitter/deadline values.  The scalar engines iterate one
busy-window fixpoint at a time; this module lays the parameters of a whole
congruence group out as arrays (one *lane* per task set) and iterates all
fixpoints in lockstep:

* **Congruence grouping.**  :func:`congruence_signature` maps a task set to
  the dense rank of each task's priority in insertion order.  Two task sets
  with the same signature have identical interference structure (who
  preempts whom, including equal-priority ties), so their busy windows can
  share one control flow.
* **Lane layout.**  Per task position, the group's speed-scaled WCETs,
  event-model periods/jitters, deadlines and divergence bounds become
  parallel arrays indexed by lane.
* **Lockstep fixpoints.**  Every (task set, task position) pair is one
  *column* of a single flat working set; all columns take fixpoint passes
  together while each tracks its own activation index ``q``.  Settled
  columns are compressed out of the working arrays (early exit), diverging
  columns are retired exactly where
  :class:`~repro.analysis.cpa.ResponseTimeAnalysis` would retire them, and
  the last few stragglers are finished by the scalar continuation.
* **Dual path.**  A numpy path vectorizes across lanes when numpy is
  importable; a tight pure-Python path (no per-iteration allocations) is
  used otherwise.  Setting ``REPRO_FORCE_PURE_BATCH=1`` before import forces
  the pure path even when numpy is present (the CI fallback leg).

The contract is *bit-identical verdicts*: every floating-point operation is
performed in the same order as the scalar engine — interference sums
accumulate left-to-right over higher-priority tasks in insertion order, and
the numpy path only vectorizes across lanes (elementwise IEEE-754 double
ops, identical to CPython float arithmetic).  The differential oracle in
``tests/test_batch_kernel.py`` pins batch == incremental == cold full
analysis on both paths.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cpa import _EPS, EventModel, ResponseTimeResult
from repro.platform.tasks import TaskSet


def _import_numpy():
    """Numpy, unless it is missing or ``REPRO_FORCE_PURE_BATCH`` disables it."""
    if os.environ.get("REPRO_FORCE_PURE_BATCH", "0") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via the env-var gate
        return None
    return numpy


_np = _import_numpy()

_RUNNING = 0
_CONVERGED = 1
_DIVERGED = 2


def numpy_available() -> bool:
    """Whether the vectorized numpy path is usable in this process."""
    return _np is not None


def congruence_signature(taskset: TaskSet) -> Tuple[int, ...]:
    """Dense priority-rank signature of a task set, in insertion order.

    Two task sets are *congruent* — solvable in lockstep by the batch
    kernel — iff their signatures are equal: same task count and the same
    relative priority structure (strict ``<`` relations and equal-priority
    ties), regardless of the absolute priority values, task names or
    numeric parameters.
    """
    priorities = [task.priority for task in taskset]
    rank_of = {priority: rank
               for rank, priority in enumerate(sorted(set(priorities)))}
    return tuple(rank_of[priority] for priority in priorities)


def _solve_lane(wcet: float, own_period: float, own_jitter: float,
                deadline: float, limit: float,
                hp_params: Tuple[Tuple[float, float, float], ...],
                max_iterations: int, q: int = 1, worst: float = 0.0,
                iterations_total: int = 0, busy_window: float = 0.0,
                completions: Optional[List[float]] = None,
                completion: Optional[float] = None, inner_done: int = 0):
    """Scalar busy window of one lane/task, allocation-free in the hot loop.

    Mirrors :meth:`ResponseTimeAnalysis.response_time` operation-for-
    operation (cold start, no memo) so results are bit-identical.  The
    optional state arguments continue a busy window mid-stream (the numpy
    path hands its last few straggler lanes over here once vectorizing
    across them stops paying): from activation ``q`` onward, and — when
    ``completion``/``inner_done`` are given — from that iterate of the
    current activation's fixpoint.  The lockstep state at a pass boundary is
    exactly the scalar state at that point, so the continuation stays
    bit-identical.  Returns ``(wcrt, converged, schedulable, busy_window,
    iterations, completions)``.
    """
    ceil = math.ceil
    if completions is None:
        completions = []
    while True:
        if completion is None:
            completion = q * wcet
            budget = max_iterations
        else:
            budget = max_iterations - inner_done
        for _ in range(budget):
            interference = 0
            for period, jitter, hp_wcet in hp_params:
                interference += int(ceil((completion + jitter) / period - _EPS)) * hp_wcet
            new_completion = q * wcet + interference
            if abs(new_completion - completion) <= _EPS:
                completion = new_completion
                break
            completion = new_completion
            iterations_total += 1
            if completion > limit:
                return (None, False, False, completion, iterations_total, ())
        release = max(0.0, (q - 1) * own_period - own_jitter) if q > 1 else 0.0
        response = completion - release + own_jitter
        worst = max(worst, response)
        busy_window = completion
        completions.append(completion)
        if completion <= max(0.0, q * own_period - own_jitter) + _EPS:
            break
        q += 1
        if q * wcet > limit:
            return (None, False, False, busy_window, iterations_total, ())
        completion = None
    return (worst, True, worst <= deadline + _EPS, busy_window,
            iterations_total, tuple(completions))


class BatchResponseTimeAnalysis:
    """Lockstep busy-window WCRT analysis of congruent task-set groups.

    Parameters
    ----------
    max_iterations:
        Safety bound on each fixpoint iteration (matches the scalar engine).
    use_numpy:
        ``None`` auto-selects the vectorized path when numpy is importable
        (and not disabled via ``REPRO_FORCE_PURE_BATCH``); ``True`` requires
        it; ``False`` forces the pure-Python array path.
    """

    def __init__(self, max_iterations: int = 10_000,
                 use_numpy: Optional[bool] = None) -> None:
        if use_numpy and _np is None:
            raise RuntimeError("numpy path requested but numpy is unavailable "
                               "(not installed, or REPRO_FORCE_PURE_BATCH set)")
        self.max_iterations = max_iterations
        self.use_numpy = (_np is not None) if use_numpy is None else bool(use_numpy)
        #: Once at most this many lanes are still iterating a task
        #: position, the numpy path finishes them with the scalar
        #: continuation — vector-op overhead on tiny arrays would otherwise
        #: dominate the long-busy-window stragglers.
        self.numpy_tail_lanes = 64
        #: Large groups are solved in blocks of at most this many flat
        #: columns so the padded interference matrices stay cache-resident;
        #: lanes are independent, so blocking cannot change results.
        self.numpy_block_columns = 4096
        #: Observability counters for tests and benchmark tables.
        self.groups_solved = 0
        self.lanes_solved = 0

    @property
    def vectorized(self) -> bool:
        """Whether this kernel instance runs the numpy path."""
        return self.use_numpy

    # -- entry points ------------------------------------------------------

    def analyse_many(self, tasksets: Iterable[TaskSet],
                     speed_factor: float = 1.0,
                     event_models: Optional[Dict[str, EventModel]] = None
                     ) -> List[Dict[str, ResponseTimeResult]]:
        """Analyse a mixed grid: group by congruence, solve groups in
        lockstep, scatter results back into input order."""
        ordered = list(tasksets)
        results: List[Optional[Dict[str, ResponseTimeResult]]] = [None] * len(ordered)
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for position, taskset in enumerate(ordered):
            groups.setdefault(congruence_signature(taskset), []).append(position)
        for signature, positions in groups.items():
            solved = self._solve_group([ordered[p] for p in positions],
                                       signature, speed_factor, event_models)
            for position, lane_results in zip(positions, solved):
                results[position] = lane_results
        return results  # type: ignore[return-value]

    def analyse_group(self, tasksets: Iterable[TaskSet],
                      speed_factor: float = 1.0,
                      event_models: Optional[Dict[str, EventModel]] = None,
                      signature: Optional[Tuple[int, ...]] = None
                      ) -> List[Dict[str, ResponseTimeResult]]:
        """Analyse one already-congruent group, in input order.

        Congruence is validated unless the caller passes the group's
        ``signature`` (trusted — callers that grouped by
        :func:`congruence_signature` themselves skip the re-computation).
        """
        ordered = list(tasksets)
        if not ordered:
            return []
        if signature is None:
            signature = congruence_signature(ordered[0])
            for taskset in ordered[1:]:
                if congruence_signature(taskset) != signature:
                    raise ValueError("analyse_group requires congruent task "
                                     "sets; use analyse_many for mixed grids")
        return self._solve_group(ordered, signature, speed_factor, event_models)

    # -- group solver ------------------------------------------------------

    def _solve_group(self, lanes: List[TaskSet], signature: Tuple[int, ...],
                     speed_factor: float,
                     event_models: Optional[Dict[str, EventModel]]
                     ) -> List[Dict[str, ResponseTimeResult]]:
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        task_count = len(signature)
        lane_count = len(lanes)
        if task_count == 0:
            return [{} for _ in lanes]
        overrides = event_models or {}
        lane_tasks = [taskset.tasks() for taskset in lanes]
        # Lane-major parameter rows: rows_x[l][i] = value for task position i
        # of lane l.  Periods/jitters are the *event-model* values (override
        # or task), exactly as the scalar engine resolves them.
        rows_wcet: List[List[float]] = []
        rows_period: List[List[float]] = []
        rows_jitter: List[List[float]] = []
        rows_deadline: List[List[float]] = []
        rows_limit: List[List[float]] = []
        for tasks in lane_tasks:
            rows_wcet.append([task.wcet / speed_factor for task in tasks])
            if overrides:
                models = [overrides.get(task.name) for task in tasks]
                rows_period.append([task.period if model is None else model.period
                                    for task, model in zip(tasks, models)])
                rows_jitter.append([task.jitter if model is None else model.jitter
                                    for task, model in zip(tasks, models)])
            else:
                rows_period.append([task.period for task in tasks])
                rows_jitter.append([task.jitter for task in tasks])
            row_d = [task.period if task.deadline is None else task.deadline
                     for task in tasks]
            rows_deadline.append(row_d)
            rows_limit.append([(d if d > task.period else task.period) * 64
                               for d, task in zip(row_d, tasks)])
        hp_of = [tuple(j for j in range(task_count) if signature[j] < signature[i])
                 for i in range(task_count)]
        self.groups_solved += 1
        self.lanes_solved += lane_count
        solver = self._solve_numpy if self.use_numpy else self._solve_pure
        solved = solver(task_count, lane_count, rows_wcet, rows_period,
                        rows_jitter, rows_deadline, rows_limit, hp_of)
        # Positional construction: solved tuples are laid out in
        # ResponseTimeResult field order (after ``task``).
        return [{task.name: ResponseTimeResult(task, *solved[i][lane])
                 for i, task in enumerate(tasks)}
                for lane, tasks in enumerate(lane_tasks)]

    # -- pure-Python path --------------------------------------------------

    def _solve_pure(self, task_count, lane_count, rows_wcet, rows_period,
                    rows_jitter, rows_deadline, rows_limit, hp_of):
        max_iterations = self.max_iterations
        solved = [[None] * lane_count for _ in range(task_count)]
        for lane in range(lane_count):
            row_w = rows_wcet[lane]
            row_p = rows_period[lane]
            row_j = rows_jitter[lane]
            row_d = rows_deadline[lane]
            row_l = rows_limit[lane]
            for i in range(task_count):
                hp_params = tuple((row_p[j], row_j[j], row_w[j])
                                  for j in hp_of[i])
                solved[i][lane] = _solve_lane(row_w[i], row_p[i], row_j[i],
                                              row_d[i], row_l[i], hp_params,
                                              max_iterations)
        return solved

    # -- numpy path --------------------------------------------------------

    def _solve_numpy(self, task_count, lane_count, rows_wcet, rows_period,
                     rows_jitter, rows_deadline, rows_limit, hp_of):
        """Numpy path: flat lockstep solve, blocked to stay cache-resident."""
        block = max(1, self.numpy_block_columns // task_count)
        if lane_count <= block:
            return self._solve_numpy_block(task_count, lane_count, rows_wcet,
                                           rows_period, rows_jitter,
                                           rows_deadline, rows_limit, hp_of)
        solved = [[None] * lane_count for _ in range(task_count)]
        for start in range(0, lane_count, block):
            stop = min(start + block, lane_count)
            sub = self._solve_numpy_block(
                task_count, stop - start, rows_wcet[start:stop],
                rows_period[start:stop], rows_jitter[start:stop],
                rows_deadline[start:stop], rows_limit[start:stop], hp_of)
            for i in range(task_count):
                solved[i][start:stop] = sub[i]
        return solved

    def _solve_numpy_block(self, task_count, lane_count, rows_wcet,
                           rows_period, rows_jitter, rows_deadline,
                           rows_limit, hp_of):
        """Flat lockstep solve: one column per (lane, task position) pair.

        Flat column ``g = lane * task_count + i`` carries its own activation
        index ``q``; all working columns take fixpoint passes together.
        Interference term arrays are zero-padded to the deepest
        higher-priority set — a padded term contributes exactly ``+0.0``
        *after* the real left-to-right sum, so values stay bit-identical to
        the scalar engine.  Settled columns record their activation and
        either converge or restart at ``q + 1``; finished columns are
        compressed out; the last few stragglers go to the scalar
        continuation.
        """
        np = _np
        n = task_count
        flat = n * lane_count
        max_iterations = self.max_iterations
        # Flat own-task parameters (lane-major: row-major reshape of the
        # (lanes, tasks) rows gives exactly g = lane * n + i).
        w = np.array(rows_wcet).reshape(flat)
        p_own = np.array(rows_period).reshape(flat)
        j_own = np.array(rows_jitter).reshape(flat)
        dl = np.array(rows_deadline).reshape(flat)
        lim = np.array(rows_limit).reshape(flat)
        # Padded higher-priority term matrices, term-major: row k holds the
        # k-th interference term of every column (period 1 / jitter 0 /
        # wcet 0 beyond a column's real depth).
        depth = max(len(hp) for hp in hp_of)
        hpP = np.ones((depth, flat))
        hpJ = np.zeros((depth, flat))
        hpW = np.zeros((depth, flat))
        Wm = w.reshape(lane_count, n)
        Pm = p_own.reshape(lane_count, n)
        Jm = j_own.reshape(lane_count, n)
        for i, hp in enumerate(hp_of):
            for k, j in enumerate(hp):
                hpP[k, i::n] = Pm[:, j]
                hpJ[k, i::n] = Jm[:, j]
                hpW[k, i::n] = Wm[:, j]
        # Global result state (indexed by flat column id).
        status = np.zeros(flat, dtype=np.int8)
        worst = np.zeros(flat)
        busy = np.zeros(flat)
        iterations = np.zeros(flat, dtype=np.int64)
        completions_log = []
        scalar_done = {}
        # Working-set state (compressed as columns finish).
        idx = np.arange(flat)
        q = np.ones(flat, dtype=np.int64)
        comp = w.copy()
        qw = w.copy()
        inner = np.zeros(flat, dtype=np.int64)
        done = np.zeros(flat, dtype=bool)
        w_cur, p_cur, j_cur, lim_cur = w, p_own, j_own, lim
        size = flat
        tmp = np.empty(size)
        acc = np.empty(size)
        scratch = np.empty(size)
        diff = np.empty(size)
        live = flat
        with np.errstate(over="ignore", invalid="ignore"):
            while live:
                if live <= self.numpy_tail_lanes:
                    self._hand_off_numpy(np, n, rows_wcet, rows_period,
                                         rows_jitter, rows_deadline,
                                         rows_limit, hp_of, idx, done, q,
                                         comp, inner, worst, busy, iterations,
                                         completions_log, scalar_done)
                    break
                # One fixpoint pass over every working column.  Finished
                # columns ride along (their values are never read again);
                # the in-place accumulation keeps the scalar engine's
                # left-to-right summation order, so values stay
                # bit-identical — only allocations are saved.
                if depth:
                    acc.fill(0.0)
                    for k in range(depth):
                        np.add(comp, hpJ[k], out=tmp)
                        np.divide(tmp, hpP[k], out=tmp)
                        np.subtract(tmp, _EPS, out=tmp)
                        np.ceil(tmp, out=tmp)
                        np.multiply(tmp, hpW[k], out=tmp)
                        np.add(acc, tmp, out=acc)
                    np.add(qw, acc, out=scratch)
                else:
                    scratch[...] = qw
                np.subtract(scratch, comp, out=diff)
                np.abs(diff, out=diff)
                alive = ~done
                settled = (diff <= _EPS) & alive
                pending = alive & (diff > _EPS)
                comp, scratch = scratch, comp
                if pending.any():
                    iterations[idx[pending]] += 1
                    inner[pending] += 1
                    over = pending & (comp > lim_cur)
                    if over.any():
                        dead = idx[over]
                        status[dead] = _DIVERGED
                        busy[dead] = comp[over]
                        done |= over
                        live -= int(over.sum())
                        pending &= ~over
                    # Iteration cap: a column that exhausts max_iterations
                    # keeps its last iterate, exactly like the scalar
                    # fall-through.
                    capped = pending & (inner >= max_iterations)
                    if capped.any():
                        settled |= capped
                if settled.any():
                    sl = np.nonzero(settled)[0]
                    g = idx[sl]
                    comp_s = comp[sl]
                    q_s = q[sl]
                    p_s = p_cur[sl]
                    j_s = j_cur[sl]
                    release = np.maximum(0.0, (q_s - 1) * p_s - j_s)
                    response = comp_s - release + j_s
                    worst[g] = np.maximum(worst[g], response)
                    busy[g] = comp_s
                    completions_log.append((g, comp_s))
                    closing = comp_s <= np.maximum(0.0, q_s * p_s - j_s) + _EPS
                    closed = sl[closing]
                    done[closed] = True
                    status[idx[closed]] = _CONVERGED
                    live -= int(closing.sum())
                    open_sl = sl[~closing]
                    if open_sl.size:
                        q_next = q[open_sl] + 1
                        w_o = w_cur[open_sl]
                        over_q = q_next * w_o > lim_cur[open_sl]
                        if over_q.any():
                            dead = open_sl[over_q]
                            status[idx[dead]] = _DIVERGED
                            done[dead] = True
                            live -= int(over_q.sum())
                            open_sl = open_sl[~over_q]
                            q_next = q_next[~over_q]
                            w_o = w_o[~over_q]
                        if open_sl.size:
                            q[open_sl] = q_next
                            start = q_next * w_o
                            qw[open_sl] = start
                            comp[open_sl] = start
                            inner[open_sl] = 0
                if live and live * 8 <= size * 5:
                    keep = ~done
                    idx = idx[keep]
                    q = q[keep]
                    comp = comp[keep]
                    qw = qw[keep]
                    inner = inner[keep]
                    w_cur = w_cur[keep]
                    p_cur = p_cur[keep]
                    j_cur = j_cur[keep]
                    lim_cur = lim_cur[keep]
                    hpP = hpP[:, keep]
                    hpJ = hpJ[:, keep]
                    hpW = hpW[:, keep]
                    size = live
                    done = np.zeros(size, dtype=bool)
                    tmp = np.empty(size)
                    acc = np.empty(size)
                    scratch = np.empty(size)
                    diff = np.empty(size)
        schedulable = worst <= dl + _EPS
        # Most columns close after a single activation; store the first
        # completion flat and only allocate a list for multi-activation
        # columns.
        first_completion = [None] * flat
        extra_completions: Dict[int, List[float]] = {}
        for column_ids, values in completions_log:
            for g, value in zip(column_ids.tolist(), values.tolist()):
                if first_completion[g] is None:
                    first_completion[g] = value
                elif g in extra_completions:
                    extra_completions[g].append(value)
                else:
                    extra_completions[g] = [first_completion[g], value]
        status_list = status.tolist()
        worst_list = worst.tolist()
        busy_list = busy.tolist()
        iterations_list = iterations.tolist()
        schedulable_list = schedulable.tolist()
        solved = [[None] * lane_count for _ in range(task_count)]
        g = 0
        for lane in range(lane_count):
            for i in range(task_count):
                if g in scalar_done:
                    solved[i][lane] = scalar_done[g]
                elif status_list[g] == _CONVERGED:
                    if g in extra_completions:
                        completions = tuple(extra_completions[g])
                    else:
                        completions = (first_completion[g],)
                    solved[i][lane] = (worst_list[g], True,
                                       bool(schedulable_list[g]),
                                       busy_list[g], iterations_list[g],
                                       completions)
                else:
                    solved[i][lane] = (None, False, False, busy_list[g],
                                       iterations_list[g], ())
                g += 1
        return solved

    def _hand_off_numpy(self, np, n, rows_wcet, rows_period, rows_jitter,
                        rows_deadline, rows_limit, hp_of, idx, done, q, comp,
                        inner, worst, busy, iterations, completions_log,
                        scalar_done):
        """Finish the last straggler columns with the scalar continuation.

        Vector-op overhead on a handful of columns would dominate their long
        busy windows; the lockstep state at a pass boundary is exactly the
        scalar state at that point, so continuing each column scalar keeps
        results bit-identical.
        """
        for pos in np.nonzero(~done)[0].tolist():
            g = int(idx[pos])
            lane, i = divmod(g, n)
            row_w = rows_wcet[lane]
            row_p = rows_period[lane]
            row_j = rows_jitter[lane]
            hp_params = tuple((row_p[j], row_j[j], row_w[j])
                              for j in hp_of[i])
            column_completions = []
            for column_ids, values in completions_log:
                mask = column_ids == g
                if mask.any():
                    column_completions.append(float(values[mask][0]))
            scalar_done[g] = _solve_lane(
                row_w[i], row_p[i], row_j[i], rows_deadline[lane][i],
                rows_limit[lane][i], hp_params, self.max_iterations,
                q=int(q[pos]), worst=float(worst[g]),
                iterations_total=int(iterations[g]),
                busy_window=float(busy[g]), completions=column_completions,
                completion=float(comp[pos]), inner_done=int(inner[pos]))


__all__ = [
    "BatchResponseTimeAnalysis",
    "congruence_signature",
    "numpy_available",
]
