"""E4 (Section IV): ability-graph monitoring of the ACC function.

Regenerates the functional self-awareness behaviour: injected sensor-quality
degradations propagate through the ACC ability graph to the main skill, the
degradation manager reacts, and the monitoring overhead stays negligible.
Includes the propagation-policy ablation (min vs weighted).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.skills.ability import PropagationPolicy
from repro.skills.acc_example import build_acc_ability_graph
from repro.skills.degradation import DegradationManager, OperationalRestriction
from repro.vehicle.environment import Weather
from repro.vehicle.sensors import CameraSensor, RadarSensor


@pytest.mark.benchmark(group="e4-skill-graph")
def test_e4_degradation_detection_and_propagation(benchmark):
    """Camera quality sweep: propagated root ability level and chosen tactic."""
    qualities = [1.0, 0.8, 0.6, 0.4, 0.2, 0.0]

    def sweep():
        results = []
        for quality in qualities:
            graph = build_acc_ability_graph()
            manager = DegradationManager(graph)
            manager.register_restriction(OperationalRestriction(
                "camera_sensor", "rely on radar, increase headway", compensated_score=0.65))
            graph.observe("camera_sensor", quality, time=1.0)
            plan = manager.plan()
            results.append((quality, graph.root_score(), graph.root_level().name,
                            len(plan.actions), plan.requires_safe_stop))
        return results

    results = benchmark(sweep)
    rows = [{"camera_quality": q, "root_score": score, "root_level": level,
             "plan_actions": actions, "safe_stop": stop}
            for q, score, level, actions, stop in results]
    print_table("E4: camera degradation -> ACC ability level and degradation plan", rows)
    scores = [score for _, score, _, _, _ in results]
    assert scores == sorted(scores, reverse=True)
    assert results[0][3] == 0            # healthy: no plan
    assert results[-1][3] >= 1           # failed sensor: tactic selected


@pytest.mark.benchmark(group="e4-skill-graph")
def test_e4_weather_driven_sensor_quality(benchmark):
    """Fog visibility sweep through the actual sensor models feeding the graph."""
    from repro.sim.random import SeededRNG
    from repro.vehicle.environment import Environment, LeadVehicle

    visibilities = [2000.0, 500.0, 150.0, 60.0, 30.0]

    def sweep():
        results = []
        for visibility in visibilities:
            env = Environment(Weather.dense_fog(visibility_m=visibility), SeededRNG(1))
            env.add_lead_vehicle(LeadVehicle("lead", 50.0, 20.0))
            radar = RadarSensor("radar", SeededRNG(2))
            camera = CameraSensor("camera", SeededRNG(3))
            radar.measure(0.0, 0.0, 20.0, env)
            camera.measure(0.0, 0.0, 20.0, env)
            graph = build_acc_ability_graph()
            graph.observe("radar_sensor", radar.last_quality)
            graph.observe("camera_sensor", camera.last_quality)
            results.append((visibility, radar.last_quality, camera.last_quality,
                            graph.root_score()))
        return results

    results = benchmark(sweep)
    rows = [{"visibility_m": v, "radar_quality": r, "camera_quality": c, "root_score": s}
            for v, r, c, s in results]
    print_table("E4: fog visibility -> sensor quality -> root ability", rows)
    root_scores = [s for _, _, _, s in results]
    assert root_scores == sorted(root_scores, reverse=True)
    # Radar stays usable in fog while the camera collapses (sensor diversity).
    assert results[-1][1] > results[-1][2]


@pytest.mark.benchmark(group="e4-skill-graph")
def test_e4_propagation_policy_ablation(benchmark):
    """Ablation: min (weakest link) vs weighted propagation."""
    degradations = {"camera_sensor": 0.6, "radar_sensor": 0.8, "hmi": 0.9}

    def run():
        results = {}
        for policy in PropagationPolicy:
            graph = build_acc_ability_graph(policy=policy)
            for node, score in degradations.items():
                graph.observe(node, score)
            results[policy.value] = graph.root_score()
        return results

    results = benchmark(run)
    rows = [{"policy": name, "root_score": score} for name, score in results.items()]
    print_table("E4 ablation: propagation policy under multiple mild degradations", rows)
    assert results["min"] <= results["weighted"]


@pytest.mark.benchmark(group="e4-skill-graph")
def test_e4_monitoring_update_cost(benchmark):
    """Cost of one full observe-and-propagate cycle (the per-cycle monitoring
    overhead the paper claims is small)."""
    graph = build_acc_ability_graph()

    def one_cycle():
        graph.observe("radar_sensor", 0.9)
        graph.observe("camera_sensor", 0.7)
        graph.observe("braking_system", 0.95)
        return graph.root_score()

    score = benchmark(one_cycle)
    assert 0.0 <= score <= 1.0
