"""Tests for run-time monitoring, deviation detection and enforcement."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.deviation import DeviationDetector, ExpectedBehaviour
from repro.monitoring.enforcement import AccessPolicyEnforcer, BudgetEnforcer, EnforcementAction
from repro.monitoring.metrics import MetricRegistry, MetricSeries
from repro.monitoring.monitors import (
    DeadlineMonitor,
    ExecutionTimeMonitor,
    HeartbeatMonitor,
    MonitorSuite,
    SensorQualityMonitor,
    TemperatureMonitor,
    ValueRangeMonitor,
)


class TestMetricSeries:
    def test_sampling_and_summary(self):
        series = MetricSeries("m")
        for i in range(10):
            series.sample(float(i), float(i))
        summary = series.summary()
        assert summary.count == 10
        assert summary.mean == pytest.approx(4.5)
        assert summary.minimum == 0.0 and summary.maximum == 9.0
        assert series.last == 9.0

    def test_window_eviction(self):
        series = MetricSeries("m", window=5)
        for i in range(10):
            series.sample(float(i), float(i))
        assert len(series) == 5
        assert series.total_samples == 10
        assert series.values() == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_non_monotonic_time_rejected(self):
        series = MetricSeries("m")
        series.sample(1.0, 0.0)
        with pytest.raises(ValueError):
            series.sample(0.5, 0.0)

    def test_empty_summary_is_nan(self):
        assert math.isnan(MetricSeries("m").summary().mean)

    def test_rate(self):
        series = MetricSeries("m")
        for i in range(10):
            series.sample(i * 0.1, 1.0)
        assert series.rate(1.0) == pytest.approx(10.0, rel=0.2)

    def test_summary_since(self):
        series = MetricSeries("m")
        for i in range(10):
            series.sample(float(i), float(i))
        assert series.summary(since=5.0).count == 5

    def test_exceeded(self):
        series = MetricSeries("m")
        series.sample(0.0, 1.0)
        assert series.exceeded(0.5)
        assert not series.exceeded(2.0)


class TestMetricRegistry:
    def test_lazy_series_creation_and_snapshot(self):
        registry = MetricRegistry()
        registry.sample(0.0, "cpu0", "temperature", 50.0)
        registry.sample(1.0, "cpu0", "temperature", 55.0)
        registry.sample(0.0, "radar", "quality", 0.9)
        assert registry.last("cpu0", "temperature") == 55.0
        assert registry.snapshot() == {"cpu0": {"temperature": 55.0}, "radar": {"quality": 0.9}}
        assert set(registry.sources()) == {"cpu0", "radar"}
        assert registry.metrics_of("cpu0") == ["temperature"]
        assert registry.get("nope", "nothing") is None


class TestMonitors:
    def test_heartbeat_monitor_detects_loss(self):
        monitor = HeartbeatMonitor("hb", "platform", timeout=1.0)
        monitor.beat(0.0, "sensor")
        assert monitor.check(0.5) == []
        anomalies = monitor.check(2.0)
        assert len(anomalies) == 1
        assert anomalies[0].anomaly_type == AnomalyType.HEARTBEAT_LOSS

    def test_heartbeat_recovery(self):
        monitor = HeartbeatMonitor("hb", "platform", timeout=1.0)
        monitor.beat(0.0, "sensor")
        monitor.check(2.0)
        monitor.beat(2.1, "sensor")
        assert monitor.check(2.5) == []

    def test_value_range_monitor(self):
        monitor = ValueRangeMonitor("vr", "platform", low=0.0, high=10.0)
        assert monitor.observe(0.0, "s", 5.0) is None
        anomaly = monitor.observe(1.0, "s", 20.0)
        assert anomaly is not None and anomaly.observed == 20.0
        with pytest.raises(ValueError):
            ValueRangeMonitor("bad", "platform", low=1.0, high=0.0)

    def test_execution_time_monitor_budget(self):
        monitor = ExecutionTimeMonitor("wcet")
        monitor.set_budget("task", 0.01)
        assert monitor.observe(0.0, "task", 0.005) is None
        anomaly = monitor.observe(1.0, "task", 0.02)
        assert anomaly.anomaly_type == AnomalyType.BUDGET_OVERRUN
        assert monitor.observe(2.0, "unknown_task", 1.0) is None

    def test_deadline_monitor(self):
        monitor = DeadlineMonitor("dl")
        monitor.set_deadline("task", 0.01)
        assert monitor.observe(0.0, "task", 0.005) is None
        anomaly = monitor.observe(1.0, "task", 0.015)
        assert anomaly.severity == AnomalySeverity.CRITICAL

    def test_temperature_monitor_thresholds(self):
        monitor = TemperatureMonitor("temp", warning_c=85.0, critical_c=100.0)
        assert monitor.observe(0.0, "cpu", 70.0) is None
        assert monitor.observe(1.0, "cpu", 90.0).severity == AnomalySeverity.WARNING
        assert monitor.observe(2.0, "cpu", 101.0).severity == AnomalySeverity.CRITICAL

    def test_sensor_quality_monitor_thresholds(self):
        monitor = SensorQualityMonitor("quality", degraded_threshold=0.7, failed_threshold=0.3)
        assert monitor.observe(0.0, "radar", 0.9) is None
        assert monitor.observe(1.0, "radar", 0.5).severity == AnomalySeverity.WARNING
        assert monitor.observe(2.0, "radar", 0.1).severity == AnomalySeverity.CRITICAL

    def test_disabled_monitor_is_silent(self):
        monitor = TemperatureMonitor("temp")
        monitor.enabled = False
        assert monitor.observe(0.0, "cpu", 200.0) is None

    def test_monitor_suite_drains_sorted(self):
        suite = MonitorSuite()
        temp = suite.add(TemperatureMonitor("temp"))
        quality = suite.add(SensorQualityMonitor("quality"))
        quality.observe(2.0, "radar", 0.1)
        temp.observe(1.0, "cpu", 101.0)
        anomalies = suite.drain()
        assert [a.time for a in anomalies] == [1.0, 2.0]
        assert suite.drain() == []

    def test_monitor_suite_duplicate_name_rejected(self):
        suite = MonitorSuite()
        suite.add(TemperatureMonitor("temp"))
        with pytest.raises(ValueError):
            suite.add(TemperatureMonitor("temp"))


class TestAnomaly:
    def test_deviation_and_escalation(self):
        anomaly = Anomaly(AnomalyType.THERMAL, "cpu", "platform",
                          AnomalySeverity.WARNING, 1.0, observed=90.0, expected=85.0)
        assert anomaly.deviation == pytest.approx(5.0)
        escalated = anomaly.escalate()
        assert escalated.severity == AnomalySeverity.CRITICAL
        assert escalated.escalate().escalate().severity == AnomalySeverity.CATASTROPHIC

    def test_ids_are_unique(self):
        a = Anomaly(AnomalyType.THERMAL, "x", "platform", AnomalySeverity.INFO, 0.0)
        b = Anomaly(AnomalyType.THERMAL, "x", "platform", AnomalySeverity.INFO, 0.0)
        assert a.anomaly_id != b.anomaly_id


class TestDeviationDetector:
    def test_detects_violation_of_expectation(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        detector.expect(ExpectedBehaviour("task", "execution_time", nominal=0.01, tolerance=0.1))
        registry.sample(0.0, "task", "execution_time", 0.0105)
        assert detector.check(0.0) == []
        registry.sample(1.0, "task", "execution_time", 0.02)
        anomalies = detector.check(1.0)
        assert len(anomalies) == 1 and anomalies[0].severity == AnomalySeverity.CRITICAL

    def test_lower_is_worse_expectations(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        detector.expect(ExpectedBehaviour("radar", "quality", nominal=1.0, tolerance=0.2,
                                          higher_is_worse=False))
        registry.sample(0.0, "radar", "quality", 0.9)
        assert detector.check(0.0) == []
        registry.sample(1.0, "radar", "quality", 0.5)
        assert len(detector.check(1.0)) == 1

    def test_refinement_suggestions_for_benign_drift(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        detector.expect(ExpectedBehaviour("task", "execution_time", nominal=0.010, tolerance=0.2))
        for i in range(30):
            registry.sample(float(i), "task", "execution_time", 0.0108)
        suggestions = detector.refinement_suggestions(min_samples=20, drift_threshold=0.05)
        assert ("task", "execution_time") in suggestions
        assert detector.apply_refinements(suggestions) == 1
        assert detector.expectation("task", "execution_time").nominal == pytest.approx(0.0108)

    def test_no_suggestion_when_violating(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        detector.expect(ExpectedBehaviour("task", "execution_time", nominal=0.010, tolerance=0.05))
        for i in range(30):
            registry.sample(float(i), "task", "execution_time", 0.02)
        assert detector.refinement_suggestions() == {}

    def test_observe_records_and_grades_one_sample(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        detector.expect(ExpectedBehaviour("task", "execution_time",
                                          nominal=0.01, tolerance=0.1))
        assert detector.observe(0.0, "task", "execution_time", 0.0105) == []
        anomalies = detector.observe(1.0, "task", "execution_time", 0.05)
        assert len(anomalies) == 1
        assert anomalies[0].subject == "task"
        assert anomalies[0].observed == pytest.approx(0.05)
        # The samples landed in the registry for windowed statistics.
        assert len(registry.get("task", "execution_time")) == 2
        # observe() agrees with a full check() over the same state.
        assert [a.subject for a in detector.check(1.0)] == ["task"]

    def test_observe_without_expectation_only_records(self):
        registry = MetricRegistry()
        detector = DeviationDetector(registry)
        assert detector.observe(0.0, "unknown", "metric", 42.0) == []
        assert registry.last("unknown", "metric") == 42.0


class TestBudgetEnforcer:
    def test_budget_overrun_suspends_task(self):
        enforcer = BudgetEnforcer()
        enforcer.configure("task", budget=0.01, period=0.1)
        assert enforcer.charge(0.0, "task", 0.005) == EnforcementAction.ALLOWED
        assert enforcer.charge(0.01, "task", 0.007) == EnforcementAction.SUSPENDED
        assert enforcer.is_suspended("task", 0.05)
        assert len(enforcer.drain()) == 1

    def test_budget_replenishes_each_period(self):
        enforcer = BudgetEnforcer()
        enforcer.configure("task", budget=0.01, period=0.1)
        enforcer.charge(0.0, "task", 0.02)
        assert enforcer.is_suspended("task", 0.05)
        assert not enforcer.is_suspended("task", 0.15)
        assert enforcer.charge(0.2, "task", 0.005) == EnforcementAction.ALLOWED

    def test_unconfigured_task_unconstrained(self):
        assert BudgetEnforcer().charge(0.0, "x", 100.0) == EnforcementAction.ALLOWED

    def test_invalid_configuration(self):
        enforcer = BudgetEnforcer()
        with pytest.raises(ValueError):
            enforcer.configure("x", budget=0.2, period=0.1)
        with pytest.raises(ValueError):
            enforcer.configure("x", budget=0.0, period=0.1)

    @given(charges=st.lists(st.floats(min_value=0.0, max_value=0.004), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_within_budget_never_suspended(self, charges):
        """Property: a task that stays within its budget per period is never
        suspended (enforcement does not interfere with well-behaved tasks)."""
        enforcer = BudgetEnforcer()
        enforcer.configure("task", budget=0.005, period=0.1)
        for index, charge in enumerate(charges):
            time = index * 0.1  # one charge per replenishment period
            action = enforcer.charge(time, "task", min(charge, 0.0049))
            assert action == EnforcementAction.ALLOWED


class TestAccessPolicyEnforcer:
    def test_whitelist_allows_and_blocks(self):
        enforcer = AccessPolicyEnforcer()
        enforcer.allow("client", "server", "svc")
        assert enforcer.check(0.0, "client", "server", "svc") == EnforcementAction.ALLOWED
        assert enforcer.check(1.0, "client", "other", "svc") == EnforcementAction.BLOCKED
        anomalies = enforcer.drain()
        assert len(anomalies) == 1
        assert anomalies[0].anomaly_type == AnomalyType.ACCESS_VIOLATION

    def test_wildcard_subject(self):
        enforcer = AccessPolicyEnforcer()
        enforcer.allow("a", "b")
        assert enforcer.check(0.0, "a", "b", "anything") == EnforcementAction.ALLOWED

    def test_revoke_all_for_component(self):
        enforcer = AccessPolicyEnforcer()
        enforcer.allow_many([("a", "b", "*"), ("b", "c", "*"), ("c", "d", "*")])
        removed = enforcer.revoke_all_for("b")
        assert removed == 2
        assert enforcer.check(0.0, "a", "b") == EnforcementAction.BLOCKED
        assert enforcer.check(0.0, "c", "d") == EnforcementAction.ALLOWED

    def test_counters(self):
        enforcer = AccessPolicyEnforcer()
        enforcer.allow("a", "b")
        enforcer.check(0.0, "a", "b")
        enforcer.check(0.0, "x", "y")
        assert enforcer.allowed_count == 1 and enforcer.blocked_count == 1
