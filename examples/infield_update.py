#!/usr/bin/env python3
"""In-field integration with the Multi-Change Controller (Section II, Fig. 1).

Deploys a baseline vehicle configuration, then feeds the MCC a stream of
update requests — some benign, some that would overload the platform, expose
an unprotected external interface, or reference services that do not exist —
and shows which updates the automated integration process accepts.

Run with::

    python examples/infield_update.py
"""

from repro.contracts import ContractParser
from repro.experiments import run_scenario
from repro.scenarios.infield_update import baseline_contracts, build_baseline_platform
from repro.mcc import MultiChangeController
from repro.platform import RuntimeEnvironment


def manual_walkthrough() -> None:
    """Hand-written updates that exercise each rejection reason."""
    platform = build_baseline_platform()
    rte = RuntimeEnvironment(platform)
    mcc = MultiChangeController(platform, rte=rte)
    for contract in baseline_contracts():
        mcc.add_component(contract)
    parser = ContractParser()

    updates = [
        ("benign comfort function",
         {"component": "seat_heating", "timing": {"period": 0.5, "wcet": 0.005},
          "safety": {"asil": "QM"}, "security": {"level": "LOW"},
          "provides": ["seat_heating_ctrl"]}),
        ("overloading video pipeline",
         {"component": "video_pipeline", "timing": {"period": 0.02, "wcet": 0.019},
          "safety": {"asil": "QM"}, "security": {"level": "LOW"},
          "provides": ["video_stream"]}),
        ("unprotected external interface",
         {"component": "app_store_client", "timing": {"period": 0.2, "wcet": 0.01},
          "safety": {"asil": "C"},
          "security": {"level": "NONE", "external_interface": True},
          "provides": ["app_install"]}),
        ("dangling service requirement",
         {"component": "parking_assist", "timing": {"period": 0.05, "wcet": 0.005},
          "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
          "requires": [{"service": "ultrasonic_array"}], "provides": ["parking_path"]}),
    ]

    print("== manual update walkthrough ==")
    for label, document in updates:
        report = mcc.add_component(parser.parse(document))
        verdict = "ACCEPTED" if report.accepted else "rejected"
        print(f"\n{label}: {verdict}")
        for finding in report.findings[:3]:
            print(f"    {finding}")
    print(f"\ndeployed configuration version: {mcc.version}, "
          f"components in the RTE: {len(rte.components())}")


def campaign() -> None:
    """A randomized update campaign (the E1 workload) via the scenario registry."""
    print("\n== randomized update campaign (40 requests, 30% risky) ==")
    record = run_scenario("infield_update", num_requests=40, seed=7, risky_fraction=0.3)
    print(f"accepted: {record['accepted']}/{record['total_requests']} "
          f"({record['acceptance_rate']:.0%})")
    print(f"rejections by viewpoint: {record['rejected_by_viewpoint']}")
    print(f"final configuration version: {record['final_version']}, "
          f"deployed components: {record['deployed_components']}")
    print(f"unsafe update slipped through: {record['unsafe_update_accepted']}")


def main() -> None:
    """Run the manual walkthrough, then the randomized campaign."""
    manual_walkthrough()
    campaign()


if __name__ == "__main__":
    main()
