#!/usr/bin/env python3
"""Cooperation under uncertainty: platooning in fog and weather-aware routing.

Two further Section V examples:

* a fog-impaired vehicle joins a platoon led by a better-equipped vehicle and
  agrees on a common speed despite a malicious member, and
* a self-aware route planner decides between a short alpine pass and a longer
  sheltered detour depending on the forecast severity.

Run with::

    python examples/platoon_and_routing.py
"""

from repro.experiments import run_scenario


def platooning() -> None:
    """Platoon agreements at shrinking visibility, via the scenario registry."""
    print("== platooning in dense fog ==")
    for visibility in (200.0, 100.0, 50.0):
        record = run_scenario("fog_platooning", visibility_m=visibility,
                              num_members=5, num_malicious=1)
        agreed = (f"{record['agreed_speed_mps']:.1f}"
                  if record["agreed_speed_mps"] else "n/a")
        benefit = (f"{record['ego_platoon_benefit_mps']:+.1f}"
                   if record["ego_platoon_benefit_mps"] is not None else "n/a")
        print(f"visibility {visibility:5.0f} m: standalone ego speed "
              f"{record['ego_standalone_speed_mps']:5.1f} m/s, platoon speed {agreed} m/s "
              f"(benefit {benefit} m/s, {record['rounds']} consensus rounds, "
              f"agreement error {record['agreement_error_mps']:.2f} m/s)")
    print("(paper: a fog-impaired vehicle can keep driving by joining a platoon, but "
          "agreement must tolerate untrustworthy members)")


def routing() -> None:
    """Severity sweep of the alpine-pass decision, via the scenario registry."""
    print("\n== weather-aware route planning (alpine pass vs detour) ==")
    print(f"{'severity':>9s} {'aware route':>34s} {'km':>6s} {'baseline route':>34s} {'km':>6s}")
    for severity in (0.0, 0.2, 0.4, 0.6, 0.8):
        record = run_scenario("weather_routing", severity=severity)
        aware = " -> ".join(record["aware_route"])
        base = " -> ".join(record["baseline_route"])
        print(f"{record['severity']:9.1f} {aware:>34s} {record['aware_route_km']:6.0f} "
              f"{base:>34s} {record['baseline_route_km']:6.0f}")
    crossover = next((i / 20 for i in range(21)
                      if run_scenario("weather_routing",
                                      severity=i / 20)["aware_takes_detour"]), None)
    print(f"\nthe self-aware planner abandons the alpine pass from severity "
          f"{crossover} onwards; the weather-agnostic baseline never does")


def main() -> None:
    """Run both walkthroughs."""
    platooning()
    routing()


if __name__ == "__main__":
    main()
