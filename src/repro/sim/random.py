"""Seeded random-number utilities.

All stochastic elements in the reproduction (sensor noise, workload
generation, attack timing, weather sampling) draw from a :class:`SeededRNG`
so that every experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class SeededRNG:
    """Thin wrapper around :class:`numpy.random.Generator` with helpers used
    across the library (UUniFast task-set generation, bounded normals)."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def spawn(self, offset: int) -> "SeededRNG":
        """Derive an independent child generator; useful to decouple streams
        (e.g. sensor noise vs attack timing) while keeping determinism."""
        base = 0 if self.seed is None else self.seed
        return SeededRNG(base * 1_000_003 + offset)

    # -- basic draws ------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return int(self._rng.integers(low, high + 1))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def bounded_normal(self, mean: float, std: float, low: float, high: float) -> float:
        """Normal draw clipped to ``[low, high]``; used for physical quantities
        that must stay in a plausible range (sensor quality, temperatures)."""
        return float(np.clip(self._rng.normal(mean, std), low, high))

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        index = int(self._rng.integers(0, len(items)))
        return items[index]

    def shuffle(self, items: Sequence[T]) -> List[T]:
        result = list(items)
        self._rng.shuffle(result)  # type: ignore[arg-type]
        return result

    def bernoulli(self, p: float) -> bool:
        return bool(self._rng.uniform() < p)

    # -- domain-specific helpers -----------------------------------------

    def uunifast(self, n: int, total_utilization: float) -> List[float]:
        """UUniFast: draw ``n`` task utilizations summing to ``total_utilization``.

        Standard workload generator for schedulability experiments (Bini &
        Buttazzo); used by the E9 WCRT acceptance bench and MCC tests.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if total_utilization <= 0:
            raise ValueError("total utilization must be positive")
        utilizations: List[float] = []
        remaining = total_utilization
        for i in range(1, n):
            next_remaining = remaining * self._rng.uniform() ** (1.0 / (n - i))
            utilizations.append(remaining - next_remaining)
            remaining = next_remaining
        utilizations.append(remaining)
        return utilizations

    def log_uniform_periods(self, n: int, low: float, high: float) -> List[float]:
        """Periods drawn log-uniformly in ``[low, high]`` (common in timing
        analysis experiments so that period magnitudes spread over decades)."""
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        lo, hi = np.log(low), np.log(high)
        return [float(np.exp(self._rng.uniform(lo, hi))) for _ in range(n)]


def derive_seed(base: int, *components: object) -> int:
    """Derive a deterministic child seed from a base seed and a run identity.

    The experiment runner uses this to give every run of a sweep its own
    independent-but-reproducible seed: the derivation depends only on the
    base seed and the hashable identity components (e.g. the spec name and
    the run index), never on process or scheduling order, so serial and
    parallel executions of the same sweep draw identical random streams.
    """
    text = repr((int(base),) + components).encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)
