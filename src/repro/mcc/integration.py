"""The automated model-based integration process.

"Similar to the conventional V-model development process, the MCC gradually
refines the model representation of the new system configuration during the
integration process." (Section II.A)

The refinement steps implemented here:

1. **Contract validation** — internal consistency of every contract and
   completeness of the service architecture (functional architecture level).
2. **Mapping** — components are fitted to the target platform (technical
   architecture level) and priorities/budgets assigned (implementation
   level).
3. **Acceptance testing** — every viewpoint analysis must pass.
4. **Configuration synthesis** — an :class:`~repro.platform.rte.RteConfiguration`
   is produced for the execution domain.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.mcc.acceptance import (AcceptanceTest, default_acceptance_tests,
                                  tasksets_from_mapping)
from repro.mcc.configuration import ChangeRequest, IntegrationReport, SystemModel
from repro.mcc.mapping import MappingEngine, MappingError, MappingStrategy
from repro.platform.resources import Platform
from repro.platform.rte import RteConfiguration
from repro.platform.tasks import TaskSet


class IntegrationError(RuntimeError):
    """Raised when the integration process itself fails (not a rejection)."""


class IntegrationProcess:
    """Runs the stepwise refinement for one candidate model."""

    def __init__(self, platform: Platform,
                 acceptance_tests: Optional[List[AcceptanceTest]] = None,
                 mapping_strategy: MappingStrategy = MappingStrategy.FIRST_FIT,
                 analysis_cache: Optional[AnalysisCache] = None) -> None:
        self.platform = platform
        self.acceptance_tests = (acceptance_tests if acceptance_tests is not None
                                 else default_acceptance_tests(cache=analysis_cache))
        self.mapping_engine = MappingEngine(platform, strategy=mapping_strategy)

    def integrate(self, candidate: SystemModel, request: ChangeRequest) -> IntegrationReport:
        """Run the full refinement on a candidate model.

        The candidate is mutated (mapping/priorities are filled in) but the
        caller decides whether to adopt it based on ``report.accepted``.
        """
        report = IntegrationReport(request_id=request.request_id)

        # Step 1: functional architecture — validate contracts and service
        # completeness.
        problems: List[str] = []
        for contract in candidate.contracts():
            problems.extend(contract.validate())
        problems.extend(f"missing provider for {entry}" for entry in candidate.missing_services())
        report.add_step("functional-architecture",
                        "validate contracts and service completeness",
                        problems=list(problems))
        if problems:
            report.findings.extend(problems)
            report.accepted = False
            return report

        # Step 2: technical architecture — map components to the platform.
        try:
            decision = self.mapping_engine.map(candidate.contracts(),
                                               existing=candidate.mapping)
        except MappingError as exc:
            report.add_step("technical-architecture", "mapping failed", error=str(exc))
            report.findings.append(str(exc))
            report.accepted = False
            return report
        candidate.mapping = decision.placement
        candidate.priorities = decision.priorities
        report.add_step("technical-architecture",
                        "map components to processing resources",
                        placement=dict(decision.placement),
                        utilization=dict(decision.utilization))

        # Step 3: implementation model — priorities were assigned during
        # mapping; record them explicitly as their own refinement step.
        report.add_step("implementation-model",
                        "assign scheduling priorities (deadline monotonic per resource)",
                        priorities=dict(decision.priorities))

        # Step 4: acceptance tests for every viewpoint.
        all_passed = True
        for test in self.acceptance_tests:
            result = test.run(candidate.contracts(), candidate.mapping,
                              candidate.priorities, self.platform)
            report.acceptance_results[test.viewpoint] = result.passed
            report.findings.extend(f"[{test.viewpoint}] {finding}" for finding in result.findings
                                   if not result.passed)
            all_passed = all_passed and result.passed
        report.add_step("acceptance-tests", "run viewpoint analyses",
                        results=dict(report.acceptance_results))

        report.accepted = all_passed
        return report

    def preview_tasksets(self, model: SystemModel,
                         request: ChangeRequest) -> Optional[Dict[str, TaskSet]]:
        """The per-processor task sets the timing acceptance test *would*
        analyse for ``request`` applied to ``model``.

        Runs the same candidate construction, validation and mapping steps as
        :meth:`integrate` on a scratch copy, without any acceptance test.
        Returns ``None`` when the request would be rejected before the
        acceptance phase (invalid change, contract problems, mapping
        failure).  Batched admission uses this to warm a shared
        :class:`~repro.analysis.cache.AnalysisCache` for a whole wave of
        requests before the individual integrations run — the fingerprints
        match because the derivation is identical.
        """
        candidate = model.candidate()
        try:
            candidate.apply_change(request)
        except (ValueError, KeyError):
            return None
        for contract in candidate.contracts():
            if contract.validate():
                return None
        if candidate.missing_services():
            return None
        try:
            decision = self.mapping_engine.map(candidate.contracts(),
                                               existing=candidate.mapping)
        except MappingError:
            return None
        return tasksets_from_mapping(candidate.contracts(), decision.placement,
                                     decision.priorities)

    def synthesize_configuration(self, model: SystemModel, version: int) -> RteConfiguration:
        """Produce the deployable configuration from an accepted model."""
        if model.unmapped_components():
            raise IntegrationError(
                f"model has unmapped components: {model.unmapped_components()}")
        return RteConfiguration(version=version, contracts=model.contracts(),
                                mapping=dict(model.mapping),
                                priorities=dict(model.priorities))
