"""Cooperative platooning with trust and agreement (Section V).

"Building a platoon with other vehicles can be beneficial in scenarios where
the vehicles are differently suited for driving in certain weather
conditions. ... agreeing on a common velocity or a minimum distance between
vehicles in a platoon is an essential but non-trivial problem as the
communication to or the platform of another vehicle might not be fully
trustworthy or even compromised."
"""

from repro.platooning.trust import TrustModel, TrustLevel
from repro.platooning.consensus import (
    ConsensusProtocol,
    ConsensusResult,
    Proposal,
    median_consensus,
)
from repro.platooning.platoon import Platoon, PlatoonMember, PlatoonError

__all__ = [
    "TrustModel",
    "TrustLevel",
    "ConsensusProtocol",
    "ConsensusResult",
    "Proposal",
    "median_consensus",
    "Platoon",
    "PlatoonMember",
    "PlatoonError",
]
