"""Security layer: intrusion detection, access control and attack injection.

Section V's cross-layer example starts from "monitoring communication
behavior, the system itself is capable of detecting components or subsystems
affected by a security leak".  This package provides the communication-
behaviour intrusion detection system, the distributed access-control
configuration derived from the deployed contracts, and attack injectors used
by the scenarios and benchmarks.
"""

from repro.security.ids import IntrusionDetectionSystem, IdsRule, IntrusionAlert
from repro.security.access_control import AccessControlConfig, build_policy_from_registry
from repro.security.attacks import (
    Attack,
    MessageInjectionAttack,
    ComponentCompromiseAttack,
    FloodingAttack,
    AttackInjector,
)

__all__ = [
    "IntrusionDetectionSystem",
    "IdsRule",
    "IntrusionAlert",
    "AccessControlConfig",
    "build_policy_from_registry",
    "Attack",
    "MessageInjectionAttack",
    "ComponentCompromiseAttack",
    "FloodingAttack",
    "AttackInjector",
]
