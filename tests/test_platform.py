"""Tests for the execution-domain substrate (repro.platform)."""

from __future__ import annotations

import pytest

from repro.contracts.model import RealTimeRequirement
from repro.platform.components import Component, ComponentError, ComponentRegistry, MicroServer
from repro.platform.resources import (
    MemoryPool,
    NetworkResource,
    Platform,
    ProcessingResource,
    ResourceError,
)
from repro.platform.tasks import Task, TaskError, TaskSet
from repro.platform.thermal import DvfsGovernor, OperatingPoint, ThermalModel
from repro.contracts.model import Contract


class TestTask:
    def test_deadline_defaults_to_period(self):
        task = Task("t", period=0.01, wcet=0.002)
        assert task.deadline == 0.01
        assert task.utilization == pytest.approx(0.2)

    def test_invalid_parameters(self):
        with pytest.raises(TaskError):
            Task("t", period=0, wcet=0.001)
        with pytest.raises(TaskError):
            Task("t", period=0.01, wcet=0)
        with pytest.raises(TaskError):
            Task("t", period=0.01, wcet=0.001, jitter=-1)

    def test_from_requirement(self):
        requirement = RealTimeRequirement(period=0.05, wcet=0.01, jitter=0.001)
        task = Task.from_requirement("comp.task", requirement, priority=3, component="comp")
        assert task.period == 0.05 and task.priority == 3 and task.component == "comp"

    def test_scaled_wcet(self):
        task = Task("t", period=0.01, wcet=0.002)
        slowed = task.scaled(2.0)
        assert slowed.wcet == pytest.approx(0.004)
        assert task.wcet == pytest.approx(0.002)
        with pytest.raises(TaskError):
            task.scaled(0.0)


class TestTaskSet:
    def test_add_and_duplicate_rejected(self, simple_taskset):
        assert len(simple_taskset) == 3
        with pytest.raises(TaskError):
            simple_taskset.add(Task("t_high", period=0.1, wcet=0.01))

    def test_utilization_sum(self, simple_taskset):
        assert simple_taskset.utilization == pytest.approx(0.2 + 0.25 + 0.2)

    def test_priority_ordering_helpers(self, simple_taskset):
        ordered = simple_taskset.by_priority()
        assert [t.name for t in ordered] == ["t_high", "t_mid", "t_low"]
        low = simple_taskset.get("t_low")
        assert {t.name for t in simple_taskset.higher_priority_than(low)} == {"t_high", "t_mid"}

    def test_rate_monotonic_assignment(self):
        ts = TaskSet([Task("slow", period=0.1, wcet=0.01, priority=0),
                      Task("fast", period=0.01, wcet=0.001, priority=5)])
        ts.assign_rate_monotonic_priorities()
        assert ts.get("fast").priority < ts.get("slow").priority

    def test_deadline_monotonic_assignment(self):
        ts = TaskSet([Task("a", period=0.1, wcet=0.01, deadline=0.02),
                      Task("b", period=0.05, wcet=0.01, deadline=0.05)])
        ts.assign_deadline_monotonic_priorities()
        assert ts.get("a").priority < ts.get("b").priority

    def test_hyperperiod(self):
        ts = TaskSet([Task("a", period=0.010, wcet=0.001),
                      Task("b", period=0.025, wcet=0.001)])
        assert ts.hyperperiod() == pytest.approx(0.05, rel=1e-3)

    def test_remove_and_unknown(self, simple_taskset):
        simple_taskset.remove("t_mid")
        assert "t_mid" not in simple_taskset
        with pytest.raises(TaskError):
            simple_taskset.remove("t_mid")
        with pytest.raises(TaskError):
            simple_taskset.get("nope")


class TestProcessingResource:
    def test_host_and_utilization(self, simple_taskset):
        cpu = ProcessingResource("cpu0")
        for task in simple_taskset:
            cpu.host(task)
        assert cpu.nominal_utilization == pytest.approx(0.65)
        assert cpu.fits(Task("extra", period=0.1, wcet=0.02))
        assert not cpu.fits(Task("huge", period=0.1, wcet=0.05))

    def test_speed_factor_scales_utilization(self, simple_taskset):
        cpu = ProcessingResource("cpu0")
        for task in simple_taskset:
            cpu.host(task)
        cpu.set_speed_factor(0.5)
        assert cpu.utilization == pytest.approx(1.3)
        assert cpu.effective_taskset().get("t_high").wcet == pytest.approx(0.004)

    def test_invalid_speed_factor(self):
        cpu = ProcessingResource("cpu0")
        with pytest.raises(ResourceError):
            cpu.set_speed_factor(0.0)
        with pytest.raises(ResourceError):
            cpu.set_speed_factor(1.5)

    def test_memory_allocation_bounds(self):
        cpu = ProcessingResource("cpu0", memory_kib=100)
        cpu.allocate_memory("a", 60)
        with pytest.raises(ResourceError):
            cpu.allocate_memory("b", 50)
        assert cpu.release_memory("a") == 60
        cpu.allocate_memory("b", 50)
        assert cpu.memory_allocated_kib == 50

    def test_invalid_capacity(self):
        with pytest.raises(ResourceError):
            ProcessingResource("cpu0", capacity=0.0)
        with pytest.raises(ResourceError):
            ProcessingResource("cpu0", capacity=1.5)


class TestNetworkAndMemory:
    def test_network_allocation(self):
        net = NetworkResource("can0", bandwidth_bps=1000)
        net.allocate("flow1", 600)
        assert net.utilization == pytest.approx(0.6)
        with pytest.raises(ResourceError):
            net.allocate("flow2", 500)
        net.release("flow1")
        net.allocate("flow2", 500)

    def test_memory_pool_partitions(self):
        pool = MemoryPool("ram", size_kib=100)
        pool.carve("a", 40)
        with pytest.raises(ResourceError):
            pool.carve("a", 10)
        with pytest.raises(ResourceError):
            pool.carve("b", 70)
        assert pool.available_kib == 60
        pool.free("a")
        assert pool.available_kib == 100


class TestPlatform:
    def test_symmetric_constructor(self):
        platform = Platform.symmetric(4)
        assert len(platform.processors()) == 4
        with pytest.raises(ResourceError):
            Platform.symmetric(0)

    def test_duplicate_names_rejected(self, dual_core_platform):
        with pytest.raises(ResourceError):
            dual_core_platform.add_processor(ProcessingResource("cpu0"))
        with pytest.raises(ResourceError):
            dual_core_platform.add_network(NetworkResource("can0", 1))

    def test_find_task(self, dual_core_platform, simple_taskset):
        cpu0 = dual_core_platform.processor("cpu0")
        cpu0.host(simple_taskset.get("t_high"))
        assert dual_core_platform.find_task("t_high") is cpu0
        assert dual_core_platform.find_task("missing") is None

    def test_unknown_lookups_raise(self, dual_core_platform):
        with pytest.raises(ResourceError):
            dual_core_platform.processor("cpu9")
        with pytest.raises(ResourceError):
            dual_core_platform.network("eth0")


class TestComponents:
    def _contract(self, name, provides=(), requires=()):
        contract = Contract(name)
        for service in provides:
            contract.add_provided_service(service)
        for service in requires:
            contract.add_required_service(service)
        return contract

    def test_lifecycle(self):
        component = Component(self._contract("c"))
        component.start()
        assert component.running
        component.degrade(0.5)
        assert component.state.value == "degraded"
        component.degrade(1.0)
        assert component.state.value == "running"
        component.stop()
        assert not component.running

    def test_quarantine_blocks_restart(self):
        component = Component(self._contract("c"))
        component.start()
        component.quarantine()
        with pytest.raises(ComponentError):
            component.start()

    def test_invalid_health(self):
        component = Component(self._contract("c"))
        with pytest.raises(ComponentError):
            component.degrade(1.5)

    def test_micro_server_grant(self):
        server = MicroServer(self._contract("srv", provides=["svc"]))
        client = Component(self._contract("cli", requires=["svc"]))
        session = server.grant(client, "svc")
        assert session.active and session in client.sessions
        with pytest.raises(ComponentError):
            server.grant(client, "other")

    def test_registry_connect_and_autowire(self):
        registry = ComponentRegistry()
        registry.add(Component(self._contract("srv", provides=["svc"])))
        registry.add(Component(self._contract("cli", requires=["svc"])))
        sessions = registry.autowire()
        assert len(sessions) == 1
        assert registry.active_sessions()[0].provider == "srv"
        # autowire is idempotent
        assert registry.autowire() == []

    def test_autowire_missing_provider_raises(self):
        registry = ComponentRegistry()
        registry.add(Component(self._contract("cli", requires=["missing"])))
        with pytest.raises(ComponentError):
            registry.autowire()

    def test_autowire_skips_optional_missing(self):
        registry = ComponentRegistry()
        contract = Contract("cli")
        contract.add_required_service("missing", optional=True)
        registry.add(Component(contract))
        assert registry.autowire() == []

    def test_ambiguous_provider_raises(self):
        registry = ComponentRegistry()
        registry.add(Component(self._contract("srv1", provides=["svc"])))
        registry.add(Component(self._contract("srv2", provides=["svc"])))
        registry.add(Component(self._contract("cli", requires=["svc"])))
        with pytest.raises(ComponentError):
            registry.autowire()

    def test_revoke_sessions(self):
        registry = ComponentRegistry()
        registry.add(Component(self._contract("srv", provides=["svc"])))
        registry.add(Component(self._contract("cli", requires=["svc"])))
        registry.autowire()
        assert registry.revoke_sessions("srv") == 1
        assert registry.active_sessions() == []

    def test_duplicate_component_rejected(self):
        registry = ComponentRegistry()
        registry.add(Component(self._contract("c")))
        with pytest.raises(ComponentError):
            registry.add(Component(self._contract("c")))


class TestThermal:
    def test_temperature_approaches_steady_state(self):
        cpu = ProcessingResource("cpu0")
        model = ThermalModel(cpu, ambient_c=30.0, delta_t_max=50.0, time_constant_s=10.0)
        for _ in range(200):
            model.step(1.0, utilization=1.0, power_factor=1.0)
        assert model.temperature_c == pytest.approx(80.0, abs=0.5)

    def test_idle_core_stays_at_ambient(self):
        cpu = ProcessingResource("cpu0")
        model = ThermalModel(cpu, ambient_c=30.0)
        for _ in range(50):
            model.step(1.0, utilization=0.0)
        assert model.temperature_c == pytest.approx(30.0, abs=0.1)

    def test_governor_throttles_and_recovers(self):
        cpu = ProcessingResource("cpu0")
        governor = DvfsGovernor(cpu, throttle_threshold_c=85.0, recover_threshold_c=70.0)
        governor.update(90.0)
        assert cpu.condition.speed_factor < 1.0
        # Falling temperatures do not trigger further throttling.
        governor.update(88.0)
        assert governor.current.speed_factor == pytest.approx(0.8)
        governor.update(60.0)
        assert cpu.condition.speed_factor == pytest.approx(1.0)

    def test_governor_does_not_overthrottle_while_falling(self):
        cpu = ProcessingResource("cpu0")
        governor = DvfsGovernor(cpu)
        governor.update(90.0)
        governor.update(89.0)
        governor.update(88.0)
        assert governor.current.speed_factor == pytest.approx(0.8)

    def test_governor_force_and_critical(self):
        cpu = ProcessingResource("cpu0")
        governor = DvfsGovernor(cpu)
        governor.force("throttle-60")
        assert cpu.condition.speed_factor == pytest.approx(0.6)
        with pytest.raises(ValueError):
            governor.force("warp-speed")
        assert governor.is_critical(200.0)

    def test_invalid_thresholds(self):
        cpu = ProcessingResource("cpu0")
        with pytest.raises(ValueError):
            DvfsGovernor(cpu, throttle_threshold_c=70.0, recover_threshold_c=80.0)
        with pytest.raises(ValueError):
            OperatingPoint("bad", 1.5, 0.5)
