"""E5 (Section V): cross-layer handling of the compromised rear-brake component.

Regenerates the paper's running example as a quantitative comparison of
arbitration policies: the cross-layer approach (containment on the
communication layer + redundancy on the safety layer + speed restriction on
the ability layer) keeps the vehicle fail-operational, whereas the
escalate-everything baseline stops the vehicle and the local-only baseline
leaves the functional consequences unhandled.

All runs drive through the scenario registry (``repro.experiments``).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.experiments import run_scenario


POLICIES = ["lowest_adequate", "local_only", "always_escalate"]


@pytest.mark.benchmark(group="e5-cross-layer-intrusion")
def test_e5_policy_comparison(benchmark):
    """The E5 table: one intrusion run per arbitration policy."""

    def run_all():
        return {policy: run_scenario("intrusion", policy=policy, attack_time_s=4.0,
                                     duration_s=30.0, seed=2)
                for policy in POLICIES}

    records = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for policy, record in records.items():
        rows.append({
            "policy": policy,
            "fail_operational": record["fail_operational"],
            "safe_stop": record["safe_stop_requested"],
            "avg_speed_after_mps": record["average_speed_after_attack_mps"],
            "final_speed_mps": record["final_speed_mps"],
            "detection_delay_s": record["detection_delay_s"]
            if record["detection_delay_s"] is not None else -1,
            "time_to_mitigation_s": record["time_to_mitigation_s"]
            if record["time_to_mitigation_s"] is not None else -1,
            "layers_involved": record["layers_involved"],
            "braking_capability": record["braking_capability_after"],
        })
    print_table("E5: rear-brake intrusion, arbitration-policy comparison", rows)

    cross = records["lowest_adequate"]
    escalate = records["always_escalate"]
    # Shape: the cross-layer policy keeps the vehicle driving at a reduced but
    # useful speed; escalating everything to the objective layer stops it.
    assert cross["fail_operational"] and not cross["safe_stop_requested"]
    assert escalate["safe_stop_requested"]
    assert (cross["average_speed_after_attack_mps"]
            > escalate["average_speed_after_attack_mps"])
    assert cross["layers_involved"] >= 2
    # Containment happened in both cases (the leak itself is always stopped).
    assert cross["braking_capability_after"] < 1.0


@pytest.mark.benchmark(group="e5-cross-layer-intrusion")
def test_e5_attack_time_sweep(benchmark):
    """Mitigation latency is independent of when the attack starts."""
    attack_times = [2.0, 6.0, 10.0]

    def sweep():
        return [run_scenario("intrusion", policy="lowest_adequate",
                             attack_time_s=t, duration_s=t + 15.0, seed=4)
                for t in attack_times]

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"attack_time_s": t,
             "detection_delay_s": r["detection_delay_s"],
             "time_to_mitigation_s": r["time_to_mitigation_s"],
             "fail_operational": r["fail_operational"]}
            for t, r in zip(attack_times, records)]
    print_table("E5: mitigation latency vs attack onset time", rows)
    assert all(r["fail_operational"] for r in records)
    assert all(r["time_to_mitigation_s"] is not None and r["time_to_mitigation_s"] <= 1.0
               for r in records)
