"""Command-line interface: ``python -m repro.experiments <command>``.

Commands
--------
``list``
    Show the registered scenarios (with their knobs and defaults) and the
    built-in sweep suite.
``run``
    Execute the built-in suite or a JSON spec file, serially or in a
    process pool; print per-experiment summary tables and optionally write
    the structured results to a JSON file.
``compare``
    Diff two result files produced by ``run --output`` and report every
    metric that changed.
``cache-bench``
    Measure the speedup of the CPA memoization cache on a repeated
    acceptance sweep (the same update campaigns with and without a shared
    :class:`~repro.analysis.cache.AnalysisCache`).
``bench-history``
    Tabulate the machine-readable ``BENCH_*.json`` records the benchmark
    suite writes (speedups, wall times, counters) across runs; ``--json``
    additionally writes the headline trajectory as a JSON document.
``report``
    Render the static HTML fleet dashboard from campaign result files
    (``run --output``), tracer JSONL files and the benchmark records —
    self-contained, offline, zero third-party dependencies.
``serve``
    Drive the multi-tenant fleet admission service
    (:class:`~repro.service.admission.AdmissionService`) through a
    synthetic workload: N tenants submit M campaigns each, wave progress
    streams to the console, and a throughput summary (admissions/sec)
    closes the run.  The service is in-process — the typed
    request/response schemas of :mod:`repro.service.schemas` *are* the
    API; see ``docs/SERVICE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.aggregate import diff_records, format_table, summarize_result
from repro.experiments.registry import SCENARIOS
from repro.experiments.runner import ExperimentResult, Runner, RunRecord
from repro.experiments.spec import ExperimentSpec, SpecError, builtin_specs


def _cmd_list(args: argparse.Namespace) -> int:
    print("Registered scenarios:")
    for scenario in sorted(SCENARIOS, key=lambda s: s.name):
        print(f"\n  {scenario.name} — {scenario.summary}")
        for parameter in scenario.parameters:
            print(f"    {parameter.name:<18} default={parameter.default!r:<16} "
                  f"{parameter.description}")
    print("\nBuilt-in sweep suite (run with `python -m repro.experiments run`):")
    for spec in builtin_specs():
        print(f"  {spec.name:<20} scenario={spec.scenario:<16} "
              f"runs={spec.num_runs():<3} {spec.description}")
    return 0


def _load_specs(path: Optional[str]) -> List[ExperimentSpec]:
    """Load specs from a JSON file (one spec object or a list of them), or
    fall back to the built-in suite."""
    if path is None:
        return builtin_specs()
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    documents = document if isinstance(document, list) else [document]
    return [ExperimentSpec.from_dict(entry) for entry in documents]


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        specs = _load_specs(args.spec)
        for spec in specs:
            spec.validate()
        runner = Runner(parallel=args.parallel, workers=args.workers)
    except (SpecError, ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results: List[ExperimentResult] = []
    total_runs = 0
    for spec in specs:
        result = runner.run(spec)
        results.append(result)
        total_runs += len(result.records)
        mode = f"parallel x{result.workers}" if result.parallel else "serial"
        print(f"\n[{spec.name}] scenario={spec.scenario} runs={len(result.records)} "
              f"({mode}, {result.wall_time_s:.2f} s wall)")
        failed = [record for record in result.records if not record.ok]
        for record in failed:
            print(f"  FAILED {record.run_id}: {record.error}")
        print(format_table(f"{spec.name}: metric summary", summarize_result(result)))
    scenarios = sorted({result.spec.scenario for result in results})
    print(f"\ntotal: {total_runs} runs over {len(scenarios)} scenarios "
          f"({', '.join(scenarios)})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump([result.to_dict() for result in results], handle,
                      sort_keys=True, indent=2)
        print(f"results written to {args.output}")
    return 0 if all(result.ok() for result in results) else 1


def _records_from_result_file(path: str) -> List[Dict[str, Any]]:
    """Flatten a ``run --output`` file into a list of record dictionaries."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    records: List[Dict[str, Any]] = []
    for result in document:
        records.extend(result.get("records", []))
    return records


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baseline = _records_from_result_file(args.baseline)
        current_dicts = _records_from_result_file(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    current = [RunRecord(run_id=entry["run_id"], experiment=entry["experiment"],
                         scenario=entry["scenario"], index=entry["index"],
                         params=entry.get("params", {}),
                         metrics=entry.get("metrics", {}),
                         error=entry.get("error"))
               for entry in current_dicts]
    rows = diff_records(baseline, current, tolerance=args.tolerance)
    if not rows:
        print(f"no metric differences between {args.baseline} and {args.current} "
              f"({len(current)} runs compared)")
        return 0
    print(format_table(f"differences: {args.baseline} vs {args.current}", rows))
    return 1


def _cmd_cache_bench(args: argparse.Namespace) -> int:
    from repro.analysis.cache import AnalysisCache
    from repro.analysis.cpa import ResponseTimeAnalysis
    from repro.platform.tasks import Task, TaskSet
    from repro.scenarios.infield_update import run_infield_update_scenario
    from repro.sim.random import SeededRNG

    rows = []

    # Part 1: the timing acceptance test itself (the paper's archetypal MCC
    # acceptance test, E9).  An acceptance sweep re-validates the same
    # candidate task sets over and over (grid repetitions, regression
    # re-runs, per-change re-analysis of unchanged processors); without a
    # cache every re-validation re-derives an identical busy-window fixpoint.
    def make_taskset(seed: int, n: int, utilization: float) -> TaskSet:
        rng = SeededRNG(seed)
        utilizations = rng.uunifast(n, utilization)
        periods = rng.log_uniform_periods(n, 0.005, 0.5)
        taskset = TaskSet()
        for index, (u, period) in enumerate(zip(utilizations, periods)):
            taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
        taskset.assign_deadline_monotonic_priorities()
        return taskset

    tasksets = [make_taskset(seed, args.tasks, utilization)
                for seed in range(args.distinct)
                for utilization in (0.6, 0.75, 0.9)]

    def wcrt_sweep(cache: Optional[AnalysisCache]) -> float:
        started = time.perf_counter()
        for _ in range(args.repeats):
            for taskset in tasksets:
                if cache is not None:
                    cache.schedulable(taskset)
                else:
                    ResponseTimeAnalysis(taskset).schedulable()
        return time.perf_counter() - started

    wcrt_sweep(None)  # warm-up
    cold = min(wcrt_sweep(None) for _ in range(3))
    cache = AnalysisCache()
    warm_times = []
    for _ in range(3):
        cache.clear()
        warm_times.append(wcrt_sweep(cache))
    warm = min(warm_times)
    rows.append({
        "sweep": f"WCRT acceptance ({len(tasksets)} task sets x {args.repeats})",
        "uncached_s": cold,
        "cached_s": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": cache.hit_rate,
    })

    # Part 2: full MCC update campaigns sharing one cache — end-to-end
    # effect when timing is only one of four viewpoints.
    def campaign_sweep(cache: Optional[AnalysisCache]) -> float:
        started = time.perf_counter()
        for index in range(args.campaigns):
            run_infield_update_scenario(num_requests=args.requests,
                                        seed=index % args.distinct,
                                        risky_fraction=0.3, deploy=False,
                                        analysis_cache=cache,
                                        use_analysis_cache=cache is not None)
        return time.perf_counter() - started

    campaign_sweep(None)  # warm-up
    cold = min(campaign_sweep(None) for _ in range(3))
    cache = AnalysisCache()
    warm_times = []
    for _ in range(3):
        cache.clear()
        warm_times.append(campaign_sweep(cache))
    warm = min(warm_times)
    rows.append({
        "sweep": f"MCC campaigns ({args.campaigns} x {args.requests} requests)",
        "uncached_s": cold,
        "cached_s": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "hits": cache.hits,
        "misses": cache.misses,
        "hit_rate": cache.hit_rate,
    })

    print(format_table("CPA memoization on repeated acceptance sweeps", rows))
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.experiments.bench_history import (bench_history_rows,
                                                 bench_trajectory,
                                                 compare_bench_records,
                                                 load_bench_records)

    directory = Path(args.dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    records, skipped = load_bench_records(str(directory))
    for name in skipped:
        print(f"warning: skipping unparseable record {name}", file=sys.stderr)
    if args.json is not None:
        # Written even when empty: a trajectory consumer prefers an explicit
        # zero-series document over a missing file.
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(bench_trajectory(records), handle, sort_keys=True,
                      indent=2)
        print(f"trajectory written to {args.json}")
    if not records:
        print(f"no BENCH_*.json records under {directory}")
        return 0
    print(format_table(f"benchmark history ({directory})",
                       bench_history_rows(records)))
    if args.baseline is not None:
        baseline_dir = Path(args.baseline)
        if not baseline_dir.is_dir():
            print(f"error: baseline {baseline_dir} is not a directory",
                  file=sys.stderr)
            return 2
        baseline, baseline_skipped = load_bench_records(str(baseline_dir))
        for name in baseline_skipped:
            print(f"warning: skipping unparseable baseline record {name}",
                  file=sys.stderr)
        regressions = compare_bench_records(records, baseline,
                                            tolerance=args.tolerance)
        if regressions:
            print(format_table(
                f"headline regressions vs {baseline_dir} "
                f"(tolerance {args.tolerance:.0%})", regressions))
            if args.fail_on_regression:
                print(f"error: {len(regressions)} headline metric(s) "
                      f"regressed more than {args.tolerance:.0%} below the "
                      "baseline", file=sys.stderr)
                return 1
        else:
            print(f"no headline regressions vs {baseline_dir} "
                  f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.bench_history import load_bench_records
    from repro.observability.dashboard import (flatten_result_documents,
                                               render_dashboard)
    from repro.observability.tracer import TraceError, load_trace

    run_records: List[Dict[str, Any]] = []
    for path in args.results or []:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read results {path}: {exc}", file=sys.stderr)
            return 2
        run_records.extend(flatten_result_documents([document]))
    trace: List[Dict[str, Any]] = []
    for path in args.trace or []:
        try:
            trace.extend(load_trace(path))
        except TraceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    bench_records: List[Dict[str, Any]] = []
    bench_dir = Path(args.bench_dir)
    if bench_dir.is_dir():
        bench_records, skipped = load_bench_records(str(bench_dir))
        for name in skipped:
            print(f"warning: skipping unparseable record {name}",
                  file=sys.stderr)
    page = render_dashboard(run_records=run_records, trace=trace,
                            bench_records=bench_records, title=args.title)
    output = Path(args.output)
    if output.parent != Path(""):
        output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(page, encoding="utf-8")
    print(f"dashboard written to {output} ({len(run_records)} run records, "
          f"{len(trace)} trace events, {len(bench_records)} bench records)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.service import AdmissionService, SubmitCampaign

    async def drive(store_dir: Optional[str]) -> Dict[str, Any]:
        started = time.perf_counter()
        async with AdmissionService(store_dir=store_dir,
                                    slots=args.slots) as service:
            receipts = []
            for tenant_index in range(args.tenants):
                tenant = f"tenant-{tenant_index}"
                for campaign_index in range(args.campaigns):
                    receipts.append(await service.submit(SubmitCampaign(
                        tenant=tenant, fleet_size=args.fleet_size,
                        seed=campaign_index,
                        num_variants=args.variants)))
            statuses = [await service.wait(receipt.job_id)
                        for receipt in receipts]
        wall = time.perf_counter() - started
        admitted = sum(status.admitted for status in statuses)
        waves = sum(status.waves_executed for status in statuses)
        for status in statuses:
            print(f"  {status.job_id:<14} {status.state:<10} "
                  f"waves={status.waves_executed:<3} "
                  f"admitted={status.admitted:<4} "
                  f"coverage={status.update_coverage:.0%}")
        return {"jobs": len(statuses), "waves": waves, "admitted": admitted,
                "wall_s": wall,
                "admissions_per_s": admitted / wall if wall > 0 else 0.0}

    print(f"admission service: {args.tenants} tenant(s) x {args.campaigns} "
          f"campaign(s), fleets of {args.fleet_size}, {args.slots} slot(s)")
    if args.store is not None:
        summary = asyncio.run(drive(args.store))
    elif args.no_store:
        summary = asyncio.run(drive(None))
    else:
        with tempfile.TemporaryDirectory(prefix="repro_store_") as store_dir:
            summary = asyncio.run(drive(store_dir))
    print(f"\n{summary['jobs']} campaigns, {summary['waves']} waves, "
          f"{summary['admitted']} admissions in {summary['wall_s']:.2f} s "
          f"-> {summary['admissions_per_s']:.1f} admissions/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, sweep and compare the reproduction's scenarios.")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list scenarios and built-in sweeps")

    run_parser = commands.add_parser("run", help="execute a sweep")
    run_parser.add_argument("--spec", help="JSON spec file (one spec or a list); "
                                           "defaults to the built-in suite")
    run_parser.add_argument("--parallel", action="store_true",
                            help="execute runs on a process pool")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="pool size (default: cpu count)")
    run_parser.add_argument("--output", help="write structured results to this JSON file")

    compare_parser = commands.add_parser("compare",
                                         help="diff two result files from `run --output`")
    compare_parser.add_argument("baseline")
    compare_parser.add_argument("current")
    compare_parser.add_argument("--tolerance", type=float, default=1e-9,
                                help="numeric tolerance for metric equality")

    cache_parser = commands.add_parser("cache-bench",
                                       help="measure the CPA memoization speedup")
    cache_parser.add_argument("--campaigns", type=int, default=8,
                              help="number of update campaigns in the MCC sweep")
    cache_parser.add_argument("--distinct", type=int, default=2,
                              help="distinct configurations the sweeps cycle over")
    cache_parser.add_argument("--requests", type=int, default=15,
                              help="change requests per campaign")
    cache_parser.add_argument("--tasks", type=int, default=20,
                              help="tasks per synthetic task set in the WCRT sweep")
    cache_parser.add_argument("--repeats", type=int, default=25,
                              help="re-validations of every task set in the WCRT sweep")

    history_parser = commands.add_parser(
        "bench-history", help="tabulate the benchmark perf records")
    history_parser.add_argument("--dir", default="benchmarks/records",
                                help="directory holding BENCH_*.json records")
    history_parser.add_argument("--baseline", default=None,
                                help="baseline records directory to compare "
                                     "headline speedups against")
    history_parser.add_argument("--fail-on-regression", action="store_true",
                                help="exit non-zero when a headline metric "
                                     "drops more than --tolerance below its "
                                     "baseline (same benchmark, same mode)")
    history_parser.add_argument("--tolerance", type=float, default=0.3,
                                help="relative headline drop tolerated by "
                                     "--fail-on-regression (default 0.3)")
    history_parser.add_argument("--json", default=None, metavar="PATH",
                                help="write the machine-readable headline "
                                     "trajectory (grouped by benchmark and "
                                     "fidelity mode) to this JSON file")

    report_parser = commands.add_parser(
        "report", help="render the static HTML fleet dashboard")
    report_parser.add_argument("--results", action="append", default=None,
                               metavar="FILE",
                               help="campaign result file from `run --output` "
                                    "(repeatable)")
    report_parser.add_argument("--trace", action="append", default=None,
                               metavar="FILE",
                               help="tracer JSONL file from a traced "
                                    "campaign (repeatable)")
    report_parser.add_argument("--bench-dir", default="benchmarks/records",
                               help="directory holding BENCH_*.json records")
    report_parser.add_argument("--output", default="fleet_dashboard.html",
                               help="HTML file to write "
                                    "(default fleet_dashboard.html)")
    report_parser.add_argument("--title",
                               default="Fleet campaign observability",
                               help="page title of the dashboard")

    serve_parser = commands.add_parser(
        "serve", help="run the multi-tenant admission service on a "
                      "synthetic workload")
    serve_parser.add_argument("--tenants", type=int, default=2,
                              help="number of concurrent tenants")
    serve_parser.add_argument("--campaigns", type=int, default=2,
                              help="campaigns submitted per tenant")
    serve_parser.add_argument("--fleet-size", type=int, default=16,
                              help="vehicles per submitted fleet")
    serve_parser.add_argument("--variants", type=int, default=4,
                              help="platform variants per fleet")
    serve_parser.add_argument("--slots", type=int, default=2,
                              help="scheduler slots (jobs advanced per round)")
    serve_parser.add_argument("--store", default=None, metavar="DIR",
                              help="shared analysis-cache store directory "
                                   "(default: a temporary one)")
    serve_parser.add_argument("--no-store", action="store_true",
                              help="run tenants without a shared cache store")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run,
                "compare": _cmd_compare, "cache-bench": _cmd_cache_bench,
                "bench-history": _cmd_bench_history, "report": _cmd_report,
                "serve": _cmd_serve}
    return handlers[args.command](args)
