"""E9 (Section II.A): worst-case response-time analysis as the MCC's timing
acceptance test.

Regenerates the behaviour of the timing viewpoint over synthetic task sets
(UUniFast workloads): acceptance rate versus utilization, the soundness gap
between the analytical bound and simulated response times, and the analysis
runtime that determines how quickly the MCC can evaluate an update.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.platform.scheduler import FixedPriorityScheduler
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG


def _taskset(seed: int, n: int, utilization: float) -> TaskSet:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.5)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
    taskset.assign_deadline_monotonic_priorities()
    return taskset


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_acceptance_rate_vs_utilization(benchmark):
    utilizations = [0.5, 0.7, 0.8, 0.9, 0.95]
    samples = 40

    def sweep():
        rates = []
        for utilization in utilizations:
            accepted = sum(
                1 for seed in range(samples)
                if ResponseTimeAnalysis(_taskset(seed, 8, utilization)).schedulable())
            rates.append(accepted / samples)
        return rates

    rates = benchmark(sweep)
    rows = [{"utilization": u, "acceptance_rate": r} for u, r in zip(utilizations, rates)]
    print_table("E9: timing acceptance rate vs task-set utilization (8 tasks, 40 sets)", rows)
    assert rates == sorted(rates, reverse=True)
    assert rates[0] == 1.0
    assert rates[-1] < 1.0


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_bound_vs_simulation_gap(benchmark):
    """The analytical WCRT dominates the simulated worst case; report the gap."""

    def evaluate():
        gaps = []
        for seed in range(10):
            taskset = _taskset(seed, 6, 0.7)
            analysis = ResponseTimeAnalysis(taskset).analyse()
            horizon = min(2.0, 30 * max(t.period for t in taskset))
            stats = FixedPriorityScheduler(taskset).run(horizon)
            for name, result in analysis.items():
                observed = stats.worst_response_times.get(name)
                if observed is not None and result.wcrt is not None:
                    gaps.append(result.wcrt / observed)
        return gaps

    ratios = benchmark(evaluate)
    rows = [{"metric": "bound / simulated worst case",
             "min": min(ratios), "mean": sum(ratios) / len(ratios), "max": max(ratios)}]
    print_table("E9: soundness gap of the WCRT bound", rows)
    assert min(ratios) >= 1.0 - 1e-9


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_analysis_runtime_scaling(benchmark):
    """Runtime of the analysis itself for a 40-task set (the MCC-side cost)."""
    taskset = _taskset(123, 40, 0.75)

    def analyse():
        return ResponseTimeAnalysis(taskset).schedulable()

    verdict = benchmark(analyse)
    assert verdict in (True, False)
