"""Simulated fleet vehicles: perturbed platform models around one baseline.

A production fleet is not a million copies of the reference vehicle: vehicles
cluster into *variants* (hardware generations, trim levels, regional builds)
that differ in processor count and capacity, CAN topology, measured WCETs and
the set of baseline components.  :func:`generate_fleet` instantiates such a
fleet deterministically from a single seed — every vehicle carries its own
:class:`~repro.platform.resources.Platform` model and its own
:class:`~repro.mcc.controller.MultiChangeController`, exactly as the paper's
in-field update process runs per vehicle.

The variant structure is what makes fleet-scale admission batchable: vehicles
of the same variant produce identical candidate task sets for the same
update, so a shared :class:`~repro.analysis.cache.AnalysisCache` answers one
variant's admission analysis once per wave, and the incremental engine
warm-starts the remaining variants off each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.cache import AnalysisCache
from repro.contracts.language import ContractParser
from repro.contracts.model import Contract
from repro.mcc.acceptance import AcceptanceTest, default_acceptance_tests
from repro.mcc.controller import MccSnapshot, MultiChangeController
from repro.mcc.mapping import MappingStrategy
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.platform.rte import RuntimeEnvironment
from repro.sim.random import SeededRNG


@dataclass(frozen=True)
class FleetSpec:
    """Shape of a simulated fleet.

    ``heterogeneity`` is the relative spread of the per-variant perturbations
    (WCET scale, processor capacity); ``num_variants`` bounds how many
    distinct hardware/software builds the fleet contains — vehicle ``i``
    instantiates variant ``i % num_variants``.
    """

    size: int = 50
    seed: int = 0
    heterogeneity: float = 0.15
    num_variants: int = 8
    extra_components: int = 10
    min_processors: int = 2
    max_processors: int = 3
    base_capacity: float = 0.85
    deploy: bool = False
    mapping_strategy: MappingStrategy = MappingStrategy.FIRST_FIT

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("fleet size must be non-negative")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")
        if self.num_variants <= 0:
            raise ValueError("num_variants must be positive")
        if self.extra_components < 0:
            raise ValueError("extra_components must be non-negative")
        if not 1 <= self.min_processors <= self.max_processors:
            raise ValueError("need 1 <= min_processors <= max_processors")


@dataclass(frozen=True)
class VehicleVariant:
    """One hardware/software build shared by a slice of the fleet."""

    index: int
    wcet_factor: float
    num_processors: int
    capacity: float
    can_bandwidth_bps: float
    has_telematics: bool


@dataclass(frozen=True)
class VehicleState:
    """Checkpointable state of one fleet vehicle.

    Bundles the vehicle's adopted MCC snapshot (model, deployed
    configuration, expectations — all portable, see
    :meth:`~repro.mcc.controller.MultiChangeController.snapshot`) with the
    campaign's rollout flags.  Campaign checkpoints pickle a list of these
    so a halted campaign can be resumed in a fresh process over a
    regenerated fleet.
    """

    vehicle_id: str
    snapshot: MccSnapshot
    updated: bool
    deviating: bool
    rolled_back: bool


class FleetVehicle:
    """One simulated vehicle: platform model plus its own MCC."""

    def __init__(self, index: int, variant: VehicleVariant, platform: Platform,
                 mcc: MultiChangeController) -> None:
        self.index = index
        self.vehicle_id = f"veh{index:04d}"
        self.variant = variant
        self.platform = platform
        self.mcc = mcc
        #: Rollout bookkeeping maintained by the campaign engine.
        self.updated = False
        self.deviating = False
        self.rolled_back = False

    @property
    def wcet_factor(self) -> float:
        return self.variant.wcet_factor

    def capture_state(self) -> VehicleState:
        """This vehicle's current :class:`VehicleState` (for checkpoints)."""
        return VehicleState(vehicle_id=self.vehicle_id,
                            snapshot=self.mcc.snapshot(),
                            updated=self.updated,
                            deviating=self.deviating,
                            rolled_back=self.rolled_back)

    def restore_state(self, state: VehicleState) -> None:
        """Roll this vehicle back to a captured :class:`VehicleState`."""
        if state.vehicle_id != self.vehicle_id:
            raise ValueError(f"state of {state.vehicle_id!r} cannot restore "
                             f"{self.vehicle_id!r}")
        self.mcc.rollback(state.snapshot)
        self.updated = state.updated
        self.deviating = state.deviating
        self.rolled_back = state.rolled_back

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetVehicle({self.vehicle_id}, variant={self.variant.index}, "
                f"version={self.mcc.version})")


_BASELINE_DOCUMENTS: List[Dict[str, Any]] = [
    {"component": "perception", "timing": {"period": 0.05, "wcet": 0.010},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "provides": ["object_list"]},
    {"component": "planner", "timing": {"period": 0.1, "wcet": 0.020},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "requires": [{"service": "object_list"}], "provides": ["trajectory"]},
    {"component": "actuation", "timing": {"period": 0.01, "wcet": 0.002},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "requires": [{"service": "trajectory"}], "provides": ["actuator_commands"]},
]

#: Components every vehicle must ship; rejecting one of these at fleet
#: generation time is a bug, rejecting an optional app is a variant trait.
_CORE_COMPONENTS = frozenset(document["component"] for document in _BASELINE_DOCUMENTS)

_TELEMATICS_DOCUMENT: Dict[str, Any] = {
    "component": "telematics", "timing": {"period": 0.2, "wcet": 0.012},
    "safety": {"asil": "A"}, "security": {"level": "MEDIUM"},
    "provides": ["telemetry"],
}


def variant_contracts(variant: VehicleVariant, spec: FleetSpec) -> List[Contract]:
    """The baseline contract set of one variant (WCETs scaled to its build).

    Besides the core perception/planner/actuation stack (plus telematics on
    the variants that ship it), every variant carries
    ``spec.extra_components`` installed applications with variant-specific
    periods and budgets — production ECUs host tens of components, and that
    installed base is what makes fleet admission analysis-heavy.
    """
    parser = ContractParser()
    documents = list(_BASELINE_DOCUMENTS)
    if variant.has_telematics:
        documents = documents + [_TELEMATICS_DOCUMENT]
    rng = SeededRNG(spec.seed).spawn(2_000 + variant.index)
    extras: List[Dict[str, Any]] = []
    for index in range(spec.extra_components):
        # Continuous (non-harmonic) periods: realistic mixed workloads whose
        # busy windows genuinely iterate, unlike neat harmonic period sets.
        period = rng.uniform(0.02, 0.2)
        extras.append({
            "component": f"app{index:02d}",
            "timing": {"period": period, "wcet": period * rng.uniform(0.05, 0.11)},
            "safety": {"asil": rng.choice(["QM", "A", "B"])},
            "security": {"level": "MEDIUM"},
            "provides": [f"service_app{index:02d}"],
        })
    # Budget the installed base so every variant's baseline is admissible by
    # construction and headroom for one more update remains: the extras'
    # utilization is scaled into what the platform can host beyond the core
    # stack.
    def util(document: Dict[str, Any]) -> float:
        timing = document["timing"]
        return timing["wcet"] * variant.wcet_factor / timing["period"]

    budget = 0.8 * variant.num_processors * variant.capacity
    core_util = sum(util(document) for document in documents)
    extra_util = sum(util(document) for document in extras)
    headroom = max(0.0, budget - core_util)
    if extra_util > headroom and extra_util > 0.0:
        shrink = headroom / extra_util
        for document in extras:
            document["timing"]["wcet"] *= shrink
    documents = documents + extras
    scaled: List[Dict[str, Any]] = []
    for document in documents:
        entry = dict(document)
        timing = dict(entry["timing"])
        # A variant never ships a baseline that is unschedulable by
        # construction, so the scaled WCET stays below the implicit deadline.
        timing["wcet"] = min(timing["wcet"] * variant.wcet_factor,
                             0.9 * timing["period"])
        entry["timing"] = timing
        scaled.append(entry)
    return parser.parse_many(scaled)


def generate_variants(spec: FleetSpec) -> List[VehicleVariant]:
    """The deterministic variant catalog of a fleet spec."""
    variants: List[VehicleVariant] = []
    for index in range(min(spec.num_variants, max(spec.size, 1))):
        rng = SeededRNG(spec.seed).spawn(1_000 + index)
        spread = spec.heterogeneity
        factor = 1.0 + spread * (2.0 * rng.uniform() - 1.0)
        capacity = min(1.0, max(0.05,
                                spec.base_capacity * (1.0 + 0.5 * spread
                                                      * (2.0 * rng.uniform() - 1.0))))
        variants.append(VehicleVariant(
            index=index,
            wcet_factor=factor,
            num_processors=rng.integer(spec.min_processors, spec.max_processors),
            capacity=capacity,
            can_bandwidth_bps=rng.choice([250_000.0, 500_000.0, 1_000_000.0]),
            has_telematics=rng.bernoulli(0.5)))
    return variants


def build_vehicle_platform(variant: VehicleVariant, name: str) -> Platform:
    """A fresh platform model for one vehicle of the given variant."""
    platform = Platform(name=name)
    for index in range(variant.num_processors):
        platform.add_processor(ProcessingResource(f"cpu{index}",
                                                  capacity=variant.capacity))
    platform.add_network(NetworkResource("can0",
                                         bandwidth_bps=variant.can_bandwidth_bps))
    if variant.can_bandwidth_bps >= 1_000_000.0:
        # High-end builds carry a second bus for telematics/diagnostics.
        platform.add_network(NetworkResource("can1", bandwidth_bps=500_000.0))
    return platform


def generate_fleet(spec: FleetSpec,
                   analysis_cache: Optional[AnalysisCache] = None,
                   extra_acceptance_tests: Optional[
                       Callable[["VehicleVariant", Platform],
                                List[AcceptanceTest]]] = None
                   ) -> List["FleetVehicle"]:
    """Instantiate a fleet: per-vehicle platforms and MCCs, baselines deployed.

    Pass a shared :class:`AnalysisCache` to let all vehicles' timing
    acceptance tests share one content-addressed store plus one incremental
    engine (the batched-admission mode); without it every vehicle admits in
    isolation (the sequential baseline).  Either way the fleet is a pure
    function of ``spec`` — verdicts cannot depend on the cache.

    ``extra_acceptance_tests`` optionally extends every vehicle's default
    viewpoint battery: the factory is called once per vehicle with its
    variant and platform and returns additional tests (e.g. a
    :class:`~repro.mcc.acceptance.DistributedTimingAcceptanceTest` checking
    cross-ECU end-to-end deadlines during campaign admission).
    """
    variants = generate_variants(spec)
    contracts_by_variant = {variant.index: variant_contracts(variant, spec)
                            for variant in variants}
    vehicles: List[FleetVehicle] = []
    for index in range(spec.size):
        variant = variants[index % len(variants)]
        platform = build_vehicle_platform(variant, name=f"veh{index:04d}-platform")
        rte = RuntimeEnvironment(platform) if spec.deploy else None
        acceptance_tests = None
        if extra_acceptance_tests is not None:
            acceptance_tests = (default_acceptance_tests(cache=analysis_cache)
                                + list(extra_acceptance_tests(variant, platform)))
        mcc = MultiChangeController(platform, rte=rte,
                                    acceptance_tests=acceptance_tests,
                                    mapping_strategy=spec.mapping_strategy,
                                    analysis_cache=analysis_cache)
        for contract in contracts_by_variant[variant.index]:
            report = mcc.add_component(contract)
            if not report.accepted:
                if contract.component in _CORE_COMPONENTS:
                    raise RuntimeError(
                        f"vehicle {index} rejected its baseline: {report.summary()}")
                # An optional app that does not fit this build simply is not
                # installed on it — variants legitimately differ in their
                # installed base.
                continue
        vehicles.append(FleetVehicle(index, variant, platform, mcc))
    return vehicles
