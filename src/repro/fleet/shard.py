"""Picklable shard protocol of the parallel campaign engine.

One wave of a sharded campaign ships only its *representatives* — the first
vehicle of every new request-equivalence group (see
:meth:`repro.fleet.engine.CampaignEngine._equivalence_key`) — to a
``multiprocessing`` pool.  A :class:`ShardTask` bundles a slice of those
representatives; the worker (:func:`execute_shard`, module-level so the pool
can pickle it) runs each one's full MCC integration and returns a
:class:`ShardVerdict` per item plus the analysis-cache entries it derived
and the timing telemetry of the slice.  The parent fans every verdict back
out across the whole equivalence group through
:meth:`~repro.mcc.controller.MultiChangeController.replay_change`, so
non-representative vehicles never cross a process boundary at all.

Two properties keep the parallel path byte-identical to sequential
admission:

* Integration is deterministic in (model state, platform shape, request) —
  the exact inputs a representative carries — so where the verdict is
  computed cannot change it.
* Pickled :class:`~repro.analysis.cache.AnalysisCache` objects travel
  *empty* by design; workers warm-start from an on-disk snapshot or
  segment store instead and verdicts never depend on cache contents, only
  wall time does.

Shard planning
--------------
Two planners partition a wave's representatives:

* :func:`plan_shards` — the deterministic round-robin fallback: exactly one
  shard per worker, sizes within one of each other.  It is the right
  partition when per-item costs are uniform or unknown and it is what
  ``workers=1``, ``steal=False`` campaigns and the unit tests use.
* :func:`plan_chunks` — the cost-model planner of the work-stealing engine:
  *more* chunks than workers (idle workers pull the next chunk off the
  pool's shared queue instead of waiting behind a straggler), representatives
  of the same congruence/equivalence structure co-located in the same chunk
  (so the analysis cache dedupe and the lockstep batch kernel fire *inside*
  a shard), chunk sizes balanced on per-key cost estimates from prior
  waves, and deliberately small tail chunks so the last pulls cannot
  re-create a straggler.  The partition affects wall time only — verdicts
  are independent of which worker computes what.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.cache_store import SegmentStore
from repro.analysis.cpa import ResponseTimeResult
from repro.fleet.vehicle import FleetVehicle
from repro.mcc.configuration import ChangeRequest, IntegrationReport

#: One persisted cache entry: ``(taskset_key, per-task results)``.
CacheEntry = Tuple[Tuple, Dict[str, ResponseTimeResult]]

#: The pinned schema of one ``CampaignResult.shard_telemetry`` row — field
#: name -> value type, in row order.  The campaign engine emits rows with
#: exactly these fields, the metrics bridge and the fleet dashboard consume
#: them by name, and ``tests/test_observability.py`` validates real pooled
#: rows against this mapping — so schema drift fails a test instead of
#: silently rendering an empty dashboard panel.  Extend it deliberately:
#: add the field here, in :meth:`repro.fleet.engine.CampaignEngine._admit_shards`
#: and in the docs table (``docs/ARCHITECTURE.md``) in one change.
SHARD_TELEMETRY_SCHEMA: Dict[str, type] = {
    "wave": int,              # wave index the shard executed in
    "shard": int,             # shard index within the wave's partition
    "items": int,             # representative integrations in the shard
    "worker_pid": int,        # OS pid of the executing worker process
    "elapsed_s": float,       # shard wall time (absorb + integrate + publish)
    "cache_hits": int,        # worker-cache hit delta over the shard
    "cache_misses": int,      # worker-cache miss delta over the shard
    "published_entries": int,  # entries appended to the segment store
    "absorbed_entries": int,  # sibling entries absorbed before running
}


@dataclass
class ShardItem:
    """One representative admission problem inside a shard.

    ``position`` is the representative's index in the wave's representative
    list — the parent uses it to map the verdict back to the equivalence
    key (keys themselves are id()-based and deliberately never cross the
    process boundary).
    """

    position: int
    vehicle: FleetVehicle
    request: ChangeRequest


@dataclass
class ShardTask:
    """A picklable slice of one wave's representative integrations."""

    shard_index: int
    items: List[ShardItem]
    #: Warm-start snapshot for the worker's local cache (optional).
    cache_path: Optional[str] = None
    #: Segment-store directory for mid-wave entry publication (optional).
    store_path: Optional[str] = None
    #: Collect per-item trace events into ``ShardResult.events``.  Workers
    #: never write trace files themselves — the campaign parent ingests the
    #: returned events into its tracer post-join, keeping the JSONL file
    #: single-writer.
    trace: bool = False


@dataclass
class ShardVerdict:
    """The outcome of one representative integration, ready to replay.

    Carries exactly what
    :meth:`~repro.mcc.controller.MultiChangeController.replay_change` needs
    to re-apply the decision on an equivalent vehicle: the report plus the
    decided mapping and priorities (empty for rejections — a rejection
    replays without touching the model).  ``elapsed_s`` is the measured
    integration wall time — telemetry that seeds the next wave's cost
    model; it never influences the verdict.
    """

    position: int
    report: IntegrationReport
    mapping: Dict[str, str] = field(default_factory=dict)
    priorities: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0


@dataclass
class ShardResult:
    """Everything a shard worker sends back to the campaign parent."""

    shard_index: int
    verdicts: List[ShardVerdict]
    #: Cache entries the worker derived beyond its warm-start set; the
    #: parent merges them so later waves (and the next snapshot) reuse them.
    cache_entries: List[CacheEntry] = field(default_factory=list)
    #: -- telemetry (informational; excluded from result byte-parity) -----
    worker_pid: int = 0
    elapsed_s: float = 0.0
    #: Cache hit/miss deltas of the worker cache over this shard.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Entries published to the segment store by this shard.
    published_entries: int = 0
    #: Entries absorbed from siblings via the segment store before running.
    absorbed_entries: int = 0
    #: Per-item trace events collected when ``ShardTask.trace`` was set
    #: (empty otherwise); the parent ingests them into its tracer.
    events: List[Dict[str, object]] = field(default_factory=list)


#: Worker-process-local cache, installed by :func:`initialize_worker` when
#: the campaign pool starts.  It outlives individual shard tasks, so a
#: worker accumulates every analysis it ever derived across all waves of
#: the campaign — the in-process complement of the on-disk snapshot.
_WORKER_CACHE: Optional[AnalysisCache] = None

#: Worker-process-local segment-store handle (same lifetime as the cache).
#: Each worker is its own store *writer* — appends are lock-free — and its
#: own incremental *reader*, so between chunks it absorbs exactly what its
#: siblings published in the meantime.
_WORKER_STORE: Optional[SegmentStore] = None

#: Set by the campaign parent immediately before it forks its pool.  Under
#: the ``fork`` start method the child inherits the parent's heap
#: copy-on-write, so this reference hands every worker a private, fully
#: warm copy of the shared cache at zero serialization cost.  Under
#: ``spawn`` the child starts from a fresh interpreter, the seed is
#: ``None`` there, and :func:`initialize_worker` falls back to loading the
#: on-disk snapshot and/or segment store.
_FORK_SEED: Optional[AnalysisCache] = None


def initialize_worker(cache_path: Optional[str],
                      max_entries: int = 16384,
                      batch_kernel: bool = False,
                      store_path: Optional[str] = None) -> None:
    """Pool initializer: install this worker's long-lived analysis cache.

    Prefers the fork-inherited copy of the parent's cache (free, fully warm
    and already carrying the parent's configuration); otherwise builds a
    fresh cache **with the parent's configuration** — ``max_entries`` and
    ``batch_kernel`` are forwarded from the parent cache through the pool
    initargs, so a spawn-started worker analyses exactly like its parent
    would — and warm-starts it from ``cache_path`` and/or the segment store
    at ``store_path``.  Either way the load happens once per worker
    process, at pool creation — not per shard task, where re-reading a
    multi-megabyte snapshot would dwarf the analyses themselves.
    """
    global _WORKER_CACHE, _WORKER_STORE
    _WORKER_STORE = SegmentStore(store_path) if store_path is not None else None
    if _FORK_SEED is not None:
        _WORKER_CACHE = _FORK_SEED
        if _WORKER_STORE is not None:
            # Skip re-absorbing what the parent already published: the
            # fork seed is the parent cache, so everything durable at pool
            # creation is in memory already.  Advancing the read offsets
            # keeps the first chunk's poll proportional to *new* entries.
            _WORKER_STORE.read_new()
        return
    cache = AnalysisCache(max_entries=max_entries, batch_kernel=batch_kernel)
    if cache_path is not None:
        cache.load_snapshot(cache_path, missing_ok=True)
    if _WORKER_STORE is not None:
        cache.merge_entries(_WORKER_STORE.read_new())
    _WORKER_CACHE = cache


def execute_shard(task: ShardTask) -> ShardResult:
    """Run every representative integration of ``task`` in this process.

    Uses the worker's long-lived cache when :func:`initialize_worker` set
    one up (the pooled campaign path); otherwise — direct in-process calls,
    e.g. from tests — builds a task-local cache warm-started from
    ``task.cache_path``/``task.store_path``.  Either way the cache is
    attached to each vehicle's acceptance tests (their pickled caches
    arrived empty) and the full ``request_change`` integration runs per
    item, in list order, sharing the cache and its incremental engine
    exactly like a sequential batched wave would.

    With a segment store the shard first absorbs everything its sibling
    workers published since the last chunk (mid-wave reuse — a steal of
    *analyses*, not just of work), and afterwards publishes its own newly
    derived entries so the siblings can return the favour.
    """
    started = time.perf_counter()
    cache = _WORKER_CACHE
    store = _WORKER_STORE
    if cache is None:
        cache = AnalysisCache()
        if task.cache_path is not None:
            cache.load_snapshot(task.cache_path, missing_ok=True)
        if task.store_path is not None:
            store = SegmentStore(task.store_path)
    absorbed = 0
    if store is not None:
        absorbed = cache.merge_entries(store.read_new())
    hits_before, misses_before = cache.hits, cache.misses
    preloaded = set(cache.keys())
    verdicts: List[ShardVerdict] = []
    events: List[Dict[str, object]] = []
    for item in task.items:
        item_started = time.perf_counter()
        item.vehicle.mcc.attach_analysis_cache(cache)
        report = item.vehicle.mcc.request_change(item.request)
        model = item.vehicle.mcc.model
        verdicts.append(ShardVerdict(
            position=item.position, report=report,
            mapping=dict(model.mapping) if report.accepted else {},
            priorities=dict(model.priorities) if report.accepted else {},
            elapsed_s=time.perf_counter() - item_started))
        if task.trace:
            events.append({"event": "shard.item",
                           "shard": task.shard_index,
                           "position": item.position,
                           "vehicle": item.vehicle.vehicle_id,
                           "accepted": report.accepted,
                           "elapsed_s": verdicts[-1].elapsed_s,
                           "worker_pid": os.getpid()})
    new_entries = cache.export_entries(exclude=preloaded)
    published = 0
    if store is not None:
        published = store.append(new_entries)
        # Advance past our own publication (already in memory — merging it
        # is a no-op) and absorb anything siblings published meanwhile.
        cache.merge_entries(store.read_new())
    return ShardResult(shard_index=task.shard_index, verdicts=verdicts,
                       cache_entries=new_entries,
                       worker_pid=os.getpid(),
                       elapsed_s=time.perf_counter() - started,
                       cache_hits=cache.hits - hits_before,
                       cache_misses=cache.misses - misses_before,
                       published_entries=published,
                       absorbed_entries=absorbed,
                       events=events)


def plan_shards(item_count: int, workers: int) -> List[List[int]]:
    """Deterministic round-robin partition of item positions into shards.

    This is the *static fallback planner*: it is used by ``workers=1``
    campaigns, by ``steal=False``/``shard_planner="round_robin"``
    configurations (the measured baseline of the E13 benchmark) and by the
    shard-protocol unit tests, while pooled campaigns default to the
    cost-model :func:`plan_chunks` partition.  Returns at most ``workers``
    non-empty shards; item ``i`` lands in shard ``i % shards``.  Round-robin
    keeps shard sizes within one of each other for any item count, which
    matters when representatives have similar cost.  The partition affects
    wall time only — verdicts are independent of which worker computes
    them.
    """
    if item_count <= 0:
        return []
    if workers <= 1:
        return [list(range(item_count))]
    shard_count = min(workers, item_count)
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for position in range(item_count):
        shards[position % shard_count].append(position)
    return shards


def plan_chunks(item_count: int, workers: int,
                costs: Optional[Sequence[float]] = None,
                groups: Optional[Sequence[Hashable]] = None,
                chunks_per_worker: int = 4) -> List[List[int]]:
    """Cost-balanced, group-co-located chunk partition for dynamic dispatch.

    The work-stealing engine dispatches *chunks* onto the pool's shared
    queue: an idle worker pulls the next chunk the moment it finishes its
    current one, so the partition does not need to predict the makespan —
    it only needs to (a) keep chunks small enough that stealing can smooth
    cost skew and (b) keep them *structured*: items of the same ``groups``
    label (same congruence/equivalence structure — e.g. one fleet variant's
    representatives) stay in the same chunk wherever possible, so the
    worker-local analysis cache dedupe and the lockstep batch kernel fire
    inside a single shard instead of being split across processes.

    ``costs`` are per-item cost estimates (seconds, or any proportional
    unit) — typically the campaign's measured per-key integration times
    from prior waves; uniform cost is assumed where ``None``.  Chunks are
    packed greedily in descending group-cost order up to a target of
    ``total_cost / (workers * chunks_per_worker)`` per chunk, oversized
    groups are split, and the dispatch list is ordered by descending chunk
    cost (longest-processing-time first), which leaves the naturally small
    leftover chunks at the tail where they cannot re-create a straggler.

    Like every planner here, the output affects wall time only.  The
    partition is deterministic in its inputs; feeding it *measured* costs
    makes the layout vary run to run, which is exactly as sound as the
    pool's nondeterministic completion order.
    """
    if item_count <= 0:
        return []
    if workers <= 1:
        return [list(range(item_count))]
    if chunks_per_worker < 1:
        raise ValueError("chunks_per_worker must be at least 1")
    if costs is not None and len(costs) != item_count:
        raise ValueError("costs must cover every item")
    if groups is not None and len(groups) != item_count:
        raise ValueError("groups must cover every item")
    item_costs = [max(float(costs[i]), 0.0) if costs is not None else 1.0
                  for i in range(item_count)]
    # Group items; a missing label means "its own group" (pure balancing).
    grouped: Dict[Hashable, List[int]] = {}
    for position in range(item_count):
        label = groups[position] if groups is not None else ("pos", position)
        grouped.setdefault(label, []).append(position)
    group_list = sorted(
        grouped.values(),
        key=lambda members: (-sum(item_costs[i] for i in members),
                             members[0]))
    total = sum(item_costs)
    target_chunks = min(item_count, workers * chunks_per_worker)
    # An all-zero-cost wave degenerates to round-robin-sized chunks.
    target_cost = (total / target_chunks) if total > 0.0 \
        else item_count / target_chunks
    blocks: List[List[int]] = []
    for members in group_list:
        cost = sum(item_costs[i] for i in members) if total > 0.0 \
            else float(len(members))
        if cost <= 1.5 * target_cost or len(members) == 1:
            blocks.append(members)
            continue
        # Split an oversized group into consecutive target-sized runs; the
        # pieces still co-locate as much as a balanced partition allows.
        piece: List[int] = []
        piece_cost = 0.0
        for position in members:
            piece.append(position)
            piece_cost += item_costs[position] if total > 0.0 else 1.0
            if piece_cost >= target_cost:
                blocks.append(piece)
                piece, piece_cost = [], 0.0
        if piece:
            blocks.append(piece)
    # Pack blocks into chunks up to the target cost, biggest blocks first.
    chunks: List[Tuple[float, List[int]]] = []
    current: List[int] = []
    current_cost = 0.0
    for block in blocks:
        block_cost = sum(item_costs[i] for i in block) if total > 0.0 \
            else float(len(block))
        # Close the open chunk only when adding the block would overshoot
        # the target badly; moderate overshoot is cheaper than the extra
        # scheduling slack of many under-target chunks.
        if current and current_cost + block_cost > 1.5 * target_cost:
            chunks.append((current_cost, current))
            current, current_cost = [], 0.0
        current.extend(block)
        current_cost += block_cost
        if current_cost >= target_cost:
            chunks.append((current_cost, current))
            current, current_cost = [], 0.0
    if current:
        chunks.append((current_cost, current))
    # LPT dispatch order: heavy chunks first, small tail chunks last.
    chunks.sort(key=lambda entry: (-entry[0], entry[1][0]))
    return [members for _, members in chunks]
