"""Road network model for route planning.

A directed multigraph of road segments, each with a length, a nominal speed
and an elevation class (valley / hill / alpine pass) that determines how
strongly weather degrades it.  The synthetic "alpine" network used by the E8
benchmark is built in :mod:`repro.routing.planner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class RouteError(RuntimeError):
    """Raised for invalid network or routing operations."""


@dataclass(frozen=True)
class RoadSegment:
    """A directed road segment between two nodes.

    Attributes
    ----------
    source / destination:
        Node names.
    length_km:
        Segment length.
    nominal_speed_kmh:
        Free-flow speed in clear weather.
    elevation:
        ``"valley"``, ``"hill"`` or ``"pass"``; higher elevation classes are
        exposed to harsher weather (snow/fog) and degrade more.
    name:
        Optional human-readable name.
    """

    source: str
    destination: str
    length_km: float
    nominal_speed_kmh: float
    elevation: str = "valley"
    name: str = ""

    def __post_init__(self) -> None:
        if self.length_km <= 0:
            raise RouteError("segment length must be positive")
        if self.nominal_speed_kmh <= 0:
            raise RouteError("segment speed must be positive")
        if self.elevation not in ("valley", "hill", "pass"):
            raise RouteError(f"unknown elevation class {self.elevation!r}")

    @property
    def key(self) -> Tuple[str, str]:
        return (self.source, self.destination)

    @property
    def nominal_travel_time_h(self) -> float:
        return self.length_km / self.nominal_speed_kmh


class RoadNetwork:
    """Directed road network with per-segment attributes."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._segments: Dict[Tuple[str, str], RoadSegment] = {}

    # -- construction -------------------------------------------------------------------

    def add_node(self, name: str) -> None:
        if not name:
            raise RouteError("node name must be non-empty")
        self._graph.add_node(name)

    def add_segment(self, segment: RoadSegment, bidirectional: bool = True) -> None:
        """Add a segment (and its reverse, unless ``bidirectional=False``)."""
        for node in (segment.source, segment.destination):
            self._graph.add_node(node)
        if segment.key in self._segments:
            raise RouteError(f"duplicate segment {segment.key}")
        self._segments[segment.key] = segment
        self._graph.add_edge(segment.source, segment.destination)
        if bidirectional:
            reverse = RoadSegment(source=segment.destination, destination=segment.source,
                                  length_km=segment.length_km,
                                  nominal_speed_kmh=segment.nominal_speed_kmh,
                                  elevation=segment.elevation,
                                  name=segment.name)
            if reverse.key not in self._segments:
                self._segments[reverse.key] = reverse
                self._graph.add_edge(reverse.source, reverse.destination)

    # -- queries -------------------------------------------------------------------------

    def nodes(self) -> List[str]:
        return list(self._graph.nodes)

    def segments(self) -> List[RoadSegment]:
        return list(self._segments.values())

    def segment(self, source: str, destination: str) -> RoadSegment:
        try:
            return self._segments[(source, destination)]
        except KeyError as exc:
            raise RouteError(f"no segment {source!r} -> {destination!r}") from exc

    def has_node(self, name: str) -> bool:
        return name in self._graph

    def neighbours(self, node: str) -> List[str]:
        if node not in self._graph:
            raise RouteError(f"unknown node {node!r}")
        return sorted(self._graph.successors(node))

    def all_simple_routes(self, origin: str, destination: str,
                          cutoff: Optional[int] = None) -> List[List[str]]:
        if origin not in self._graph or destination not in self._graph:
            raise RouteError("origin or destination not in network")
        return [list(path) for path in
                nx.all_simple_paths(self._graph, origin, destination, cutoff=cutoff)]

    def segments_on(self, path: Iterable[str]) -> List[RoadSegment]:
        nodes = list(path)
        return [self.segment(a, b) for a, b in zip(nodes, nodes[1:])]

    def path_length_km(self, path: Iterable[str]) -> float:
        return sum(segment.length_km for segment in self.segments_on(path))

    def to_networkx(self) -> nx.DiGraph:
        graph = self._graph.copy()
        for (source, destination), segment in self._segments.items():
            graph.edges[source, destination].update({
                "length_km": segment.length_km,
                "nominal_speed_kmh": segment.nominal_speed_kmh,
                "elevation": segment.elevation,
            })
        return graph
