"""Weather forecasts with explicit uncertainty.

"There is also information that inherently contains uncertainty such as
weather forecasts" (Section V).  A forecast assigns every road segment a
probability distribution over weather conditions; the planner reasons with
expected degradation rather than a single deterministic weather value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.routing.road_network import RoadNetwork, RoadSegment, RouteError
from repro.sim.random import SeededRNG
from repro.vehicle.environment import Weather, WeatherCondition

#: Relative speed factor a vehicle with degraded sensing must apply per
#: weather condition (1.0 = no slowdown).  These capture the functional
#: degradation of perception, not legal speed limits.
DEGRADATION_SPEED_FACTOR: Dict[WeatherCondition, float] = {
    WeatherCondition.CLEAR: 1.0,
    WeatherCondition.RAIN: 0.8,
    WeatherCondition.DENSE_FOG: 0.35,
    WeatherCondition.SNOW: 0.45,
}

#: How much more likely adverse weather is on exposed elevation classes.
ELEVATION_EXPOSURE: Dict[str, float] = {"valley": 0.4, "hill": 1.0, "pass": 2.2}


@dataclass
class SegmentForecast:
    """Probability distribution over weather conditions for one segment."""

    probabilities: Dict[WeatherCondition, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.probabilities:
            self.probabilities = {WeatherCondition.CLEAR: 1.0}
        total = sum(self.probabilities.values())
        if total <= 0:
            raise ValueError("forecast probabilities must sum to a positive value")
        self.probabilities = {cond: p / total for cond, p in self.probabilities.items()}

    def probability(self, condition: WeatherCondition) -> float:
        return self.probabilities.get(condition, 0.0)

    def adverse_probability(self) -> float:
        """Probability of any non-clear condition."""
        return 1.0 - self.probability(WeatherCondition.CLEAR)

    def expected_speed_factor(self) -> float:
        """Expected relative speed under the forecast distribution."""
        return sum(p * DEGRADATION_SPEED_FACTOR[cond]
                   for cond, p in self.probabilities.items())

    def sample(self, rng: SeededRNG) -> WeatherCondition:
        """Draw one realized condition (for Monte-Carlo evaluation)."""
        draw = rng.uniform()
        cumulative = 0.0
        for condition, probability in self.probabilities.items():
            cumulative += probability
            if draw <= cumulative:
                return condition
        return list(self.probabilities)[-1]


class WeatherForecast:
    """Forecast for an entire road network.

    Parameters
    ----------
    severity:
        Overall weather severity in [0, 1]; 0 = stable high-pressure
        situation, 1 = severe winter storm.  Exposure of individual segments
        scales with their elevation class.
    """

    def __init__(self, severity: float = 0.3,
                 dominant_condition: WeatherCondition = WeatherCondition.SNOW) -> None:
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        if dominant_condition == WeatherCondition.CLEAR:
            raise ValueError("dominant adverse condition cannot be CLEAR")
        self.severity = severity
        self.dominant_condition = dominant_condition
        self._overrides: Dict[tuple, SegmentForecast] = {}

    def override(self, segment: RoadSegment, forecast: SegmentForecast) -> None:
        """Pin a specific forecast for one segment (e.g. live observations)."""
        self._overrides[segment.key] = forecast

    def for_segment(self, segment: RoadSegment) -> SegmentForecast:
        """Forecast distribution for one segment."""
        if segment.key in self._overrides:
            return self._overrides[segment.key]
        exposure = ELEVATION_EXPOSURE[segment.elevation]
        adverse = min(0.95, self.severity * exposure)
        # Split the adverse probability between the dominant condition and rain.
        dominant = adverse * 0.75
        rain = adverse * 0.25
        return SegmentForecast({
            WeatherCondition.CLEAR: max(0.0, 1.0 - adverse),
            self.dominant_condition: dominant,
            WeatherCondition.RAIN: rain,
        })

    def expected_speed_factor(self, segment: RoadSegment) -> float:
        return self.for_segment(segment).expected_speed_factor()

    def adverse_probability(self, segment: RoadSegment) -> float:
        return self.for_segment(segment).adverse_probability()

    def realize(self, network: RoadNetwork, rng: Optional[SeededRNG] = None) -> Dict[tuple, Weather]:
        """Draw one concrete weather realization for every segment."""
        rng = rng or SeededRNG(0)
        realization: Dict[tuple, Weather] = {}
        for segment in network.segments():
            condition = self.for_segment(segment).sample(rng)
            if condition == WeatherCondition.CLEAR:
                realization[segment.key] = Weather.clear()
            elif condition == WeatherCondition.RAIN:
                realization[segment.key] = Weather.rain(0.5 + 0.5 * self.severity)
            elif condition == WeatherCondition.DENSE_FOG:
                realization[segment.key] = Weather.dense_fog(80.0 * (1.0 - 0.5 * self.severity))
            else:
                realization[segment.key] = Weather.snow(0.4 + 0.6 * self.severity)
        return realization
