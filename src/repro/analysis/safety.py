"""Safety viewpoint analysis.

The safety viewpoint of the MCC checks that a candidate configuration can
still satisfy the declared safety requirements: ASIL consistency along
service chains (a high-ASIL component must not depend on a lower-ASIL
provider unless the dependency is declared redundant), fail-operational
components must have redundancy, and mixed-criticality co-location on a
processor is flagged for freedom-from-interference measures (which the CCC
architecture realises through monitoring/enforcement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.contracts.model import AsilLevel, Contract


@dataclass
class SafetyFinding:
    """One finding of the safety analysis."""

    kind: str
    component: str
    detail: str
    blocking: bool = True

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        marker = "BLOCKING" if self.blocking else "info"
        return f"[{marker}] {self.kind}: {self.component}: {self.detail}"


class SafetyAnalysis:
    """Safety acceptance test over a set of contracts and a mapping.

    Parameters
    ----------
    contracts:
        Contracts of all components in the candidate configuration.
    mapping:
        Component name -> processor name (may be empty before mapping).
    """

    def __init__(self, contracts: Iterable[Contract],
                 mapping: Optional[Dict[str, str]] = None) -> None:
        self.contracts = {c.component: c for c in contracts}
        self.mapping = dict(mapping or {})

    # -- individual checks -------------------------------------------------------

    def check_asil_decomposition(self) -> List[SafetyFinding]:
        """A component must not require services from providers with a lower
        ASIL (ISO 26262 ASIL decomposition / criticality inheritance), unless
        the provider is part of a declared redundancy group."""
        findings: List[SafetyFinding] = []
        for contract in self.contracts.values():
            client_asil = contract.asil
            if client_asil == AsilLevel.QM:
                continue
            for requirement in contract.requires:
                providers = [c for c in self.contracts.values()
                             if requirement.service in c.provided_services()]
                if not providers:
                    if not requirement.optional:
                        findings.append(SafetyFinding(
                            kind="missing-provider", component=contract.component,
                            detail=f"requires {requirement.service!r} but no provider exists"))
                    continue
                for provider in providers:
                    if provider.asil < client_asil and not self._redundant(provider):
                        findings.append(SafetyFinding(
                            kind="asil-inheritance", component=contract.component,
                            detail=(f"ASIL {client_asil.name} component depends on "
                                    f"{provider.component} (ASIL {provider.asil.name}) "
                                    f"for service {requirement.service!r}")))
        return findings

    def check_fail_operational_redundancy(self) -> List[SafetyFinding]:
        """Fail-operational components must have at least one redundancy peer
        (another component in the same redundancy group)."""
        findings: List[SafetyFinding] = []
        groups: Dict[str, List[str]] = {}
        for contract in self.contracts.values():
            safety = contract.safety
            if safety and safety.redundancy_group:
                groups.setdefault(safety.redundancy_group, []).append(contract.component)
        for contract in self.contracts.values():
            safety = contract.safety
            if not safety or not safety.fail_operational:
                continue
            group = safety.redundancy_group
            peers = [c for c in groups.get(group, []) if c != contract.component] if group else []
            if not peers:
                findings.append(SafetyFinding(
                    kind="missing-redundancy", component=contract.component,
                    detail="declared fail-operational but has no redundancy peer"))
        return findings

    def check_mixed_criticality_colocation(self) -> List[SafetyFinding]:
        """Flag processors hosting both ASIL >= C and QM/A components;
        non-blocking because the CCC execution domain provides isolation, but
        the MCC must enable monitoring/enforcement on those processors."""
        findings: List[SafetyFinding] = []
        by_processor: Dict[str, List[Contract]] = {}
        for component, processor in self.mapping.items():
            contract = self.contracts.get(component)
            if contract is not None:
                by_processor.setdefault(processor, []).append(contract)
        for processor, contracts in sorted(by_processor.items()):
            levels = {c.asil for c in contracts}
            if max(levels, default=AsilLevel.QM) >= AsilLevel.C and min(levels) <= AsilLevel.A:
                low = sorted(c.component for c in contracts if c.asil <= AsilLevel.A)
                high = sorted(c.component for c in contracts if c.asil >= AsilLevel.C)
                findings.append(SafetyFinding(
                    kind="mixed-criticality", component=processor,
                    detail=(f"hosts high-ASIL {high} together with low-ASIL {low}; "
                            "budget enforcement required"),
                    blocking=False))
        return findings

    def check_redundancy_mapping_independence(self) -> List[SafetyFinding]:
        """Redundant components mapped to the same processor share a common
        failure point, defeating the redundancy."""
        findings: List[SafetyFinding] = []
        groups: Dict[str, List[str]] = {}
        for contract in self.contracts.values():
            safety = contract.safety
            if safety and safety.redundancy_group:
                groups.setdefault(safety.redundancy_group, []).append(contract.component)
        for group, members in sorted(groups.items()):
            processors = [self.mapping.get(member) for member in members]
            mapped = [p for p in processors if p is not None]
            if len(mapped) >= 2 and len(set(mapped)) == 1:
                findings.append(SafetyFinding(
                    kind="redundancy-colocation", component=group,
                    detail=(f"redundancy group {group!r} members {sorted(members)} "
                            f"are all mapped to {mapped[0]}")))
        return findings

    # -- aggregate ----------------------------------------------------------------

    def _redundant(self, contract: Contract) -> bool:
        safety = contract.safety
        return bool(safety and safety.redundancy_group)

    def analyse(self) -> List[SafetyFinding]:
        """Run all checks; findings are ordered blocking-first."""
        findings = (self.check_asil_decomposition()
                    + self.check_fail_operational_redundancy()
                    + self.check_mixed_criticality_colocation()
                    + self.check_redundancy_mapping_independence())
        return sorted(findings, key=lambda f: (not f.blocking, f.kind, f.component))

    def acceptable(self) -> bool:
        """Acceptance criterion: no blocking findings."""
        return not any(finding.blocking for finding in self.analyse())
