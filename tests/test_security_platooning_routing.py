"""Tests for the security layer, platooning/consensus and weather-aware routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platooning.consensus import ConsensusProtocol, median_consensus
from repro.platooning.platoon import Platoon, PlatoonError, PlatoonMember
from repro.platooning.trust import TrustLevel, TrustModel
from repro.routing.planner import PlannerConfig, RiskAwarePlanner, build_alpine_network
from repro.routing.road_network import RoadNetwork, RoadSegment, RouteError
from repro.routing.weather_forecast import SegmentForecast, WeatherForecast
from repro.security.access_control import build_policy_from_registry
from repro.security.attacks import (
    AttackInjector,
    ComponentCompromiseAttack,
    FloodingAttack,
    MessageInjectionAttack,
)
from repro.security.ids import IdsRule, IntrusionDetectionSystem
from repro.contracts.model import Contract
from repro.platform.components import Component, ComponentRegistry
from repro.vehicle.environment import Weather, WeatherCondition


class TestIds:
    def _ids(self):
        ids = IntrusionDetectionSystem(suspicion_threshold=3)
        ids.add_rule(IdsRule("brake", allowed_ids={0x0A0}, allowed_peers={"pedal"},
                             max_rate_hz=100.0))
        return ids

    def test_authorized_traffic_silent(self):
        ids = self._ids()
        assert ids.observe_can_frame(0.0, "brake", 0x0A0) == []
        assert ids.observe_service_call(0.1, "brake", "pedal") == []
        assert ids.suspected_compromised() == []

    def test_unauthorized_id_detected(self):
        ids = self._ids()
        alerts = ids.observe_can_frame(0.0, "brake", 0x140)
        assert alerts and "unauthorized CAN id" in alerts[0].reason

    def test_unauthorized_peer_detected(self):
        ids = self._ids()
        alerts = ids.observe_service_call(0.0, "brake", "steering")
        assert alerts and "unauthorized peer" in alerts[0].reason

    def test_unknown_sender_detected(self):
        ids = self._ids()
        assert ids.observe_can_frame(0.0, "ghost", 0x1)[0].reason == "unknown sender"

    def test_rate_limit(self):
        ids = IntrusionDetectionSystem()
        ids.add_rule(IdsRule("chatty", max_rate_hz=10.0))
        alerts = []
        for i in range(30):
            alerts += ids.observe_can_frame(i * 0.01, "chatty", 0x1)
        assert any("rate limit" in a.reason for a in alerts)

    def test_suspicion_threshold_and_detection_time(self):
        ids = self._ids()
        for i in range(3):
            ids.observe_can_frame(float(i), "brake", 0x140)
        assert ids.is_suspected("brake")
        assert ids.detection_time("brake") == 2.0
        assert ids.first_alert_time("brake") == 0.0

    def test_anomaly_conversion_and_reset(self):
        ids = self._ids()
        ids.observe_can_frame(0.0, "brake", 0x140)
        anomalies = ids.drain_anomalies()
        assert len(anomalies) == 1 and anomalies[0].layer == "communication"
        assert ids.drain_anomalies() == []
        ids.reset()
        assert ids.violations_of("brake") == 0


class TestAccessControlDerivation:
    def test_policy_from_registry(self):
        registry = ComponentRegistry()
        provider = Contract("srv")
        provider.add_provided_service("svc")
        client = Contract("cli")
        client.add_required_service("svc")
        registry.add(Component(provider))
        registry.add(Component(client))
        registry.autowire()
        config = build_policy_from_registry(registry, can_id_assignments={"srv": {0x10}},
                                            default_rate_hz=50.0)
        assert ("cli", "srv", "svc") in config.allowed_calls
        assert config.allowed_peers_of("cli") == {"srv"}
        ids = config.configure_ids(IntrusionDetectionSystem())
        assert ids.rule_for("srv").allowed_ids == {0x10}
        assert ids.rule_for("cli").max_rate_hz == 50.0
        from repro.monitoring.enforcement import AccessPolicyEnforcer, EnforcementAction
        enforcer = config.configure_enforcer(AccessPolicyEnforcer())
        assert enforcer.check(0.0, "cli", "srv", "svc") == EnforcementAction.ALLOWED
        assert enforcer.check(0.0, "srv", "cli", "svc") == EnforcementAction.BLOCKED


class TestAttacks:
    def test_message_injection_window(self):
        attack = MessageInjectionAttack("spoof", "brake", start_time=5.0, duration=2.0,
                                        spoofed_ids=(0x140,), frames_per_cycle=2)
        assert attack.malicious_frames(4.0) == []
        frames = attack.malicious_frames(5.5)
        assert len(frames) == 2 and frames[0].can_id == 0x140
        assert frames[0].source == "brake"
        assert attack.malicious_frames(8.0) == []

    def test_flooding_attack_volume(self):
        attack = FloodingAttack("flood", "infotainment", start_time=0.0, frames_per_cycle=20)
        assert len(attack.malicious_frames(1.0)) == 20

    def test_compromise_attack_calls(self):
        attack = ComponentCompromiseAttack("lateral", "gateway", start_time=0.0,
                                           target_peers=("brake", "steering"),
                                           calls_per_cycle=2)
        calls = attack.malicious_calls(0.0)
        assert ("gateway", "brake") in calls

    def test_injector_aggregates(self):
        injector = AttackInjector()
        injector.add(MessageInjectionAttack("a", "brake", start_time=0.0))
        injector.add(FloodingAttack("b", "telematics", start_time=10.0))
        assert injector.compromised_components() == ["brake", "telematics"]
        assert injector.compromised_components(time=0.0) == ["brake"]
        assert len(injector.frames_at(0.0)) == 1
        assert injector.injected_frames == 1


class TestTrustModel:
    def test_reputation_evolves_with_evidence(self):
        trust = TrustModel()
        assert trust.level("peer") == TrustLevel.SUSPECT
        for _ in range(5):
            trust.record_consistent("peer")
        assert trust.is_trusted("peer")
        for _ in range(10):
            trust.record_deviation("peer")
        assert trust.is_untrusted("peer")
        assert trust.weight("peer") == 0.0

    def test_reset(self):
        trust = TrustModel()
        trust.record_deviation("peer")
        trust.reset("peer")
        assert trust.reputation("peer") == trust.initial_trust

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            TrustModel(trusted_threshold=0.2, untrusted_threshold=0.5)


class TestConsensus:
    def test_median_consensus_weighted(self):
        assert median_consensus([1.0, 2.0, 100.0]) == 2.0
        assert median_consensus([1.0, 10.0], weights=[10.0, 1.0]) == 1.0
        with pytest.raises(ValueError):
            median_consensus([])

    def test_honest_members_converge(self):
        protocol = ConsensusProtocol(tolerance=0.1)
        result = protocol.agree({"a": 20.0, "b": 24.0, "c": 22.0})
        assert result.converged
        assert 20.0 <= result.value <= 24.0
        assert result.agreement_error(["a", "b", "c"]) <= 0.1

    def test_malicious_member_does_not_drag_agreement(self):
        protocol = ConsensusProtocol(tolerance=0.1)
        honest = {"a": 20.0, "b": 21.0, "c": 22.0}
        result = protocol.agree({**honest, "evil": 20.0},
                                faulty_behaviour={"evil": lambda r: 200.0 + 10 * r})
        assert result.converged
        assert result.value <= 25.0  # stays near the honest values

    def test_all_faulty_fails_gracefully(self):
        protocol = ConsensusProtocol()
        result = protocol.agree({"evil": 10.0}, faulty_behaviour={"evil": lambda r: 1e9})
        assert not result.converged and result.value is None

    @given(values=st.lists(st.floats(min_value=5.0, max_value=35.0), min_size=3, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_agreement_within_honest_range(self, values):
        """Property: with only honest members, the agreed value lies within
        the range of the initial proposals."""
        proposals = {f"m{i}": v for i, v in enumerate(values)}
        result = ConsensusProtocol(tolerance=0.05).agree(proposals)
        assert result.converged
        assert min(values) - 1e-6 <= result.value <= max(values) + 1e-6


class TestPlatoon:
    def test_fog_limits_standalone_speed(self):
        member = PlatoonMember("ego", sensor_fog_capability=0.1, preferred_speed_mps=30.0)
        clear_speed = member.safe_standalone_speed(Weather.clear())
        fog_speed = member.safe_standalone_speed(Weather.dense_fog(visibility_m=50.0))
        assert fog_speed < clear_speed

    def test_platoon_agreement_benefits_impaired_member(self):
        platoon = Platoon(leader="leader")
        platoon.add_member(PlatoonMember("leader", sensor_visibility_m=220.0,
                                         sensor_fog_capability=0.9, preferred_speed_mps=24.0))
        platoon.add_member(PlatoonMember("ego", sensor_fog_capability=0.1,
                                         preferred_speed_mps=25.0))
        fog = Weather.dense_fog(visibility_m=60.0)
        result = platoon.agree_on_speed_and_gap(fog)
        assert result.converged
        assert platoon.agreed_speed_mps is not None
        assert platoon.speed_benefit("ego", fog) > 0.0
        # The agreed speed never exceeds what the slowest honest member supports.
        bounds = [platoon.platoon_speed_bound(m, fog, platoon.agreed_gap_m or 10.0)
                  for m in platoon.honest_members()]
        assert platoon.agreed_speed_mps <= max(min(bounds), min(bounds)) + 1e-6

    def test_malicious_member_cannot_inflate_speed(self):
        platoon = Platoon(leader="leader")
        platoon.add_member(PlatoonMember("leader", sensor_fog_capability=0.9,
                                         preferred_speed_mps=24.0))
        platoon.add_member(PlatoonMember("ego", sensor_fog_capability=0.1,
                                         preferred_speed_mps=25.0))
        platoon.add_member(PlatoonMember("liar", sensor_fog_capability=0.5,
                                         preferred_speed_mps=26.0, malicious=True))
        fog = Weather.dense_fog(visibility_m=60.0)
        result = platoon.agree_on_speed_and_gap(fog)
        assert result.converged
        honest_bounds = [platoon.platoon_speed_bound(m, fog, 10.0)
                         for m in platoon.honest_members()]
        assert platoon.agreed_speed_mps <= min(honest_bounds) + 1e-6

    def test_platoon_errors(self):
        platoon = Platoon(leader="leader")
        platoon.add_member(PlatoonMember("leader"))
        with pytest.raises(PlatoonError):
            platoon.agree_on_speed_and_gap(Weather.clear())
        with pytest.raises(PlatoonError):
            platoon.remove_member("leader")
        with pytest.raises(PlatoonError):
            platoon.add_member(PlatoonMember("leader"))


class TestRoadNetworkAndForecast:
    def test_alpine_network_routes(self):
        network = build_alpine_network()
        routes = network.all_simple_routes("south", "north")
        assert len(routes) >= 3
        pass_route = ["south", "pass_foot", "pass_summit", "north"]
        assert pass_route in routes
        assert network.path_length_km(pass_route) == pytest.approx(120.0)

    def test_segment_validation(self):
        with pytest.raises(RouteError):
            RoadSegment("a", "b", length_km=0.0, nominal_speed_kmh=100.0)
        with pytest.raises(RouteError):
            RoadSegment("a", "b", length_km=1.0, nominal_speed_kmh=100.0, elevation="space")
        network = RoadNetwork()
        network.add_segment(RoadSegment("a", "b", 10.0, 100.0))
        with pytest.raises(RouteError):
            network.add_segment(RoadSegment("a", "b", 10.0, 100.0))
        with pytest.raises(RouteError):
            network.segment("a", "z")

    def test_forecast_probabilities_normalized(self):
        forecast = SegmentForecast({WeatherCondition.CLEAR: 2.0, WeatherCondition.SNOW: 2.0})
        assert forecast.probability(WeatherCondition.CLEAR) == pytest.approx(0.5)
        assert forecast.adverse_probability() == pytest.approx(0.5)

    def test_exposure_grows_with_elevation_and_severity(self):
        network = build_alpine_network()
        pass_segment = network.segment("pass_foot", "pass_summit")
        valley_segment = network.segment("south", "valley_junction")
        forecast = WeatherForecast(severity=0.4)
        assert (forecast.adverse_probability(pass_segment)
                > forecast.adverse_probability(valley_segment))
        assert (WeatherForecast(severity=0.8).adverse_probability(pass_segment)
                > forecast.adverse_probability(pass_segment))

    def test_expected_speed_factor_below_one_in_bad_weather(self):
        network = build_alpine_network()
        pass_segment = network.segment("pass_foot", "pass_summit")
        assert WeatherForecast(severity=0.9).expected_speed_factor(pass_segment) < 0.8


class TestRiskAwarePlanner:
    def test_clear_forecast_prefers_short_pass(self):
        planner = RiskAwarePlanner(build_alpine_network())
        route = planner.plan("south", "north", WeatherForecast(severity=0.0))
        assert "pass_summit" in route.nodes

    def test_degraded_vehicle_takes_detour_in_severe_weather(self):
        from repro.scenarios.weather_routing import DEGRADED_VEHICLE_CAPABILITIES
        planner = RiskAwarePlanner(build_alpine_network(),
                                   capabilities=DEGRADED_VEHICLE_CAPABILITIES)
        route = planner.plan("south", "north", WeatherForecast(severity=0.7))
        assert "pass_summit" not in route.nodes
        assert route.length_km > 120.0

    def test_risk_neutral_baseline_sticks_to_pass(self):
        planner = RiskAwarePlanner(build_alpine_network(),
                                   capabilities={c: 1.0 for c in WeatherCondition},
                                   config=PlannerConfig(risk_aversion=0.0))
        route = planner.plan("south", "north", WeatherForecast(severity=0.9))
        assert "pass_summit" in route.nodes

    def test_alternatives_sorted_by_cost(self):
        planner = RiskAwarePlanner(build_alpine_network())
        alternatives = planner.alternatives("south", "north", WeatherForecast(severity=0.5))
        costs = [route.cost for route in alternatives]
        assert costs == sorted(costs)

    def test_unknown_route_raises(self):
        planner = RiskAwarePlanner(build_alpine_network())
        with pytest.raises(RouteError):
            planner.plan("south", "nowhere", WeatherForecast(severity=0.1))

    def test_invalid_capabilities(self):
        with pytest.raises(ValueError):
            RiskAwarePlanner(build_alpine_network(),
                             capabilities={WeatherCondition.SNOW: 1.5})
