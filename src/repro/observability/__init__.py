"""Campaign observability: structured tracing, metrics folding, dashboards.

The paper's self-aware architecture rests on aggregating "metrics from
different layers ... to a consistent self-representation of the system"
(Section V).  The campaign engine spans many layers by now — the staged
wave loop, the sharded multiprocess executor, the adversity seams, the
shared analysis cache and its on-disk segment store — and each emits its
own flat counters.  This package is the read side that folds them back
together:

* :mod:`repro.observability.tracer` — :class:`CampaignTracer`, a
  zero-overhead-when-disabled structured event sink (JSONL spans with
  monotonic timestamps and wave/shard/vehicle context) that the campaign
  engine, the shard executor, the adversity seams and the analysis cache
  all report into.
* :mod:`repro.observability.metrics_bridge` — folds tracer events and the
  engine's ``shard_telemetry`` rows into the seed's
  :class:`~repro.monitoring.metrics.MetricRegistry`, so campaign-level
  observability aggregates through the exact self-representation substrate
  the paper describes for the vehicle.
* :mod:`repro.observability.dashboard` — a dependency-free static HTML
  fleet dashboard (``python -m repro.experiments report``) rendered from
  campaign records, tracer files and the committed ``BENCH_*.json`` perf
  records.
"""

from repro.observability.tracer import (WALL_CLOCK_FIELDS, CampaignTracer,
                                        TraceError, load_trace)
from repro.observability.metrics_bridge import (cache_efficiency,
                                                campaign_metric_registry,
                                                service_metric_registry,
                                                shard_imbalance,
                                                wave_latencies)
from repro.observability.dashboard import (flatten_result_documents,
                                           render_dashboard)

__all__ = [
    "CampaignTracer",
    "TraceError",
    "WALL_CLOCK_FIELDS",
    "cache_efficiency",
    "campaign_metric_registry",
    "flatten_result_documents",
    "load_trace",
    "render_dashboard",
    "service_metric_registry",
    "shard_imbalance",
    "wave_latencies",
]
