"""Scenario: weather-aware route planning under uncertainty (E8).

"A self-aware vehicle could determine whether it plans a (possibly shorter)
route across an alpine pass in winter or whether it is advantageous to take
a longer detour without risking degraded performance." (Section V)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.routing.planner import PlannerConfig, RiskAwarePlanner, Route, build_alpine_network
from repro.routing.weather_forecast import WeatherForecast
from repro.vehicle.environment import WeatherCondition


@dataclass
class WeatherRoutingResult:
    """Metrics of one routing decision at a given forecast severity."""

    severity: float
    aware_route: Route
    baseline_route: Route
    aware_takes_detour: bool
    baseline_takes_detour: bool
    aware_exposure: float
    baseline_exposure: float
    detour_extra_km: float

    @property
    def aware_avoids_exposure(self) -> bool:
        return self.aware_exposure <= self.baseline_exposure + 1e-9


#: Capability profile of a vehicle whose perception degrades strongly in
#: snow/fog (the self-aware planner knows this about itself).
DEGRADED_VEHICLE_CAPABILITIES: Dict[WeatherCondition, float] = {
    WeatherCondition.CLEAR: 1.0,
    WeatherCondition.RAIN: 0.85,
    WeatherCondition.DENSE_FOG: 0.25,
    WeatherCondition.SNOW: 0.30,
}


def _route_uses_pass(route: Route) -> bool:
    return any(node.startswith("pass_") for node in route.nodes)


def run_weather_routing_scenario(severity: float,
                                 capabilities: Optional[Dict[WeatherCondition, float]] = None,
                                 risk_aversion: float = 1.0) -> WeatherRoutingResult:
    """Compare the self-aware (risk-aware) planner against the baseline
    shortest-expected-time planner at one forecast severity."""
    network = build_alpine_network()
    forecast = WeatherForecast(severity=severity, dominant_condition=WeatherCondition.SNOW)
    capability_profile = capabilities or DEGRADED_VEHICLE_CAPABILITIES

    aware = RiskAwarePlanner(network, capabilities=capability_profile,
                             config=PlannerConfig(risk_aversion=risk_aversion))
    baseline = RiskAwarePlanner(network, capabilities={c: 1.0 for c in WeatherCondition},
                                config=PlannerConfig(risk_aversion=0.0))

    aware_route = aware.plan("south", "north", forecast)
    baseline_route = baseline.plan("south", "north", forecast)

    return WeatherRoutingResult(
        severity=severity,
        aware_route=aware_route,
        baseline_route=baseline_route,
        aware_takes_detour=not _route_uses_pass(aware_route),
        baseline_takes_detour=not _route_uses_pass(baseline_route),
        aware_exposure=aware_route.exposure,
        baseline_exposure=baseline_route.exposure,
        detour_extra_km=aware_route.length_km - baseline_route.length_km)


def sweep_severity(severities: List[float],
                   risk_aversion: float = 1.0) -> List[WeatherRoutingResult]:
    """Severity sweep used by the E8 benchmark; shows the crossover severity
    at which the self-aware planner switches from the pass to the detour."""
    return [run_weather_routing_scenario(severity, risk_aversion=risk_aversion)
            for severity in severities]


def crossover_severity(resolution: float = 0.05) -> Optional[float]:
    """The lowest forecast severity at which the self-aware planner abandons
    the alpine pass (None if it never does within [0, 1])."""
    severity = 0.0
    while severity <= 1.0 + 1e-9:
        result = run_weather_routing_scenario(severity)
        if result.aware_takes_detour:
            return severity
        severity += resolution
    return None
