"""Driving-function substrate (Sections IV and V).

The paper's functional self-awareness concepts are exercised against this
simulated vehicle: longitudinal dynamics of an ego vehicle following lead
traffic, environment effects (fog, rain, ambient temperature), sensor models
whose data quality degrades with the environment and injected faults, a
simple object tracker, driver-intent estimation, actuators (powertrain and
brakes, including the drive-train braking fallback used in the rear-brake
intrusion example) and an ACC controller.
"""

from repro.vehicle.dynamics import VehicleParameters, VehicleState, LongitudinalDynamics
from repro.vehicle.environment import Weather, WeatherCondition, Environment, LeadVehicle
from repro.vehicle.sensors import (
    Sensor,
    RadarSensor,
    CameraSensor,
    LidarSensor,
    SensorFault,
    SensorReading,
)
from repro.vehicle.tracking import ObjectTracker, TrackedObject
from repro.vehicle.driver import DriverIntentEstimator, DriverIntent
from repro.vehicle.actuators import Actuator, BrakeActuator, PowertrainActuator, ActuatorFault
from repro.vehicle.acc import AccController, AccConfig, AccStatus

__all__ = [
    "VehicleParameters",
    "VehicleState",
    "LongitudinalDynamics",
    "Weather",
    "WeatherCondition",
    "Environment",
    "LeadVehicle",
    "Sensor",
    "RadarSensor",
    "CameraSensor",
    "LidarSensor",
    "SensorFault",
    "SensorReading",
    "ObjectTracker",
    "TrackedObject",
    "DriverIntentEstimator",
    "DriverIntent",
    "Actuator",
    "BrakeActuator",
    "PowertrainActuator",
    "ActuatorFault",
    "AccController",
    "AccConfig",
    "AccStatus",
]
