"""E9 (Section II.A): worst-case response-time analysis as the MCC's timing
acceptance test.

Regenerates the behaviour of the timing viewpoint over synthetic task sets
(UUniFast workloads): acceptance rate versus utilization, the soundness gap
between the analytical bound and simulated response times, and the analysis
runtime that determines how quickly the MCC can evaluate an update.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from conftest import best_of, print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.analysis.cpa import _EPS, EventModel, ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.scheduler import FixedPriorityScheduler
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG


def _taskset(seed: int, n: int, utilization: float) -> TaskSet:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.5)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
    taskset.assign_deadline_monotonic_priorities()
    return taskset


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_acceptance_rate_vs_utilization(benchmark):
    utilizations = [0.5, 0.7, 0.8, 0.9, 0.95]
    samples = 40

    def sweep():
        rates = []
        for utilization in utilizations:
            accepted = sum(
                1 for seed in range(samples)
                if ResponseTimeAnalysis(_taskset(seed, 8, utilization)).schedulable())
            rates.append(accepted / samples)
        return rates

    rates = benchmark(sweep)
    rows = [{"utilization": u, "acceptance_rate": r} for u, r in zip(utilizations, rates)]
    print_table("E9: timing acceptance rate vs task-set utilization (8 tasks, 40 sets)", rows)
    assert rates == sorted(rates, reverse=True)
    assert rates[0] == 1.0
    assert rates[-1] < 1.0


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_bound_vs_simulation_gap(benchmark):
    """The analytical WCRT dominates the simulated worst case; report the gap."""

    def evaluate():
        gaps = []
        for seed in range(10):
            taskset = _taskset(seed, 6, 0.7)
            analysis = ResponseTimeAnalysis(taskset).analyse()
            horizon = min(2.0, 30 * max(t.period for t in taskset))
            stats = FixedPriorityScheduler(taskset).run(horizon)
            for name, result in analysis.items():
                observed = stats.worst_response_times.get(name)
                if observed is not None and result.wcrt is not None:
                    gaps.append(result.wcrt / observed)
        return gaps

    ratios = benchmark(evaluate)
    rows = [{"metric": "bound / simulated worst case",
             "min": min(ratios), "mean": sum(ratios) / len(ratios), "max": max(ratios)}]
    print_table("E9: soundness gap of the WCRT bound", rows)
    assert min(ratios) >= 1.0 - 1e-9


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_analysis_runtime_scaling(benchmark):
    """Runtime of the analysis itself for a 40-task set (the MCC-side cost)."""
    taskset = _taskset(123, 40, 0.75)

    def analyse():
        return ResponseTimeAnalysis(taskset).schedulable()

    verdict = benchmark(analyse)
    assert verdict in (True, False)


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_cached_acceptance_sweep(benchmark):
    """Repeated acceptance sweep through the memoization cache.

    The same task sets are re-validated 10 times (the pattern of grid
    repetitions and per-change re-analysis of unchanged processors); the
    cache answers all but the first validation of each set, and the measured
    speedup over the uncached path must clear 1.5x.
    """
    tasksets = [_taskset(seed, 12, utilization)
                for seed in range(3) for utilization in (0.6, 0.75, 0.9)]
    repeats = 10

    # Both sides do the work the timing acceptance test needs: a full
    # per-task analysis (the MCC consumes every WCRT as a metric), not just
    # an early-exiting verdict.
    def uncached_sweep():
        return [all(r.schedulable for r in ResponseTimeAnalysis(taskset).analyse().values())
                for _ in range(repeats) for taskset in tasksets]

    def cached_sweep():
        cache = AnalysisCache()
        verdicts = [all(r.schedulable for r in cache.analyse(taskset).values())
                    for _ in range(repeats) for taskset in tasksets]
        return cache, verdicts

    # min-of-3 on both sides so a single scheduler stall on a loaded CI
    # runner cannot flip the speedup assertion.
    uncached_verdicts = uncached_sweep()
    uncached_times = []
    for _ in range(3):
        started = time.perf_counter()
        uncached_sweep()
        uncached_times.append(time.perf_counter() - started)
    uncached_s = min(uncached_times)

    (cache, cached_verdicts) = benchmark(cached_sweep)
    cached_times = []
    for _ in range(3):
        started = time.perf_counter()
        cached_sweep()
        cached_times.append(time.perf_counter() - started)
    cached_s = min(cached_times)

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    print_table("E9: CPA memoization on a repeated acceptance sweep", [{
        "task_sets": len(tasksets), "repeats": repeats,
        "uncached_s": uncached_s, "cached_s": cached_s, "speedup": speedup,
        "hits": cache.hits, "misses": cache.misses, "hit_rate": cache.hit_rate,
    }])
    assert cached_verdicts == uncached_verdicts
    assert cache.misses == len(tasksets)
    assert cache.hits == len(tasksets) * (repeats - 1)
    assert speedup > 1.5
    write_bench_record("e9_cached_acceptance_sweep", {
        "task_sets": len(tasksets), "repeats": repeats,
        "uncached_s": uncached_s, "cached_s": cached_s, "speedup": speedup,
        "hits": cache.hits, "misses": cache.misses, "hit_rate": cache.hit_rate,
    })


# ---------------------------------------------------------------------------
# Incremental engine vs the PR-1 analysis on a realistic acceptance sweep.
# ---------------------------------------------------------------------------

class _Pr1ReferenceAnalysis:
    """Faithful port of the PR-1 busy-window analysis, kept as the
    measurement baseline.

    The production :class:`ResponseTimeAnalysis` has since gained a fast
    inner loop, so timing it against itself would hide most of this PR's
    gain.  This reference reproduces the PR-1 formulation exactly: per-task
    ``analyse()`` over the whole set (no early exit) with the interference
    sum resolving event models through ``EventModel.from_task`` inside the
    fixpoint iteration.
    """

    def __init__(self, taskset: TaskSet, max_iterations: int = 10_000) -> None:
        self.taskset = taskset
        self.max_iterations = max_iterations

    def _response_time_schedulable(self, task: Task) -> bool:
        higher = self.taskset.higher_priority_than(task)
        own_model = EventModel.from_task(task)
        wcet = task.wcet
        deadline = task.deadline if task.deadline is not None else task.period
        busy_window_limit = max(deadline, task.period) * 64
        worst = 0.0
        q = 1
        while True:
            completion = q * wcet
            for _ in range(self.max_iterations):
                interference = sum(
                    EventModel.from_task(t).eta_plus(completion) * t.wcet
                    for t in higher)
                new_completion = q * wcet + interference
                if abs(new_completion - completion) <= _EPS:
                    completion = new_completion
                    break
                completion = new_completion
                if completion > busy_window_limit:
                    return False
            release = own_model.delta_min(q)
            worst = max(worst, completion - release + own_model.jitter)
            if completion <= own_model.delta_min(q + 1) + _EPS:
                break
            q += 1
            if q * wcet > busy_window_limit:
                return False
        return worst <= deadline + _EPS

    def schedulable(self) -> bool:
        verdicts = [self._response_time_schedulable(task) for task in self.taskset]
        return all(verdicts)


def _clone(tasks) -> TaskSet:
    return TaskSet([Task(t.name, period=t.period, wcet=t.wcet, deadline=t.deadline,
                         priority=t.priority, jitter=t.jitter) for t in tasks])


def _acceptance_sweep_grids(chains: int, n: int) -> List[TaskSet]:
    """The E9/in-field sweep shape: per chain, a baseline task set followed
    by add-component steps (the accepted-update pattern) and a WCET
    inflation grid over one task (the risky-update pattern)."""
    grids: List[TaskSet] = []
    for seed in range(chains):
        for utilization in (0.6, 0.75, 0.9):
            base = _taskset(seed, n, utilization)
            tasks = base.tasks()
            grids.append(_clone(tasks))
            rng = SeededRNG(seed + 500)
            cursor = list(tasks)
            max_priority = max(t.priority for t in cursor)
            for step in range(6):
                period = rng.choice([0.05, 0.1, 0.2])
                cursor = cursor + [Task(f"add{step}", period=period,
                                        wcet=period * rng.uniform(0.01, 0.05),
                                        priority=max_priority + 1 + step)]
                grids.append(_clone(cursor))
            victim = tasks[len(tasks) // 2].name
            for factor in (1.05, 1.1, 1.2, 1.3, 1.5):
                grids.append(_clone([t.scaled(factor) if t.name == victim else t
                                     for t in tasks]))
    return grids


@pytest.mark.benchmark(group="e9-wcrt")
def test_e9_incremental_engine_speedup(benchmark):
    """Incremental engine vs the PR-1 analysis on the acceptance sweep.

    The sweep walks task-set grids whose neighbours differ in one task —
    the dominant MCC workload.  The incremental engine must (a) return
    bit-identical verdicts and (b) clear a 3x speedup over the PR-1
    baseline; both the intermediate numbers and the final speedup land in
    ``BENCH_e9_incremental_speedup.json``.
    """
    quick = quick_mode()
    grids = _acceptance_sweep_grids(chains=2 if quick else 6, n=8 if quick else 12)

    pr1_s, pr1_verdicts = best_of(
        lambda: [_Pr1ReferenceAnalysis(ts).schedulable() for ts in grids])
    full_s, full_verdicts = best_of(
        lambda: [ResponseTimeAnalysis(ts).schedulable() for ts in grids])

    def incremental_sweep():
        engine = IncrementalResponseTimeAnalysis()
        return [engine.schedulable(ts) for ts in grids], engine

    inc_s, (inc_verdicts, engine) = best_of(incremental_sweep)
    benchmark(lambda: incremental_sweep()[0])

    assert inc_verdicts == full_verdicts == pr1_verdicts
    speedup_vs_pr1 = pr1_s / inc_s if inc_s > 0 else float("inf")
    speedup_fastpath = pr1_s / full_s if full_s > 0 else float("inf")
    rows = [{
        "task_sets": len(grids),
        "pr1_baseline_s": pr1_s,
        "fastpath_full_s": full_s,
        "incremental_s": inc_s,
        "speedup_vs_pr1": speedup_vs_pr1,
        "fastpath_only_speedup": speedup_fastpath,
        "reuse_rate": engine.reuse_rate,
        "warm_started": engine.tasks_warm_started,
    }]
    print_table("E9: incremental CPA engine on the acceptance sweep "
                "(target: >= 3x vs PR-1)", rows)
    write_bench_record("e9_incremental_speedup", rows[0])
    assert speedup_vs_pr1 >= 3.0
