"""Adaptive Cruise Control (ACC) controller.

The ACC controller realizes the main skill of the paper's worked example:
it keeps the set speed when no target is present and keeps a time-gap to the
target object otherwise, using the tracker output, the driver intent and the
actuators.  The controller continuously assesses its own control performance
(the self-awareness hook of [21] in the paper) and respects an externally
imposed speed limit — the knob the ability layer turns when braking
capability is degraded.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.vehicle.actuators import BrakeActuator, PowertrainActuator
from repro.vehicle.driver import DriverIntent, DriverIntentKind
from repro.vehicle.dynamics import LongitudinalDynamics
from repro.vehicle.tracking import TrackedObject


class AccStatus(enum.Enum):
    """Operational status of the ACC function."""

    ACTIVE = "active"
    OVERRIDDEN = "overridden"
    DISENGAGED = "disengaged"
    DEGRADED = "degraded"


@dataclass
class AccConfig:
    """ACC tuning parameters."""

    speed_gain: float = 0.35
    gap_gain: float = 0.18
    rate_gain: float = 0.45
    min_gap_m: float = 5.0
    comfort_decel_mps2: float = 2.5
    max_decel_mps2: float = 6.0
    control_period_s: float = 0.05

    def __post_init__(self) -> None:
        if self.control_period_s <= 0:
            raise ValueError("control period must be positive")
        if self.min_gap_m <= 0:
            raise ValueError("minimum gap must be positive")


@dataclass
class AccCommand:
    """One control output of the ACC controller."""

    time: float
    drive: float
    brake: float
    target_speed_mps: float
    status: AccStatus
    desired_gap_m: Optional[float] = None
    actual_gap_m: Optional[float] = None


class AccController:
    """Time-gap ACC with self-assessment of control performance."""

    def __init__(self, dynamics: LongitudinalDynamics,
                 powertrain: PowertrainActuator, brakes: BrakeActuator,
                 config: Optional[AccConfig] = None) -> None:
        self.dynamics = dynamics
        self.powertrain = powertrain
        self.brakes = brakes
        self.config = config or AccConfig()
        self.status = AccStatus.ACTIVE
        #: Externally imposed maximum speed (m/s); None means unrestricted.
        self.speed_limit_mps: Optional[float] = None
        self.commands: List[AccCommand] = []
        self._speed_errors: List[float] = []
        self._gap_errors: List[float] = []

    # -- external restrictions -----------------------------------------------------------

    def impose_speed_limit(self, limit_mps: Optional[float]) -> None:
        """Impose (or lift, with ``None``) a maximum speed; used by the
        ability layer when braking capability is reduced."""
        if limit_mps is not None and limit_mps < 0:
            raise ValueError("speed limit must be non-negative")
        self.speed_limit_mps = limit_mps

    def disengage(self) -> None:
        self.status = AccStatus.DISENGAGED

    def engage(self) -> None:
        self.status = AccStatus.ACTIVE

    # -- control law -------------------------------------------------------------------------

    def step(self, time: float, intent: DriverIntent,
             track: Optional[TrackedObject]) -> AccCommand:
        """Compute one control command and apply it to the dynamics model."""
        config = self.config
        ego_speed = self.dynamics.state.speed_mps

        if intent.kind == DriverIntentKind.DISENGAGE:
            self.status = AccStatus.DISENGAGED
        elif intent.kind in (DriverIntentKind.OVERRIDE_BRAKE,
                             DriverIntentKind.OVERRIDE_ACCELERATE):
            self.status = AccStatus.OVERRIDDEN
        elif self.status in (AccStatus.DISENGAGED, AccStatus.OVERRIDDEN):
            self.status = AccStatus.ACTIVE

        if self.status == AccStatus.DISENGAGED:
            command = AccCommand(time=time, drive=0.0, brake=0.0,
                                 target_speed_mps=0.0, status=self.status)
            self._apply(command)
            return command
        if self.status == AccStatus.OVERRIDDEN:
            drive = 0.6 if intent.kind == DriverIntentKind.OVERRIDE_ACCELERATE else 0.0
            brake = 0.6 if intent.kind == DriverIntentKind.OVERRIDE_BRAKE else 0.0
            command = AccCommand(time=time, drive=drive, brake=brake,
                                 target_speed_mps=ego_speed, status=self.status)
            self._apply(command)
            return command

        # Target speed: driver set speed, clipped by the imposed limit.
        target_speed = intent.set_speed_mps
        if self.speed_limit_mps is not None:
            target_speed = min(target_speed, self.speed_limit_mps)

        desired_gap = None
        actual_gap = None
        acceleration_demand = config.speed_gain * (target_speed - ego_speed)

        if track is not None and track.usable:
            actual_gap = track.range_m
            desired_gap = max(config.min_gap_m, intent.headway_s * ego_speed)
            gap_error = actual_gap - desired_gap
            closing_rate = track.range_rate_mps
            follow_demand = config.gap_gain * gap_error + config.rate_gain * closing_rate
            acceleration_demand = min(acceleration_demand, follow_demand)
            self._gap_errors.append(abs(gap_error) / max(desired_gap, 1.0))

        self._speed_errors.append(abs(target_speed - ego_speed) / max(target_speed, 1.0))

        acceleration_demand = max(-config.max_decel_mps2, min(2.0, acceleration_demand))
        drive, brake = self._demand_to_commands(acceleration_demand)
        command = AccCommand(time=time, drive=drive, brake=brake,
                             target_speed_mps=target_speed, status=self.status,
                             desired_gap_m=desired_gap, actual_gap_m=actual_gap)
        self._apply(command)
        return command

    def _demand_to_commands(self, acceleration_demand: float) -> tuple[float, float]:
        """Translate an acceleration demand (m/s^2) into drive/brake commands."""
        params = self.dynamics.parameters
        if acceleration_demand >= 0:
            force = acceleration_demand * params.mass_kg + self.dynamics.resistive_forces(
                self.dynamics.state.speed_mps)
            drive = min(1.0, max(0.0, force / params.max_drive_force_n))
            return drive, 0.0
        required_force = -acceleration_demand * params.mass_kg
        available = self.dynamics.available_brake_force()
        brake = min(1.0, required_force / available) if available > 0 else 1.0
        return 0.0, brake

    def _apply(self, command: AccCommand) -> None:
        effective_drive = self.powertrain.apply(self.dynamics, command.drive)
        effective_brake = self.brakes.apply(self.dynamics, command.brake)
        self.dynamics.step(self.config.control_period_s, effective_drive, effective_brake)
        self.commands.append(command)

    # -- self-assessment --------------------------------------------------------------------------

    def control_performance(self, window: int = 50) -> float:
        """Control-performance score in [0, 1] for the ability graph.

        Based on recent normalized speed and gap errors: 1.0 means the
        controller tracks its references tightly, lower values indicate the
        plant no longer responds as the controller expects (e.g. degraded
        brakes, changed friction) — the condition [21] monitors for.
        """
        errors: List[float] = []
        errors.extend(self._speed_errors[-window:])
        errors.extend(self._gap_errors[-window:])
        if not errors:
            return 1.0
        mean_error = sum(errors) / len(errors)
        return max(0.0, min(1.0, 1.0 - mean_error))

    def minimum_gap_observed(self) -> Optional[float]:
        gaps = [c.actual_gap_m for c in self.commands if c.actual_gap_m is not None]
        return min(gaps) if gaps else None
