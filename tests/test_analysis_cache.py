"""Tests for the CPA memoization cache (repro.analysis.cache)."""

from __future__ import annotations

import pytest

from repro.analysis.cache import (
    AnalysisCache,
    CachedResponseTimeAnalysis,
    fingerprint_taskset,
    taskset_key,
)
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis
from repro.mcc.acceptance import TimingAcceptanceTest
from repro.platform.tasks import Task, TaskSet
from repro.scenarios.infield_update import run_infield_update_scenario


def _taskset(wcet_high: float = 0.002) -> TaskSet:
    return TaskSet([
        Task("t_high", period=0.01, wcet=wcet_high, priority=0),
        Task("t_mid", period=0.02, wcet=0.005, priority=1),
        Task("t_low", period=0.05, wcet=0.010, priority=2),
    ])


class TestFingerprint:
    """Fingerprints depend on content, not identity or insertion order."""

    def test_identical_content_same_fingerprint(self):
        assert fingerprint_taskset(_taskset()) == fingerprint_taskset(_taskset())

    def test_insertion_order_is_irrelevant(self):
        forward = _taskset()
        backward = TaskSet(list(reversed(forward.tasks())))
        assert fingerprint_taskset(forward) == fingerprint_taskset(backward)

    def test_parameter_changes_change_fingerprint(self):
        base = fingerprint_taskset(_taskset())
        assert fingerprint_taskset(_taskset(wcet_high=0.003)) != base
        assert fingerprint_taskset(_taskset(), speed_factor=0.5) != base
        assert fingerprint_taskset(
            _taskset(), event_models={"t_high": EventModel(0.01, 0.001)}) != base


class TestTasksetKey:
    """The exact tuple key underlying the fingerprint."""

    def test_key_matches_for_equal_content(self):
        assert taskset_key(_taskset()) == taskset_key(_taskset())
        backward = TaskSet(list(reversed(_taskset().tasks())))
        assert taskset_key(_taskset()) == taskset_key(backward)

    def test_key_differs_on_any_parameter(self):
        base = taskset_key(_taskset())
        assert taskset_key(_taskset(wcet_high=0.003)) != base
        assert taskset_key(_taskset(), speed_factor=0.5) != base
        assert taskset_key(
            _taskset(), event_models={"t_high": EventModel(0.01, 0.001)}) != base


class TestAnalyseMany:
    """Batched lookups: parity with per-set analyse, hit/miss accounting."""

    def test_batch_matches_per_set_calls(self):
        grids = [_taskset(), _taskset(wcet_high=0.003), _taskset(wcet_high=0.004)]
        batched = AnalysisCache().analyse_many(grids)
        reference = AnalysisCache()
        assert batched == [reference.analyse(taskset) for taskset in grids]

    def test_empty_batch(self):
        cache = AnalysisCache()
        assert cache.analyse_many([]) == []
        assert (cache.hits, cache.misses) == (0, 0)

    def test_intra_batch_duplicates_count_as_hits(self):
        cache = AnalysisCache()
        results = cache.analyse_many([_taskset(), _taskset(), _taskset()])
        assert (cache.hits, cache.misses) == (2, 1)
        assert results[0] == results[1] == results[2]
        results[1].clear()  # callers get independent dicts
        assert results[0] and results[2]

    def test_warm_store_answers_batches(self):
        cache = AnalysisCache()
        cache.analyse(_taskset())
        cache.analyse_many([_taskset(), _taskset(wcet_high=0.003)])
        assert (cache.hits, cache.misses) == (1, 2)

    def test_eviction_bound_respected_by_batches(self):
        cache = AnalysisCache(max_entries=2)
        cache.analyse_many([_taskset(wcet_high=w)
                            for w in (0.001, 0.002, 0.003, 0.004)])
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_duplicates_do_not_inflate_misses_or_engine_work(self):
        """A batch with duplicate keys runs the engine once per distinct
        key: misses count distinct keys only, duplicates are hits."""
        cache = AnalysisCache()
        grids = [_taskset(), _taskset(wcet_high=0.003), _taskset(),
                 _taskset(wcet_high=0.003), _taskset()]
        results = cache.analyse_many(grids)
        assert (cache.hits, cache.misses) == (3, 2)
        assert results[0] == results[2] == results[4]
        assert results[1] == results[3]
        # Counters and engine work match the per-set analyse() sequence:
        # the duplicates trigger no extra engine traffic at all.
        reference = AnalysisCache()
        for taskset in grids:
            reference.analyse(taskset)
        assert (cache.hits, cache.misses) == (reference.hits, reference.misses)
        assert cache.engine.tasks_analysed <= reference.engine.tasks_analysed

    def test_duplicates_do_not_inflate_evictions(self):
        """Duplicate keys insert one store entry, so a tight capacity sees
        one insertion per distinct key — not one per occurrence."""
        cache = AnalysisCache(max_entries=1)
        cache.analyse_many([_taskset(), _taskset(), _taskset()])
        assert len(cache) == 1
        assert cache.evictions == 0
        cache.analyse_many([_taskset(wcet_high=0.003),
                            _taskset(wcet_high=0.003)])
        assert cache.evictions == 1  # one distinct new key, one eviction

    def test_duplicate_of_an_evicted_key_within_one_batch(self):
        """Capacity smaller than the batch's distinct keys: back-references
        still resolve to correct results after the first key was evicted."""
        cache = AnalysisCache(max_entries=1)
        grids = [_taskset(), _taskset(wcet_high=0.003), _taskset()]
        results = cache.analyse_many(grids)
        reference = AnalysisCache()
        assert results == [reference.analyse(taskset) for taskset in grids]
        assert cache.evictions == 1


class TestAnalysisCache:
    """Hit/miss behaviour and correctness of memoized results."""

    def test_miss_then_hit(self):
        cache = AnalysisCache()
        taskset = _taskset()
        first = cache.analyse(taskset)
        assert (cache.hits, cache.misses) == (0, 1)
        second = cache.analyse(_taskset())  # equal content, new object
        assert (cache.hits, cache.misses) == (1, 1)
        assert second == first
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hits_are_isolated_from_caller_mutation(self):
        cache = AnalysisCache()
        polluted = cache.analyse(_taskset())
        polluted.pop("t_high")
        assert "t_high" in cache.analyse(_taskset())

    def test_different_speed_factor_misses(self):
        cache = AnalysisCache()
        cache.analyse(_taskset())
        cache.analyse(_taskset(), speed_factor=0.6)
        assert (cache.hits, cache.misses) == (0, 2)

    def test_cached_results_equal_uncached(self):
        cache = AnalysisCache()
        for speed in (1.0, 0.6):
            cached = cache.analyse(_taskset(), speed_factor=speed)
            direct = ResponseTimeAnalysis(_taskset(), speed_factor=speed).analyse()
            assert set(cached) == set(direct)
            for name in direct:
                assert cached[name].wcrt == pytest.approx(direct[name].wcrt)
                assert cached[name].schedulable == direct[name].schedulable

    def test_schedulable_verdict(self):
        cache = AnalysisCache()
        assert cache.schedulable(_taskset())
        assert not cache.schedulable(_taskset(), speed_factor=0.2)

    def test_eviction_bound(self):
        cache = AnalysisCache(max_entries=2)
        for wcet in (0.001, 0.002, 0.003):
            cache.analyse(_taskset(wcet_high=wcet))
        assert len(cache) == 2
        # The first entry was evicted; re-analysing it is a miss again.
        cache.analyse(_taskset(wcet_high=0.001))
        assert cache.misses == 4

    def test_lru_hit_refreshes_eviction_order(self):
        """True LRU: a hit protects the entry, the *least recently used* one
        is evicted instead (FIFO would evict the oldest insertion)."""
        cache = AnalysisCache(max_entries=2)
        cache.analyse(_taskset(wcet_high=0.001))  # A
        cache.analyse(_taskset(wcet_high=0.002))  # B
        cache.analyse(_taskset(wcet_high=0.001))  # hit on A -> most recent
        cache.analyse(_taskset(wcet_high=0.003))  # C evicts B (LRU), not A
        assert cache.evictions == 1
        cache.analyse(_taskset(wcet_high=0.001))  # still cached
        assert (cache.hits, cache.misses) == (2, 3)
        cache.analyse(_taskset(wcet_high=0.002))  # B was evicted -> miss
        assert cache.misses == 4

    def test_hit_ratio_under_cycling_working_set(self):
        """A working set equal to the capacity stays fully resident under
        LRU (the FIFO predecessor evicted on every insertion while full)."""
        cache = AnalysisCache(max_entries=3)
        wcets = (0.001, 0.002, 0.003)
        for _ in range(4):
            for wcet in wcets:
                cache.analyse(_taskset(wcet_high=wcet))
        assert cache.misses == len(wcets)
        assert cache.hits == len(wcets) * 3
        assert cache.evictions == 0
        assert cache.hit_rate == pytest.approx(0.75)

    def test_clear_resets_counters(self):
        cache = AnalysisCache()
        cache.analyse(_taskset())
        cache.analyse(_taskset())
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        assert cache.engine.tasks_analysed == 0

    def test_misses_run_through_incremental_engine(self):
        """A miss on a near-identical task set is a delta re-analysis, not a
        from-scratch derivation: the unchanged higher-priority tasks are
        answered from the engine's previous snapshot."""
        def variant(wcet_low: float) -> TaskSet:
            return TaskSet([
                Task("t_high", period=0.01, wcet=0.002, priority=0),
                Task("t_mid", period=0.02, wcet=0.005, priority=1),
                Task("t_low", period=0.05, wcet=wcet_low, priority=2),
            ])

        cache = AnalysisCache()
        cache.analyse(variant(0.010))
        cache.analyse(variant(0.012))  # same names, lowest-priority task changed
        assert cache.misses == 2
        assert cache.engine.delta_analyses == 1
        assert cache.engine.tasks_reused == 2  # t_high and t_mid untouched

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AnalysisCache(max_entries=0)


class TestSnapshotPersistence:
    """On-disk snapshots and cross-cache entry movement."""

    def test_snapshot_roundtrip(self, tmp_path):
        cache = AnalysisCache()
        expected = {w: cache.analyse(_taskset(wcet_high=w))
                    for w in (0.001, 0.002, 0.003)}
        path = str(tmp_path / "cache.pkl")
        assert cache.save_snapshot(path) == 3
        warm = AnalysisCache()
        assert warm.load_snapshot(path) == 3
        for w, results in expected.items():
            assert warm.analyse(_taskset(wcet_high=w)) == results
        # Every lookup was answered from the snapshot: no engine traffic.
        assert (warm.hits, warm.misses) == (3, 0)
        assert warm.engine.tasks_analysed == 0

    def test_load_merges_and_respects_capacity(self, tmp_path):
        cache = AnalysisCache()
        for w in (0.001, 0.002, 0.003):
            cache.analyse(_taskset(wcet_high=w))
        path = str(tmp_path / "cache.pkl")
        cache.save_snapshot(path)
        small = AnalysisCache(max_entries=2)
        loaded = small.load_snapshot(path)
        assert loaded == 3
        assert len(small) == 2  # LRU bound holds under loading too
        assert small.evictions == 1
        # Loading is not a lookup.
        assert (small.hits, small.misses) == (0, 0)

    def test_load_missing_snapshot(self, tmp_path):
        cache = AnalysisCache()
        missing = str(tmp_path / "absent.pkl")
        assert cache.load_snapshot(missing, missing_ok=True) == 0
        with pytest.raises(FileNotFoundError):
            cache.load_snapshot(missing)

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.pkl"
        import pickle
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            AnalysisCache().load_snapshot(str(path))

    def test_merge_entries_refreshes_and_counts_inserts(self):
        source = AnalysisCache()
        source.analyse(_taskset(wcet_high=0.001))
        source.analyse(_taskset(wcet_high=0.002))
        target = AnalysisCache()
        target.analyse(_taskset(wcet_high=0.001))
        inserted = target.merge_entries(source.export_entries())
        assert inserted == 1  # the shared key already existed
        assert len(target) == 2
        assert (target.hits, target.misses) == (0, 1)  # merging is no lookup

    def test_export_entries_excludes_keys(self):
        cache = AnalysisCache()
        cache.analyse(_taskset(wcet_high=0.001))
        baseline = {key for key, _ in cache.export_entries()}
        cache.analyse(_taskset(wcet_high=0.002))
        fresh = cache.export_entries(exclude=baseline)
        assert len(fresh) == 1

    def test_pickled_cache_travels_empty(self):
        """Pickling a cache object (as a rider inside a shard payload)
        deliberately ships capacity only — warm-starts are explicit via
        snapshots, and verdicts never depend on cache contents."""
        import pickle
        cache = AnalysisCache(max_entries=7)
        cache.analyse(_taskset())
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_entries == 7
        assert len(clone) == 0
        assert (clone.hits, clone.misses) == (0, 0)
        # The clone still works as a cache afterwards.
        clone.analyse(_taskset())
        assert clone.misses == 1


class TestCachedResponseTimeAnalysis:
    """The drop-in facade matches the plain analysis."""

    def test_matches_plain_analysis(self):
        cache = AnalysisCache()
        cached = CachedResponseTimeAnalysis(_taskset(), cache)
        plain = ResponseTimeAnalysis(_taskset())
        assert cached.schedulable() == plain.schedulable()
        assert cached.utilization() == pytest.approx(plain.utilization())
        result = cached.response_time("t_mid")
        assert result.wcrt == pytest.approx(plain.response_time(
            plain.taskset.get("t_mid")).wcrt)
        # Second facade over an equal task set hits the shared cache.
        CachedResponseTimeAnalysis(_taskset(), cache).schedulable()
        assert cache.hits > 0


class TestMccIntegration:
    """The cache plugs into the timing acceptance test and the E1 scenario."""

    def test_timing_acceptance_with_cache_matches_uncached(self, acc_contracts,
                                                           dual_core_platform):
        mapping = {"tracker": "cpu0", "controller": "cpu1", "actuator": "cpu1"}
        priorities = {"tracker.task": 0, "controller.task": 0, "actuator.task": 1}
        plain = TimingAcceptanceTest().run(acc_contracts, mapping, priorities,
                                           dual_core_platform)
        cache = AnalysisCache()
        cached = TimingAcceptanceTest(cache=cache).run(
            acc_contracts, mapping, priorities, dual_core_platform)
        assert cached.passed == plain.passed
        assert cached.metrics == pytest.approx(plain.metrics)
        assert cache.misses > 0
        # Re-running the identical configuration is answered from the cache.
        TimingAcceptanceTest(cache=cache).run(acc_contracts, mapping, priorities,
                                              dual_core_platform)
        assert cache.hits >= cache.misses

    def test_repeated_campaigns_share_cache_and_agree(self):
        cache = AnalysisCache()
        baseline = run_infield_update_scenario(num_requests=8, seed=3, deploy=False)
        first = run_infield_update_scenario(num_requests=8, seed=3, deploy=False,
                                            analysis_cache=cache)
        hits_after_first = cache.hits
        second = run_infield_update_scenario(num_requests=8, seed=3, deploy=False,
                                             analysis_cache=cache)
        # Identical campaign, identical acceptance outcome with and without
        # the cache; the repeat run is served almost entirely from the cache.
        for result in (first, second):
            assert result.accepted == baseline.accepted
            assert result.rejected == baseline.rejected
            assert result.rejected_by_viewpoint == baseline.rejected_by_viewpoint
        assert hits_after_first > 0
        assert cache.hits > hits_after_first


class TestBatchKernelOrderPreservation:
    """Regression: `analyse_many` must return results in input order even
    when cold misses are re-batched by congruence group inside the
    batch-kernel engine (which solves groups out of input order)."""

    @staticmethod
    def _grid():
        from harness import make_taskset, rebuild
        from repro.sim.random import SeededRNG
        rng = SeededRNG(31)
        sets = []
        for seed in range(3):  # three congruence groups ...
            base = make_taskset(seed + 40, 5 + seed, 0.7).tasks()
            for _ in range(3):  # ... of three perturbed members each
                sets.append(rebuild([t.scaled(rng.uniform(0.8, 1.25))
                                     for t in base]))
        return sets

    def test_interleaved_hits_misses_and_duplicates(self):
        from harness import assert_equivalent, cold_results
        sets = self._grid()
        cache = AnalysisCache(batch_kernel=True)
        assert cache.batch_kernel
        # Warm three entries so the wave below interleaves hits with misses.
        cache.analyse_many([sets[0], sets[4], sets[8]])
        # Hit, miss, duplicate-miss, hit, miss — deliberately shuffled across
        # congruence groups so the engine regroups them internally.
        wave = [sets[4], sets[1], sets[5], sets[1], sets[0],
                sets[7], sets[2], sets[8], sets[5], sets[6]]
        results = cache.analyse_many(wave)
        assert len(results) == len(wave)
        for position, taskset in enumerate(wave):
            assert set(results[position]) == {t.name for t in taskset}, position
            assert_equivalent(results[position], cold_results(taskset),
                              f"wave position={position}")
        # Duplicates within the wave are answered by the batch, not re-analysed.
        assert cache.hits >= 2

    def test_batched_wave_equals_sequential_lookups(self):
        from harness import assert_equivalent
        sets = self._grid()
        batched_cache = AnalysisCache(batch_kernel=True)
        sequential_cache = AnalysisCache()
        batched = batched_cache.analyse_many(sets)
        sequential = [sequential_cache.analyse(taskset) for taskset in sets]
        for position in range(len(sets)):
            assert_equivalent(batched[position], sequential[position],
                              f"position={position}")

    def test_pickle_roundtrip_keeps_batch_kernel(self):
        import pickle
        cache = AnalysisCache(batch_kernel=True)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.batch_kernel
        assert not pickle.loads(pickle.dumps(AnalysisCache())).batch_kernel
