"""E10: fleet-scale staged update campaigns through the MCC.

Regenerates the production-scale admission story: one logical update rolled
out across a heterogeneous fleet in staged waves.  The series reports

* batched admission (shared analysis cache + incremental engine + verdict
  dedupe across equivalent vehicles) versus per-vehicle sequential
  admission — verdict parity is asserted and the measured speedup must
  clear 1.5x (the quantity lands in ``BENCH_e10_fleet_campaign.json``);
* the staged-rollout safety net: failure injection drives the wave failure
  rate over the policy threshold, the campaign halts at the canary or an
  early wave and rolls the wave back, bounding the blast radius.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, CampaignResult, WavePolicy
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import (build_update_contract,
                                            run_fleet_campaign_scenario)


def _campaign_run(batched: bool, fleet_size: int, num_variants: int,
                  failure_injection_rate: float = 0.0
                  ) -> Tuple[float, CampaignResult]:
    """Build a fresh fleet and time one campaign run (admission only)."""
    spec = FleetSpec(size=fleet_size, seed=0, num_variants=num_variants)
    cache = AnalysisCache() if batched else None
    fleet = generate_fleet(spec, analysis_cache=cache)
    contracts: Dict[int, object] = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    campaign = Campaign(fleet, factory, analysis_cache=cache,
                        batch_admission=batched,
                        failure_injection_rate=failure_injection_rate)
    started = time.perf_counter()
    result = campaign.run()
    return time.perf_counter() - started, result


def _digest(result: CampaignResult) -> Tuple:
    return (result.admitted, result.rejected, result.deviating,
            result.rolled_back, result.halted, result.halted_wave,
            [record.to_dict() for record in result.waves])


@pytest.mark.benchmark(group="e10-fleet")
def test_e10_batched_vs_sequential_admission(benchmark):
    """Batched wave admission must beat per-vehicle sequential admission.

    Both sides run the identical staged campaign over the identical fleet;
    min-of-3 timing on each side so one scheduler stall cannot flip the
    assertion.  Verdict parity between the modes is asserted wave by wave.
    """
    quick = quick_mode()
    fleet_size = 16 if quick else 50
    num_variants = 4 if quick else 8

    sequential_s = float("inf")
    batched_s = float("inf")
    sequential_result: Optional[CampaignResult] = None
    batched_result: Optional[CampaignResult] = None
    for _ in range(3):
        elapsed, sequential_result = _campaign_run(False, fleet_size, num_variants)
        sequential_s = min(sequential_s, elapsed)
        elapsed, batched_result = _campaign_run(True, fleet_size, num_variants)
        batched_s = min(batched_s, elapsed)
    benchmark(lambda: _campaign_run(True, fleet_size, num_variants)[1])

    assert _digest(batched_result) == _digest(sequential_result)
    assert batched_result.admitted == fleet_size  # clean rollout covers the fleet
    speedup = sequential_s / batched_s if batched_s > 0 else float("inf")
    row = {
        "fleet_size": fleet_size,
        "num_variants": num_variants,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "admitted": batched_result.admitted,
        "waves": len(batched_result.waves),
        "cache_hits": batched_result.cache_hits,
        "cache_misses": batched_result.cache_misses,
        "engine_reuse_rate": batched_result.engine_reuse_rate,
    }
    print_table("E10: batched vs sequential fleet admission (target: >= 1.5x)",
                [row])
    write_bench_record("e10_fleet_campaign", row)
    assert speedup >= 1.5


@pytest.mark.benchmark(group="e10-fleet")
def test_e10_failure_injection_bounds_blast_radius(benchmark):
    """Staged waves contain a bad update: coverage falls with the injected
    failure rate, and high rates halt at the canary with full rollback."""
    quick = quick_mode()
    fleet_size = 16 if quick else 50

    def sweep():
        rows = []
        for rate in (0.0, 0.3, 1.0):
            result = run_fleet_campaign_scenario(
                fleet_size=fleet_size, seed=0,
                num_variants=4 if quick else 8,
                failure_injection_rate=rate)
            rows.append({
                "failure_injection_rate": rate,
                "admitted": result.admitted,
                "deviating": result.deviating,
                "rolled_back": result.rolled_back,
                "halted": result.halted,
                "halted_wave": result.halted_wave,
                "update_coverage": result.update_coverage,
            })
        return rows

    rows = benchmark(sweep)
    print_table("E10: staged rollout under failure injection "
                f"({fleet_size} vehicles)", rows)
    coverages = [row["update_coverage"] for row in rows]
    assert coverages == sorted(coverages, reverse=True)
    assert rows[0]["update_coverage"] == 1.0 and not rows[0]["halted"]
    worst = rows[-1]
    assert worst["halted"] and worst["halted_wave"] == 0
    assert worst["update_coverage"] == 0.0  # canary rolled back, fleet untouched


@pytest.mark.benchmark(group="e10-fleet")
def test_e10_wave_policy_shapes_the_rollout(benchmark):
    """Conservative staging discovers a bad update earlier (fewer exposed
    vehicles) than an aggressive single-wave push."""
    quick = quick_mode()
    fleet_size = 16 if quick else 50

    def compare():
        policies = {
            "canary+staged": WavePolicy(canary_size=2,
                                        wave_fractions=(0.1, 0.3, 1.0),
                                        rollback_on_halt=False),
            "big-bang": WavePolicy(canary_size=0, wave_fractions=(1.0,),
                                   rollback_on_halt=False),
        }
        rows = []
        for name, policy in policies.items():
            spec = FleetSpec(size=fleet_size, seed=0,
                             num_variants=4 if quick else 8)
            cache = AnalysisCache()
            fleet = generate_fleet(spec, analysis_cache=cache)
            contracts: Dict[int, object] = {}

            def factory(vehicle):
                contract = contracts.get(vehicle.variant.index)
                if contract is None:
                    contract = build_update_contract(vehicle.wcet_factor)
                    contracts[vehicle.variant.index] = contract
                return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                     component=contract.component,
                                     contract=contract)

            result = Campaign(fleet, factory, policy=policy,
                              analysis_cache=cache,
                              failure_injection_rate=1.0).run()
            rows.append({"policy": name, "exposed": result.admitted,
                         "deviating": result.deviating,
                         "halted_wave": result.halted_wave})
        return rows

    rows = benchmark(compare)
    print_table("E10: blast radius by wave policy (100% failure injection)",
                rows)
    staged = next(row for row in rows if row["policy"] == "canary+staged")
    big_bang = next(row for row in rows if row["policy"] == "big-bang")
    assert staged["exposed"] < big_bang["exposed"]
