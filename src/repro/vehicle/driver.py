"""Driver intent estimation via the HMI (the "estimate driver intent" skill).

In a level-5 vehicle the driver is out of the control loop, but the ACC
example of the paper still requires driver-intent estimation (set speed,
headway preference, override requests) through an HMI data source.  The
estimator debounces raw HMI inputs, tracks the active intent and reports a
confidence value that doubles as the ability score of the
``estimate_driver_intent`` skill.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class DriverIntentKind(enum.Enum):
    """The intents the ACC function distinguishes."""

    CRUISE = "cruise"
    OVERRIDE_BRAKE = "override_brake"
    OVERRIDE_ACCELERATE = "override_accelerate"
    CHANGE_SET_SPEED = "change_set_speed"
    DISENGAGE = "disengage"


@dataclass
class DriverIntent:
    """The currently estimated driver intent."""

    kind: DriverIntentKind
    set_speed_mps: float
    headway_s: float
    confidence: float
    time: float


@dataclass
class HmiInput:
    """One raw HMI event (button press, pedal actuation)."""

    time: float
    control: str
    value: float = 1.0


class DriverIntentEstimator:
    """Debounce HMI inputs into a stable intent estimate.

    Parameters
    ----------
    default_set_speed_mps:
        Initial ACC set speed.
    default_headway_s:
        Initial desired time headway.
    hmi_timeout_s:
        If no HMI heartbeat arrives for this long, confidence decays —
        the HMI data source is degrading.
    """

    def __init__(self, default_set_speed_mps: float = 27.0,
                 default_headway_s: float = 1.8,
                 hmi_timeout_s: float = 2.0) -> None:
        if default_set_speed_mps < 0 or default_headway_s <= 0 or hmi_timeout_s <= 0:
            raise ValueError("invalid estimator defaults")
        self.set_speed_mps = default_set_speed_mps
        self.headway_s = default_headway_s
        self.hmi_timeout_s = hmi_timeout_s
        self._intent_kind = DriverIntentKind.CRUISE
        self._last_hmi_time: Optional[float] = None
        self._confidence = 1.0
        self.history: List[DriverIntent] = []
        self.hmi_available = True

    # -- inputs ------------------------------------------------------------------------

    def process_input(self, event: HmiInput) -> None:
        """Consume one raw HMI event."""
        if not self.hmi_available:
            return
        self._last_hmi_time = event.time
        control = event.control.lower()
        if control == "brake_pedal" and event.value > 0.1:
            self._intent_kind = DriverIntentKind.OVERRIDE_BRAKE
        elif control == "accelerator_pedal" and event.value > 0.1:
            self._intent_kind = DriverIntentKind.OVERRIDE_ACCELERATE
        elif control == "set_speed":
            self.set_speed_mps = max(0.0, event.value)
            self._intent_kind = DriverIntentKind.CHANGE_SET_SPEED
        elif control == "headway":
            self.headway_s = max(0.5, event.value)
        elif control == "cancel":
            self._intent_kind = DriverIntentKind.DISENGAGE
        elif control == "resume":
            self._intent_kind = DriverIntentKind.CRUISE
        else:
            # Unknown controls are ignored; heartbeat effect only.
            pass

    def set_hmi_available(self, available: bool) -> None:
        """Model an HMI failure/repair (data-source degradation)."""
        self.hmi_available = available

    # -- estimation -----------------------------------------------------------------------

    def estimate(self, time: float) -> DriverIntent:
        """Produce the current intent estimate with confidence."""
        if not self.hmi_available:
            self._confidence = 0.0
        elif self._last_hmi_time is None:
            self._confidence = 0.9  # no input yet: defaults assumed valid
        else:
            silence = time - self._last_hmi_time
            if silence <= self.hmi_timeout_s:
                self._confidence = 1.0
            else:
                # Linear decay after the timeout, floor at 0.3 (the defaults
                # are still usable but stale).
                over = silence - self.hmi_timeout_s
                self._confidence = max(0.3, 1.0 - 0.1 * over)
        intent = DriverIntent(kind=self._intent_kind, set_speed_mps=self.set_speed_mps,
                              headway_s=self.headway_s, confidence=self._confidence,
                              time=time)
        self.history.append(intent)
        return intent

    @property
    def confidence(self) -> float:
        return self._confidence

    def ability_score(self) -> float:
        """Score for the ``estimate_driver_intent`` node of the ability graph."""
        return self._confidence if self.hmi_available else 0.0
