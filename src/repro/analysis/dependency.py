"""Automated cross-layer dependency analysis.

Section V: "In traditional design, such dependencies are identified with
semiformal methods, such as a Failure Mode and Effects Analysis (FMEA).  In
CCC, such dependency analysis is automated to derive cross-layer dependency
models describing the effect of change and actions on the overall system."

This module builds a typed dependency graph whose nodes live on named layers
(platform, communication, safety, ability, objective, ...) and provides the
two queries the rest of the system needs:

* **effect propagation** — given a failed/changed element, which other
  elements on which layers are affected (the automated FMEA);
* **change impact** — given a proposed change set, which contracts and
  viewpoints must be re-analysed by the MCC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx


class DependencyKind(enum.Enum):
    """Why one element depends on another."""

    SERVICE = "service"          # client uses a service of the provider
    MAPPING = "mapping"          # software element mapped onto a platform element
    RESOURCE = "resource"        # shares a physical resource (interference)
    DATA = "data"                # consumes data produced by the other element
    REDUNDANCY = "redundancy"    # backs up / is backed up by the other element
    ENVIRONMENT = "environment"  # exposed to the same environmental effect


@dataclass(frozen=True)
class Dependency:
    """A directed dependency: ``source`` depends on ``target``.

    If ``target`` fails or changes, ``source`` is (potentially) affected.
    ``strength`` in (0, 1] expresses how strongly the effect propagates and is
    multiplied along paths when estimating impact likelihoods.
    """

    source: str
    target: str
    kind: DependencyKind
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.strength <= 1.0:
            raise ValueError("dependency strength must be in (0, 1]")


@dataclass
class FailureEffect:
    """One row of the automated FMEA: the effect of a failing element."""

    failed_element: str
    affected_element: str
    layer: str
    path: List[str]
    severity: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class DependencyGraph:
    """Typed, layered dependency graph.

    Nodes are system elements (components, tasks, resources, skills,
    objectives); each node belongs to exactly one layer.  Edges are
    :class:`Dependency` relations pointing from the dependent element to the
    element it depends on.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------------

    def add_element(self, name: str, layer: str, **attributes: object) -> None:
        if not name:
            raise ValueError("element name must be non-empty")
        if name in self._graph and self._graph.nodes[name]["layer"] != layer:
            raise ValueError(
                f"element {name!r} already exists on layer "
                f"{self._graph.nodes[name]['layer']!r}")
        self._graph.add_node(name, layer=layer, **attributes)

    def add_dependency(self, dependency: Dependency) -> None:
        for endpoint in (dependency.source, dependency.target):
            if endpoint not in self._graph:
                raise KeyError(f"unknown element {endpoint!r}; add it first")
        self._graph.add_edge(dependency.source, dependency.target,
                             kind=dependency.kind, strength=dependency.strength)

    def depends_on(self, source: str, target: str, kind: DependencyKind,
                   strength: float = 1.0) -> None:
        """Convenience wrapper around :meth:`add_dependency`."""
        self.add_dependency(Dependency(source, target, kind, strength))

    # -- queries ---------------------------------------------------------------------

    @property
    def elements(self) -> List[str]:
        return list(self._graph.nodes)

    def layer_of(self, element: str) -> str:
        try:
            return self._graph.nodes[element]["layer"]
        except KeyError as exc:
            raise KeyError(f"unknown element {element!r}") from exc

    def elements_on(self, layer: str) -> List[str]:
        return [n for n, data in self._graph.nodes(data=True) if data["layer"] == layer]

    def layers(self) -> List[str]:
        seen: List[str] = []
        for _, data in self._graph.nodes(data=True):
            if data["layer"] not in seen:
                seen.append(data["layer"])
        return seen

    def direct_dependencies(self, element: str) -> List[Tuple[str, DependencyKind]]:
        """Elements that ``element`` directly depends on."""
        return [(target, self._graph.edges[element, target]["kind"])
                for target in self._graph.successors(element)]

    def direct_dependents(self, element: str) -> List[Tuple[str, DependencyKind]]:
        """Elements that directly depend on ``element``."""
        return [(source, self._graph.edges[source, element]["kind"])
                for source in self._graph.predecessors(element)]

    def dependents_closure(self, element: str) -> Set[str]:
        """All elements transitively affected when ``element`` fails."""
        if element not in self._graph:
            raise KeyError(f"unknown element {element!r}")
        return set(nx.ancestors(self._graph, element))

    def dependencies_closure(self, element: str) -> Set[str]:
        """All elements that ``element`` transitively depends on."""
        if element not in self._graph:
            raise KeyError(f"unknown element {element!r}")
        return set(nx.descendants(self._graph, element))

    def cross_layer_edges(self) -> List[Tuple[str, str]]:
        """Edges whose endpoints live on different layers — the dependencies
        the paper argues must be made explicit."""
        return [(u, v) for u, v in self._graph.edges
                if self._graph.nodes[u]["layer"] != self._graph.nodes[v]["layer"]]

    def has_cycle(self) -> bool:
        return not nx.is_directed_acyclic_graph(self._graph)

    def to_networkx(self) -> nx.DiGraph:
        return self._graph.copy()


class DependencyAnalysis:
    """The automated FMEA over a :class:`DependencyGraph`."""

    def __init__(self, graph: DependencyGraph) -> None:
        self.graph = graph

    def failure_effects(self, failed_element: str,
                        min_severity: float = 0.0) -> List[FailureEffect]:
        """Enumerate the effects of a single element failure.

        Severity along a path is the product of edge strengths; effects below
        ``min_severity`` are dropped.  Effects are returned ordered by
        descending severity, then path length, for deterministic reporting.
        """
        nxg = self.graph.to_networkx()
        if failed_element not in nxg:
            raise KeyError(f"unknown element {failed_element!r}")
        effects: Dict[str, FailureEffect] = {}
        # Breadth-first over reverse edges (dependents), tracking best severity.
        frontier: List[Tuple[str, List[str], float]] = [(failed_element, [failed_element], 1.0)]
        while frontier:
            current, path, severity = frontier.pop(0)
            for dependent in nxg.predecessors(current):
                if dependent in path:
                    continue
                strength = nxg.edges[dependent, current]["strength"]
                new_severity = severity * strength
                if new_severity < min_severity:
                    continue
                existing = effects.get(dependent)
                if existing is None or new_severity > existing.severity:
                    effects[dependent] = FailureEffect(
                        failed_element=failed_element,
                        affected_element=dependent,
                        layer=self.graph.layer_of(dependent),
                        path=path + [dependent],
                        severity=new_severity)
                frontier.append((dependent, path + [dependent], new_severity))
        return sorted(effects.values(), key=lambda e: (-e.severity, e.hops, e.affected_element))

    def affected_layers(self, failed_element: str) -> List[str]:
        """Layers touched by the failure, in order of first impact severity."""
        layers: List[str] = []
        for effect in self.failure_effects(failed_element):
            if effect.layer not in layers:
                layers.append(effect.layer)
        return layers

    def common_cause_elements(self, environment_effect: str) -> List[str]:
        """Elements that share exposure to an environmental effect node
        (e.g. 'ambient-temperature'), i.e. candidates for common-cause
        failures (Section V's temperature example)."""
        return sorted(effect.affected_element
                      for effect in self.failure_effects(environment_effect))

    def change_impact(self, changed_elements: Iterable[str]) -> Dict[str, Set[str]]:
        """For a proposed change set, map each affected layer to the set of
        affected elements; the MCC uses this to decide which viewpoint
        analyses must be re-run."""
        impact: Dict[str, Set[str]] = {}
        for changed in changed_elements:
            for effect in self.failure_effects(changed):
                impact.setdefault(effect.layer, set()).add(effect.affected_element)
            impact.setdefault(self.graph.layer_of(changed), set()).add(changed)
        return impact

    def single_points_of_failure(self, critical_elements: Iterable[str]) -> List[str]:
        """Elements whose individual failure affects *all* given critical
        elements — the classic FMEA output used to require redundancy."""
        critical = set(critical_elements)
        if not critical:
            return []
        spofs: List[str] = []
        for element in self.graph.elements:
            if element in critical:
                continue
            affected = {e.affected_element for e in self.failure_effects(element)}
            if critical <= affected:
                spofs.append(element)
        return sorted(spofs)
