"""Tabulation of the machine-readable benchmark records.

Every benchmark writes a ``BENCH_<name>.json`` record (see
``benchmarks/conftest.py``) so the performance trajectory — speedups, wall
times, engine counters — survives outside CI logs.  This module loads a
directory of those records and renders them as one table per run:

``python -m repro.experiments bench-history [--dir benchmarks/records]``

Corrupt or foreign JSON files are skipped (reported, not fatal): the
records directory accumulates across branches and interrupted runs, and a
history tool that dies on the first bad file is useless exactly when the
history is interesting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Payload keys promoted to their own table column when present.
HEADLINE_KEYS = ("speedup", "speedup_vs_pr1", "admission_speedup")


def load_bench_records(directory: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Load every ``BENCH_*.json`` under ``directory``.

    Returns ``(records, skipped)``: parsed record documents sorted by name,
    and the file names that could not be parsed (corrupt JSON, non-dict
    top level, or a missing ``name``/``payload`` envelope).
    """
    records: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            skipped.append(path.name)
            continue
        if (not isinstance(document, dict) or "name" not in document
                or not isinstance(document.get("payload"), dict)):
            skipped.append(path.name)
            continue
        records.append(document)
    records.sort(key=lambda document: str(document["name"]))
    return records, skipped


def bench_history_rows(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One table row per record: identity, provenance, headline speedup and
    a compact rendering of the remaining numeric payload metrics."""
    rows: List[Dict[str, Any]] = []
    for document in records:
        payload = document["payload"]
        headline = next((payload[key] for key in HEADLINE_KEYS
                         if isinstance(payload.get(key), (int, float))), None)
        metrics = "  ".join(
            f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(payload.items())
            if key not in HEADLINE_KEYS
            and isinstance(value, (int, float)) and not isinstance(value, bool))
        rows.append({
            "bench": document["name"],
            "created_utc": document.get("created_utc", "?"),
            "quick": bool(document.get("quick_mode", False)),
            "speedup": "-" if headline is None else f"{headline:.2f}x",
            "metrics": metrics or "-",
        })
    return rows


__all__ = ["HEADLINE_KEYS", "bench_history_rows", "load_bench_records"]
