"""Append-only segment store: the analysis cache under concurrent writers.

The sharded campaign engine persists :class:`~repro.analysis.cache.
AnalysisCache` entries so that later shards, later waves, spawn-started
workers and whole re-runs reuse previously derived busy-window analyses.
PR 5's whole-snapshot pickle (:meth:`AnalysisCache.save_snapshot`) cannot be
shared by concurrent writers — every writer rewrites the whole file, last
writer wins, and mid-wave publication would race the other workers.  A
:class:`SegmentStore` replaces the rewrite with appends:

File layout (one store = one directory)
---------------------------------------
``MANIFEST.json``
    Store format marker, written atomically once at creation.
``seg-<writer>.log``
    One append-only segment file **per writer**.  A writer id embeds the
    pid plus a random token, so no two writer instances ever share a file —
    appends need no locks.  A segment is a sequence of *frames*; each frame
    is ``RSEG | payload-length | crc32 | pickled entry batch``.
``idx-<writer>.json``
    The writer's fsync'd index: the number of segment bytes that are
    *durable* (fully written and fsync'd).  Replaced atomically after every
    append, so readers never parse a frame that is still in flight.

Writer protocol
---------------
1. Build all frames of the batch in memory.
2. Append them to the writer's own segment file with a single ``write``,
   flush, ``fsync``.
3. Atomically replace the writer's index file with the new durable byte
   count (temp file + ``fsync`` + ``rename``).

A crash between (2) and (3) leaves a durable-but-unindexed tail: readers
ignore it (the entries were never acknowledged), and the writer's *next*
successful append re-indexes the whole segment, making the tail visible —
entries are content-addressed, so late visibility is always sound.

Readers are lock-free: they list the index files, read each segment's
durable prefix and CRC-check every frame.  A CRC or framing failure inside
the durable prefix is *real corruption* (bit rot, a torn disk, a foreign
file) and raises :class:`StoreCorruptionError` — unless ``repair=True``,
which skips the rest of the damaged segment and logs how much was dropped.

``compact()`` folds all durable segments into one fresh segment (duplicate
keys collapse — entries are content-addressed, so any copy is the right
one) and deletes the folded sources.  Compaction only touches segments that
were durable when it started: concurrent writers keep appending to their
own files, and readers that race a compaction simply re-read the surviving
(compacted) copy — :meth:`AnalysisCache.merge_entries` is idempotent.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import struct
import tempfile
import uuid
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

logger = logging.getLogger(__name__)

#: Frame header: magic, payload length, crc32 of the payload.
_FRAME_HEADER = struct.Struct("<4sII")
_FRAME_MAGIC = b"RSEG"

_MANIFEST_NAME = "MANIFEST.json"
_STORE_FORMAT = 1

#: One persisted cache entry: ``(taskset_key, per-task results)`` — the
#: same shape :meth:`AnalysisCache.export_entries` produces.
StoredEntry = Tuple[Tuple, Dict[str, object]]


class StoreCorruptionError(ValueError):
    """A segment's durable prefix failed frame/CRC validation.

    Raised by the read paths when a store holds data that was acknowledged
    as durable but no longer parses — as opposed to a torn in-flight append,
    which is invisible by protocol (the index only ever points at fsync'd
    bytes).  Pass ``repair=True`` to skip damaged segments instead.
    """


def is_segment_store(path: str) -> bool:
    """Whether ``path`` is (or could be resumed as) a segment store."""
    return os.path.isdir(path) and os.path.exists(
        os.path.join(path, _MANIFEST_NAME))


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + atomic rename."""
    directory = os.path.dirname(os.path.abspath(path))
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


class SegmentStore:
    """One writer handle plus lock-free reader over a store directory.

    Creating the instance is cheap and does not touch the disk; the
    directory, manifest and this writer's segment appear on the first
    :meth:`append`.  A single instance must not be shared across processes
    (each process opens its own — that is the whole point); within one
    process it is as thread-safe as the caller's serialization.
    """

    def __init__(self, path: str, writer_id: Optional[str] = None) -> None:
        self.path = os.path.abspath(path)
        self.writer_id = writer_id if writer_id is not None else \
            f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        if "/" in self.writer_id or "\\" in self.writer_id:
            raise ValueError("writer_id must not contain path separators")
        self._segment_name = f"seg-{self.writer_id}.log"
        self._handle = None
        self._durable_bytes = 0
        #: Per-segment bytes already consumed by :meth:`read_new`.
        self._read_offsets: Dict[str, int] = {}
        #: Segments skipped by the last ``repair=True`` read (for tests/logs).
        self.last_repair_skipped = 0

    # -- paths -------------------------------------------------------------

    def _segment_path(self, segment_name: str) -> str:
        return os.path.join(self.path, segment_name)

    def _index_path(self, segment_name: str) -> str:
        writer = segment_name[len("seg-"):-len(".log")]
        return os.path.join(self.path, f"idx-{writer}.json")

    def _ensure_store(self) -> None:
        os.makedirs(self.path, exist_ok=True)
        manifest = os.path.join(self.path, _MANIFEST_NAME)
        if not os.path.exists(manifest):
            _atomic_write(manifest, json.dumps(
                {"format": _STORE_FORMAT, "kind": "analysis-cache-segments"},
                sort_keys=True).encode("utf-8"))

    # -- writer ------------------------------------------------------------

    def append(self, entries: Iterable[StoredEntry]) -> int:
        """Durably append one batch of entries as a single frame.

        Returns the number of entries appended (0 for an empty batch — no
        frame, no fsync).  The entries are readable by every other store
        handle as soon as this method returns.
        """
        batch = list(entries)
        if not batch:
            return 0
        self._ensure_store()
        payload = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME_HEADER.pack(_FRAME_MAGIC, len(payload),
                                   zlib.crc32(payload)) + payload
        if self._handle is not None and not os.path.exists(
                self._segment_path(self._segment_name)):
            # Another handle compacted our segment away (its entries live on
            # in the compacted copy); writing on through the unlinked inode
            # would acknowledge entries no reader can ever see.  Roll to a
            # fresh segment instead.
            self.close()
            self._segment_name = \
                f"seg-{self.writer_id}-{uuid.uuid4().hex[:8]}.log"
        if self._handle is None:
            self._handle = open(self._segment_path(self._segment_name), "ab")
            self._durable_bytes = self._handle.tell()
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._durable_bytes = self._handle.tell()
        _atomic_write(self._index_path(self._segment_name), json.dumps(
            {"segment": self._segment_name,
             "durable_bytes": self._durable_bytes},
            sort_keys=True).encode("utf-8"))
        return len(batch)

    def close(self) -> None:
        """Close this writer's segment handle (the store stays readable)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- reader ------------------------------------------------------------

    def _durable_segments(self) -> List[Tuple[str, int]]:
        """``(segment_name, durable_bytes)`` for every indexed segment,
        sorted by name for deterministic merge order."""
        if not os.path.isdir(self.path):
            return []
        segments: List[Tuple[str, int]] = []
        for name in sorted(os.listdir(self.path)):
            if not (name.startswith("idx-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.path, name), "r",
                          encoding="utf-8") as stream:
                    index = json.load(stream)
                segment = index["segment"]
                durable = int(index["durable_bytes"])
            except (OSError, ValueError, KeyError, TypeError):
                # A torn index replacement cannot happen (atomic rename); a
                # malformed index file is foreign/corrupt and has no durable
                # claim to make — its segment is simply not visible.
                continue
            segments.append((segment, durable))
        return segments

    def _read_segment(self, segment_name: str, start: int, durable: int,
                      repair: bool) -> Tuple[List[StoredEntry], int]:
        """Entries in ``[start, durable)`` of one segment, plus the offset
        actually consumed (== ``durable`` unless a repair skipped the tail).
        """
        entries: List[StoredEntry] = []
        try:
            stream = open(self._segment_path(segment_name), "rb")
        except FileNotFoundError:
            # Compacted away between listing and reading; its entries live
            # on in the compacted segment.
            return entries, start
        with stream:
            stream.seek(start)
            offset = start
            while offset < durable:
                failure = None
                header = stream.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size \
                        or offset + _FRAME_HEADER.size > durable:
                    failure = "truncated frame header inside durable prefix"
                else:
                    magic, length, crc = _FRAME_HEADER.unpack(header)
                    if magic != _FRAME_MAGIC:
                        failure = f"bad frame magic {magic!r}"
                    elif offset + _FRAME_HEADER.size + length > durable:
                        failure = "frame extends beyond durable prefix"
                    else:
                        payload = stream.read(length)
                        if len(payload) < length:
                            failure = "truncated frame payload"
                        elif zlib.crc32(payload) != crc:
                            failure = "frame CRC mismatch"
                if failure is not None:
                    message = (f"segment {segment_name!r} of store "
                               f"{self.path!r} is corrupt at byte {offset}: "
                               f"{failure}")
                    if not repair:
                        raise StoreCorruptionError(message)
                    self.last_repair_skipped += 1
                    logger.warning("%s — repair skipped the remaining %d "
                                   "durable bytes of this segment",
                                   message, durable - offset)
                    return entries, durable
                entries.extend(pickle.loads(payload))
                offset += _FRAME_HEADER.size + length
        return entries, durable

    def read_entries(self, repair: bool = False) -> List[StoredEntry]:
        """Every durable entry of the store, in deterministic segment order.

        With ``repair=True`` damaged segments contribute their valid prefix
        and the skip is logged (and counted in :attr:`last_repair_skipped`);
        without it, corruption raises :class:`StoreCorruptionError`.
        """
        self.last_repair_skipped = 0
        entries: List[StoredEntry] = []
        for segment, durable in self._durable_segments():
            segment_entries, _ = self._read_segment(segment, 0, durable,
                                                    repair)
            entries.extend(segment_entries)
        return entries

    def read_new(self, repair: bool = False) -> List[StoredEntry]:
        """Entries appended (by any writer) since this handle last read.

        The incremental complement of :meth:`read_entries`: per-segment
        byte offsets persist on the handle, so a shard worker can poll the
        store between chunks and absorb only what its siblings published in
        the meantime.  A compaction makes the folded entries reappear under
        the compacted segment's name — re-reading them is harmless because
        cache merges are idempotent.
        """
        self.last_repair_skipped = 0
        entries: List[StoredEntry] = []
        for segment, durable in self._durable_segments():
            start = self._read_offsets.get(segment, 0)
            if durable <= start:
                continue
            segment_entries, consumed = self._read_segment(segment, start,
                                                           durable, repair)
            entries.extend(segment_entries)
            self._read_offsets[segment] = consumed
        return entries

    # -- maintenance -------------------------------------------------------

    def segments(self) -> List[str]:
        """The currently indexed segment names (diagnostics/tests)."""
        return [segment for segment, _ in self._durable_segments()]

    def compact(self, repair: bool = False) -> int:
        """Fold all durable segments into one; returns the entry count kept.

        Duplicate keys collapse to a single copy (entries are
        content-addressed — every copy is identical).  The folded source
        segments and their indexes are deleted only after the compacted
        segment is durable, so a crash mid-compaction leaves at worst both
        copies, never neither.

        Run compaction from a quiescent writer — e.g. the campaign parent
        after its pool has joined.  A writer whose open segment gets folded
        detects the unlink on its next :meth:`append` and rolls to a fresh
        segment (nothing is corrupted either way); only an append that
        *races the unlink itself* — why quiescence is asked for — could
        land invisibly on the folded inode.  Entries appended to *new*
        segments while compaction runs are untouched.
        """
        sources = self._durable_segments()
        sources = [(segment, durable) for segment, durable in sources
                   if durable > 0]
        if not sources:
            return 0
        merged: Dict[Tuple, Dict[str, object]] = {}
        for segment, durable in sources:
            segment_entries, _ = self._read_segment(segment, 0, durable,
                                                    repair)
            for key, results in segment_entries:
                merged[key] = results
        compact_writer = SegmentStore(
            self.path, writer_id=f"compact-{uuid.uuid4().hex[:8]}")
        try:
            compact_writer.append(list(merged.items()))
        finally:
            compact_writer.close()
        for segment, _ in sources:
            if segment == compact_writer._segment_name:  # pragma: no cover
                continue
            for stale in (self._segment_path(segment),
                          self._index_path(segment)):
                try:
                    os.unlink(stale)
                except FileNotFoundError:  # pragma: no cover - racing unlink
                    pass
            self._read_offsets.pop(segment, None)
        if self._segment_name in {segment for segment, _ in sources}:
            # Our own pre-compaction segment was folded; future appends
            # start a fresh file rather than resurrecting the deleted name
            # (which would confuse handles holding read offsets for it).
            self.close()
            self._segment_name = f"seg-{os.getpid()}-{uuid.uuid4().hex[:8]}.log"
        return len(merged)


__all__ = ["SegmentStore", "StoreCorruptionError", "StoredEntry",
           "is_segment_store"]
