#!/usr/bin/env python3
"""Functional self-awareness with the ACC skill/ability graph (Section IV).

Builds the paper's ACC skill graph, instantiates it as an ability graph,
injects a camera degradation (dense fog) and a radar dropout, and shows how
performance levels propagate to the main skill and which graceful-degradation
tactics the degradation manager selects.

Run with::

    python examples/acc_skill_graph.py
"""

from repro import build_acc_ability_graph, build_acc_skill_graph
from repro.skills import (
    DegradationManager,
    OperationalRestriction,
    RedundancySwitch,
)


def show(graph, title: str) -> None:
    print(f"\n== {title} ==")
    print(f"root ({graph.main_skill}): score {graph.root_score():.2f} "
          f"level {graph.root_level().name}")
    degraded = graph.degraded_abilities()
    if degraded:
        print("degraded abilities:")
        for ability in degraded:
            print(f"  {ability.name:28s} {ability.score:.2f} ({ability.level.name})")
    else:
        print("all abilities nominal")


def main() -> None:
    skill_graph = build_acc_skill_graph()
    print("ACC skill graph:")
    print(f"  nodes: {len(skill_graph)} "
          f"(skills {len(skill_graph.skills())}, "
          f"sources {len(skill_graph.data_sources())}, "
          f"sinks {len(skill_graph.data_sinks())})")
    print(f"  dependency chains from the main skill: {len(skill_graph.paths_from_main())}")
    for path in skill_graph.paths_from_main()[:5]:
        print("    " + " -> ".join(path))

    ability_graph = build_acc_ability_graph()
    manager = DegradationManager(ability_graph)
    manager.register_redundancy(RedundancySwitch(
        ability="perceive_track_objects",
        primary_implementation="object_tracker",
        backup_implementation="object_tracker_radar_only",
        performance_penalty=0.25))
    manager.register_restriction(OperationalRestriction(
        ability="camera_sensor",
        description="increase following distance; rely on radar",
        compensated_score=0.6))

    show(ability_graph, "nominal")

    # Dense fog: the camera quality collapses, the radar degrades mildly.
    ability_graph.observe("camera_sensor", 0.25, time=10.0)
    ability_graph.observe("radar_sensor", 0.8, time=10.0)
    show(ability_graph, "dense fog (camera 0.25, radar 0.80)")

    plan = manager.plan()
    print("\ndegradation plan:")
    for action in plan.actions:
        print(f"  {action}")
    print(f"predicted root score after plan: {plan.predicted_root_score:.2f} "
          f"(safe stop required: {plan.requires_safe_stop})")
    manager.apply(plan, time=11.0)
    show(ability_graph, "after graceful degradation")

    # Radar dropout on top: perception collapses and the plan escalates.
    ability_graph.fail("radar_sensor", time=20.0)
    show(ability_graph, "radar dropout on top of fog")
    plan = manager.plan()
    print("\nescalated plan:")
    for action in plan.actions:
        print(f"  {action}")
    print(f"predicted root score: {plan.predicted_root_score:.2f} "
          f"(safe stop required: {plan.requires_safe_stop})")


if __name__ == "__main__":
    main()
