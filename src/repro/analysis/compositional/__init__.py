"""Compositional multi-resource timing analysis (CPA across CPUs and buses).

The single-resource busy-window analysis of :mod:`repro.analysis.cpa` bounds
one processor; this subpackage composes many resources into one system-level
verdict, which is what admitting a change to a *distributed* automotive
system requires:

* :mod:`repro.analysis.compositional.can_rta` — non-preemptive fixed-priority
  response-time analysis of CAN segments (frame streams, bit-accurate
  transmission times, blocking), producing the same result shape as the CPU
  analysis.
* :mod:`repro.analysis.compositional.system` — a system model of named
  processors/buses with activation event links, the output-event-model
  propagation fixpoint (:class:`SystemAnalysis`), and jitter-aware
  cause-effect-chain latency bounds.
"""

from repro.analysis.compositional.can_rta import (
    CanAnalysisError,
    CanResponseTimeAnalysis,
    FrameSpec,
)
from repro.analysis.compositional.system import (
    CauseEffectChain,
    EventLink,
    SystemAnalysis,
    SystemAnalysisResult,
    SystemConfigurationError,
    SystemModel,
    distributed_end_to_end_latency,
)

__all__ = [
    "CanAnalysisError",
    "CanResponseTimeAnalysis",
    "FrameSpec",
    "CauseEffectChain",
    "EventLink",
    "SystemAnalysis",
    "SystemAnalysisResult",
    "SystemConfigurationError",
    "SystemModel",
    "distributed_end_to_end_latency",
]
