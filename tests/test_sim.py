"""Tests for the discrete-event simulation substrate (repro.sim)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.random import SeededRNG
from repro.sim.trace import Trace, TraceRecord, TraceRecorder


class TestSimulatorScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self, sim):
        order = []
        sim.schedule(1.0, lambda s: order.append("late"), priority=5)
        sim.schedule(1.0, lambda s: order.append("early"), priority=0)
        sim.schedule(1.0, lambda s: order.append("late2"), priority=5)
        sim.run()
        assert order == ["early", "late", "late2"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_schedule_in_relative_delay(self, sim):
        seen = []
        sim.schedule_in(0.25, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [0.25]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda s: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_in(-0.1, lambda s: None)

    def test_nan_time_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda s: None)

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(5.0, lambda s: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_queue_empty(self, sim):
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda s: (fired.append(1), s.stop()))
        sim.schedule(2.0, lambda s: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def first(s):
            fired.append("first")
            s.schedule_in(1.0, lambda s2: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_max_events_limits_execution(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda s, i=i: fired.append(i))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_stats_count_executed_events(self, sim):
        for i in range(4):
            sim.schedule(float(i), lambda s: None)
        sim.run()
        assert sim.stats["events_executed"] == 4


class TestRunTruncation:
    """`run(until=..., max_events=...)` must not let the caller believe the
    horizon was simulated when the event budget ran out first."""

    def test_truncated_run_is_flagged_and_clock_stays_behind(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda s: None)
        final = sim.run(until=10.0, max_events=3)
        assert final == 3.0  # clock did NOT silently jump to `until`
        assert sim.truncated
        assert sim.stats["truncated_runs"] == 1
        assert sim.pending_events == 2

    def test_untruncated_run_with_budget_to_spare(self, sim):
        sim.schedule(1.0, lambda s: None)
        final = sim.run(until=5.0, max_events=10)
        assert final == 5.0
        assert not sim.truncated

    def test_budget_exhausted_exactly_at_last_event_is_not_truncated(self, sim):
        for i in range(3):
            sim.schedule(float(i + 1), lambda s: None)
        sim.run(until=10.0, max_events=3)
        # All runnable events executed; nothing was cut off.
        assert not sim.truncated

    def test_pending_events_beyond_horizon_do_not_count_as_truncation(self, sim):
        sim.schedule(1.0, lambda s: None)
        sim.schedule(20.0, lambda s: None)  # outside the horizon
        sim.run(until=5.0, max_events=1)
        assert not sim.truncated

    def test_truncation_flag_resets_on_next_run(self, sim):
        for i in range(3):
            sim.schedule(float(i + 1), lambda s: None)
        sim.run(until=10.0, max_events=1)
        assert sim.truncated
        sim.run(until=10.0)
        assert not sim.truncated
        assert sim.now == 10.0

    def test_max_events_without_until_is_flagged(self, sim):
        for i in range(4):
            sim.schedule(float(i + 1), lambda s: None)
        sim.run(max_events=2)
        assert sim.truncated
        assert sim.pending_events == 2

    def test_past_horizon_never_rewinds_the_clock(self, sim):
        """Regression: `run(until=t)` with t < now used to set the clock to
        `t` when a future event was pending — time ran backwards."""
        sim.schedule(5.0, lambda s: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.schedule(6.0, lambda s: None)
        final = sim.run(until=3.0)
        assert final == 5.0
        assert sim.now == 5.0  # clock untouched
        assert sim.pending_events == 1  # nothing executed
        assert not sim.truncated

    def test_past_horizon_with_empty_queue_is_a_no_op(self, sim):
        sim.schedule(4.0, lambda s: None)
        sim.run()
        assert sim.now == 4.0
        assert sim.run(until=1.0) == 4.0
        assert sim.now == 4.0

    def test_zero_event_budget_executes_nothing(self, sim):
        """Regression: `run(max_events=0)` used to execute one event."""
        hits = []
        sim.schedule(1.0, lambda s: hits.append(s.now))
        final = sim.run(max_events=0)
        assert hits == []
        assert final == 0.0
        assert sim.truncated  # a runnable event was cut off
        assert sim.stats["events_executed"] == 0
        sim.run()  # the event is still there and still runs
        assert hits == [1.0]

    def test_zero_event_budget_with_nothing_runnable_is_not_truncated(self, sim):
        assert sim.run(max_events=0) == 0.0
        assert not sim.truncated
        sim.schedule(9.0, lambda s: None)  # beyond the horizon
        final = sim.run(until=5.0, max_events=0)
        assert not sim.truncated
        # Nothing was cut off, so the horizon counts as simulated — exactly
        # like `run(until=5.0)` with the same calendar.
        assert final == 5.0 and sim.now == 5.0

    def test_zero_event_budget_empty_queue_advances_to_horizon(self, sim):
        assert sim.run(until=3.0, max_events=0) == 3.0
        assert not sim.truncated


class TestScheduleMany:
    def test_bulk_matches_individual_scheduling(self):
        a, b = Simulator(), Simulator()
        order_a, order_b = [], []
        items = [(2.0, lambda s: order_a.append("late"), 5),
                 (1.0, lambda s: order_a.append("first")),
                 (2.0, lambda s: order_a.append("early"), 0),
                 (2.0, lambda s: order_a.append("late2"), 5)]
        a.schedule_many(items)
        b.schedule(2.0, lambda s: order_b.append("late"), priority=5)
        b.schedule(1.0, lambda s: order_b.append("first"))
        b.schedule(2.0, lambda s: order_b.append("early"), priority=0)
        b.schedule(2.0, lambda s: order_b.append("late2"), priority=5)
        a.run()
        b.run()
        assert order_a == order_b == ["first", "early", "late", "late2"]

    def test_bulk_returns_cancellable_events(self, sim):
        fired = []
        events = sim.schedule_many([(1.0, lambda s: fired.append(1)),
                                    (2.0, lambda s: fired.append(2))])
        assert len(events) == 2
        sim.cancel(events[0])
        sim.run()
        assert fired == [2]
        assert sim.pending_events == 0

    def test_bulk_into_populated_calendar_keeps_order(self, sim):
        fired = []
        sim.schedule(1.5, lambda s: fired.append("mid"))
        sim.schedule_many([(1.0, lambda s: fired.append("early")),
                           (2.0, lambda s: fired.append("late"))])
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_bulk_rejects_past_and_nan_times(self, sim):
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_many([(0.5, lambda s: None)])
        with pytest.raises(SimulationError):
            sim.schedule_many([(math.nan, lambda s: None)])

    def test_failed_bulk_leaves_queue_untouched(self, sim):
        """A mid-batch validation failure must not half-insert the batch."""
        fired = []
        with pytest.raises(SimulationError):
            sim.schedule_many([(5.0, lambda s: fired.append(1)),
                               (math.nan, lambda s: fired.append(2))])
        assert sim.pending_events == 0
        sim.run(until=10.0)
        assert fired == []
        assert sim.pending_events == 0  # _live bookkeeping intact

    def test_bulk_with_names(self, sim):
        events = sim.schedule_many([(1.0, lambda s: None, 2, "named")])
        assert events[0].name == "named"
        assert events[0].priority == 2


class CountingProcess(Process):
    def __init__(self, **kwargs):
        super().__init__("counter", **kwargs)
        self.times = []

    def step(self, sim):
        self.times.append(sim.now)


class TestProcess:
    def test_periodic_process_reactivates(self, sim):
        process = CountingProcess(period=1.0)
        sim.add_process(process)
        sim.run(until=3.5)
        assert process.times == [0.0, 1.0, 2.0, 3.0]

    def test_one_shot_process_runs_once(self, sim):
        process = CountingProcess(period=None, start_time=2.0)
        sim.add_process(process)
        sim.run(until=10.0)
        assert process.times == [2.0]

    def test_deactivated_process_stops(self, sim):
        process = CountingProcess(period=1.0)
        sim.add_process(process)
        sim.schedule(1.5, lambda s: process.deactivate())
        sim.run(until=5.0)
        assert process.times == [0.0, 1.0]

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            CountingProcess(period=0.0)

    def test_unbound_process_has_no_sim(self):
        process = CountingProcess(period=1.0)
        with pytest.raises(SimulationError):
            _ = process.sim


class TestTrace:
    def test_recorder_collects_records(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "cat.a", "src1", value=1)
        recorder.record(1.0, "cat.b", "src2", value=2)
        assert len(recorder) == 2

    def test_disabled_recorder_drops_records(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(0.0, "cat", "src")
        assert len(recorder) == 0

    def test_filter_by_category_and_source(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "a", "x", v=1)
        recorder.record(1.0, "a", "y", v=2)
        recorder.record(2.0, "b", "x", v=3)
        assert len(recorder.filter(category="a")) == 2
        assert len(recorder.filter(source="x")) == 2
        assert len(recorder.filter(category="a", source="x")) == 1

    def test_values_extracts_payload(self):
        trace = Trace([TraceRecord(0.0, "c", "s", {"v": 1}),
                       TraceRecord(1.0, "c", "s", {"w": 2})])
        assert trace.values("v") == [1]

    def test_between_selects_window(self):
        trace = Trace([TraceRecord(float(i), "c", "s") for i in range(5)])
        assert len(trace.between(1.0, 3.0)) == 3

    def test_first_last_and_categories(self):
        trace = Trace([TraceRecord(0.0, "a", "s"), TraceRecord(1.0, "b", "s")])
        assert trace.first().category == "a"
        assert trace.last().category == "b"
        assert trace.categories() == ["a", "b"]

    def test_clear_resets(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "c", "s")
        recorder.clear()
        assert len(recorder) == 0


class TestSeededRNG:
    def test_same_seed_same_sequence(self):
        a, b = SeededRNG(42), SeededRNG(42)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert SeededRNG(1).uniform() != SeededRNG(2).uniform()

    def test_spawn_is_deterministic_and_independent(self):
        parent = SeededRNG(7)
        child1 = parent.spawn(1)
        child2 = SeededRNG(7).spawn(1)
        assert child1.uniform() == child2.uniform()

    def test_integer_bounds_inclusive(self, rng):
        values = {rng.integer(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_bounded_normal_respects_bounds(self, rng):
        for _ in range(100):
            value = rng.bounded_normal(0.5, 10.0, 0.0, 1.0)
            assert 0.0 <= value <= 1.0

    def test_choice_from_empty_raises(self, rng):
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffle_preserves_elements(self, rng):
        items = list(range(10))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # input not mutated

    @given(n=st.integers(min_value=1, max_value=30),
           total=st.floats(min_value=0.05, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_uunifast_sums_to_total(self, n, total):
        utilizations = SeededRNG(99).uunifast(n, total)
        assert len(utilizations) == n
        assert all(u >= 0 for u in utilizations)
        assert sum(utilizations) == pytest.approx(total, rel=1e-9)

    def test_uunifast_invalid_args(self, rng):
        with pytest.raises(ValueError):
            rng.uunifast(0, 1.0)
        with pytest.raises(ValueError):
            rng.uunifast(3, 0.0)

    def test_log_uniform_periods_in_range(self, rng):
        periods = rng.log_uniform_periods(50, 0.001, 1.0)
        assert len(periods) == 50
        assert all(0.001 <= p <= 1.0 for p in periods)

    def test_log_uniform_invalid_range(self, rng):
        with pytest.raises(ValueError):
            rng.log_uniform_periods(5, 1.0, 0.5)

    def test_bernoulli_extremes(self, rng):
        assert not any(rng.bernoulli(0.0) for _ in range(20))
        assert all(rng.bernoulli(1.0) for _ in range(20))
